//! The `failctl` subcommands, implemented as functions that return their
//! output as a `String` so they are directly unit-testable.

use std::fmt::Write as _;
use std::io;

use failfilter::CompiledPredicate;
use faillog::ParseOptions;
use failindex::{Freshness, IndexMode, IndexedLoad};
use failmitigate::{
    required_crews, simulate_staffing, CheckpointPlan, OperationsPlan, PlanConfig, SparePolicy,
};
use failscope::{AvailabilityAnalysis, NodeSurvival, SectionCtx, TbfAnalysis};
use failsim::{ReplayClock, ScenarioBuilder, Simulator, SystemModel};
use failtrace::Collector;
use failtypes::{ComponentClass, Error, FailureLog, Generation, Result};
use failwatch::{
    Baseline, DriftConfig, DriftDetector, EventSource, SimSource, StateConfig, TailSource,
    WatchConfig,
};

use crate::args::ParsedArgs;

/// The help text.
pub fn help() -> String {
    "failctl — multi-GPU supercomputer failure-log toolkit

USAGE: failctl <command> [args]

COMMANDS
  generate --system tsubame2|tsubame3 [--seed N] [--out FILE]
      Generate a calibrated failure log (writes failscope-log v1; an
      --out path ending in .gz is written gzip-compressed).
  scenario --nodes N --gpus G --mtbf H --days D [--seed N] [--out FILE]
           [--multi F] [--trend-start X] [--trend-end Y]
      Generate a what-if system's log (trend: rate ramps X -> Y x base).
  summary <FILE>
      One-paragraph structural summary of a log.
  report <FILE | --model tsubame2|tsubame3 [--seed N]> [--threads N]
         [--parse-chunk BYTES] [--where EXPR] [--since T] [--until T]
         [--format text|json] [--sections IDS] [--trace FILE]
         [--index auto|off|require]
      Full five-RQ reliability report (parsing and sections computed in
      parallel; output is identical at any thread count). The input is
      a log file — gzip-compressed .fslog.gz is decoded transparently —
      or a calibrated model generated in-process. --threads also sets
      the parse worker count and --parse-chunk the byte-range chunk
      size the input is split at (default 1 MiB; any value gives
      byte-identical output). --where EXPR keeps only records matching
      a filter expression — e.g. 'category == gpu && ttr > 24' — over
      the fields category, ttr, recovery, time, node, slot, rack,
      gpus, month, with ==, !=, <, <=, >, >=, ~ (substring),
      `in (a, b)`, combined with &&, ||, ! and parentheses; the
      predicate is evaluated during parsing (or against a warm
      snapshot's decoded records), never as a post-pass. --since T and
      --until T are sugar for `time >= T` / `time < T` (until is
      exclusive) and conjoin with --where; T is hours from the window
      start or a YYYY-MM-DD date. --format json emits one NDJSON line per
      section; --sections picks from: header, categories, spatial,
      involvement, tbf, ttr, availability, survival, seasonal, metrics
      (the pipeline's own runtime counters). --trace writes the
      deterministic NDJSON trace export. --index auto serves the
      report from a validated FILE.fsidx snapshot when one exists
      (skipping parsing entirely on an unchanged log, parsing only
      the appended tail on a grown one) and refreshes it after cold
      parses; require insists on a warm snapshot; off (the default)
      ignores snapshots.
  compare <OLD> <NEW> [--threads N] [--parse-chunk BYTES] [--where EXPR]
          [--since T] [--until T] [--format text|json] [--trace FILE]
          [--index auto|off|require]
      Cross-generation comparison (MTBF/MTTR/PEP factors); inputs may
      be gzip-compressed. --format json emits one JSON document.
      --where/--since/--until filter both inputs as for report;
      --index works as for report, for both inputs.
  index build|verify|stat <FILE> [--threads N] [--parse-chunk BYTES]
      Manage FILE.fsidx snapshots: build parses FILE and writes the
      checksummed snapshot next to it; verify checks the snapshot
      against the log's current bytes (exact or prefix coverage
      passes, stale or missing is an error); stat prints a
      snapshot's metadata without reading the log (FILE may also be
      the .fsidx itself).
  watch <FILE|sim:MODEL> [--follow] [--accel RATE|max] [--seed N]
        [--baseline tsubame2|tsubame3|none] [--window N] [--refresh N]
        [--chunk N] [--max-records N] [--max-idle N] [--inject-mttr F]
        [--threads N] [--parse-chunk BYTES] [--where EXPR]
        [--format text|json] [--sections IDS] [--trace FILE]
        [--index auto|off]
      Stream a log (or an accelerated simulated replay) through the
      online monitor: NDJSON drift alerts against a calibrated
      baseline, plus periodic summaries. A gzip-compressed replay file
      is decoded transparently (non-follow only: --follow requires
      plain text, since appended bytes cannot be observed through a
      compressed member). Records are ingested in chunks of up to
      --chunk (default 256; drift checks run per chunk, partial chunks
      flush on idle/EOF so follow mode never lags); --parse-chunk sets
      the file read-buffer size in bytes. --where EXPR scopes the
      monitor to matching records (report syntax): the detector and
      summaries see only the filtered stream, and every alert line
      carries the expression in a `filter` field. --format json makes the
      whole stream NDJSON (one line per summary section); --sections
      picks from: overview, categories, slots, months. --trace writes
      the loop's ingestion/alert counters as NDJSON. --index auto
      persists the accumulated index as FILE.fsidx on clean shutdown
      (plain-text file sources only, and never combined with --where:
      snapshots always hold unfiltered state), so a later `report
      --index auto` starts warm.
  anonymize <IN> <OUT> [--key N]
      Rewrite node identities with a keyed permutation.
  checkpoint <FILE> [--cost H]
      Young/Daly checkpoint intervals from the measured MTBF.
  spares <FILE> [--class gpu|cpu|memory|storage|power|board] [--lead-days D] [--risk EPS]
      Spare-pool sizing for a component class.
  availability <FILE>
      Repair overlap and node availability.
  survival <FILE>
      Node time-to-first-failure survival summary.
  staffing <FILE> [--crews N] [--target INFLATION]
      Repair-crew queueing: effective MTTR vs crew count.
  plan <FILE>
      Integrated operations plan (checkpoints, spares, crews, placement).
  racks <FILE>
      Rack-level failure distribution and uniformity test.
  help
      This text.
"
    .to_string()
}

fn load(path: &str) -> Result<FailureLog> {
    load_traced(path, None, &ParseOptions::default())
}

fn load_traced(path: &str, trace: Option<&Collector>, opts: &ParseOptions) -> Result<FailureLog> {
    // Parse errors carry their 1-based line number and offending field;
    // prefixing the path makes the message directly actionable.
    faillog::load_traced_with(path, trace, opts).map_err(|e| Error::run(format!("{path}: {e}")))
}

/// Resolves the ingest tuning flags: `--threads` doubles as the parse
/// worker count and `--parse-chunk BYTES` overrides the chunk size the
/// input is split at (output is byte-identical for every combination).
fn parse_options(args: &ParsedArgs) -> Result<ParseOptions> {
    let chunk_bytes: usize = args.flag_or("parse-chunk", faillog::DEFAULT_CHUNK_BYTES)?;
    if chunk_bytes == 0 {
        return Err(Error::args("--parse-chunk must be at least 1 byte"));
    }
    Ok(ParseOptions::new()
        .threads(threads_flag(args)?)
        .chunk_bytes(chunk_bytes))
}

/// Writes the collector's deterministic NDJSON export to `--trace PATH`
/// (a no-op when the flag is absent).
fn write_trace(args: &ParsedArgs, trace: &Collector) -> Result<()> {
    if let Some(path) = args.flag("trace") {
        std::fs::write(path, trace.export()).map_err(|e| Error::io("writing trace", e))?;
    }
    Ok(())
}

/// Compiles the record filter for a command: the `--where` expression,
/// conjoined with the `--since`/`--until` sugar, which desugars into
/// the same predicate IR (`time >= SINCE && time < UNTIL`; `--until` is
/// exclusive, matching the half-open observation window). Returns
/// `None` when no filtering flag is present.
///
/// Compilation is window-free (date literals resolve at evaluation
/// time), so the filter exists before any input is opened and pushes
/// down into the parser itself.
fn build_filter(args: &ParsedArgs) -> Result<Option<CompiledPredicate>> {
    let mut pred: Option<CompiledPredicate> = None;
    let mut conjoin = |p: CompiledPredicate| {
        pred = Some(match pred.take() {
            Some(q) => q.and(p),
            None => p,
        });
    };
    if let Some(src) = args.flag("where") {
        conjoin(failfilter::compile(src).map_err(|e| Error::args(format!("--where: {e}")))?);
    }
    for (flag, op) in [("since", ">="), ("until", "<")] {
        if let Some(raw) = args.flag(flag) {
            let lit = failfilter::time_literal(raw)
                .map_err(|e| Error::args(format!("--{flag}: {e}")))?;
            conjoin(
                failfilter::compile(&format!("time {op} {lit}"))
                    .expect("desugared time bound compiles"),
            );
        }
    }
    Ok(pred)
}

/// `parse_opts` with the command's filter pushed down into the parser.
fn pushdown(parse_opts: &ParseOptions, filter: &Option<CompiledPredicate>) -> ParseOptions {
    let mut opts = parse_opts.clone();
    opts.filter.clone_from(filter);
    opts
}

/// Filters a snapshot-decoded view through the command's predicate
/// (identity without one). Snapshots always persist unfiltered state;
/// this is where a `--where` composes with a warm index — still with
/// zero parsing.
fn filter_view(view: failscope::StreamView, filter: &Option<CompiledPredicate>) -> failscope::StreamView {
    match filter {
        Some(p) => {
            let spec = view.spec().clone();
            let window = view.window();
            view.filtered(|r| p.matches(r, &spec, window))
        }
        None => view,
    }
}

/// `failctl generate`.
pub fn generate(args: &ParsedArgs) -> Result<String> {
    args.reject_unknown_flags(&["system", "seed", "out"])?;
    let system = args.flag("system").unwrap_or("tsubame3");
    let generation = match system {
        "tsubame2" => Generation::Tsubame2,
        "tsubame3" => Generation::Tsubame3,
        other => {
            return Err(Error::run(format!(
                "unknown system `{other}` (use tsubame2 or tsubame3)"
            )))
        }
    };
    let seed: u64 = args.flag_or("seed", 42)?;
    let log = Simulator::new(SystemModel::for_generation(generation), seed).generate()?;
    finish_generate(args, log)
}

/// `failctl scenario`.
pub fn scenario(args: &ParsedArgs) -> Result<String> {
    args.reject_unknown_flags(&[
        "nodes",
        "gpus",
        "mtbf",
        "days",
        "seed",
        "out",
        "multi",
        "trend-start",
        "trend-end",
    ])?;
    let mut builder = ScenarioBuilder::new("failctl-scenario")
        .nodes(args.flag_or("nodes", 540u32)?)
        .gpus_per_node(args.flag_or("gpus", 4u8)?)
        .system_mtbf_hours(args.flag_or("mtbf", 72.0f64)?)
        .window_days(args.flag_or("days", 365u32)?);
    if let Some(raw) = args.flag("multi") {
        let f: f64 = raw
            .parse()
            .map_err(|_| Error::args(format!("invalid --multi value `{raw}`")))?;
        builder = builder.multi_gpu_fraction(f);
    }
    let trend_start: f64 = args.flag_or("trend-start", 1.0)?;
    let trend_end: f64 = args.flag_or("trend-end", 1.0)?;
    builder = builder.reliability_trend(trend_start, trend_end);
    let model = builder
        .build()
        .ok_or_else(|| Error::run("scenario parameters out of range"))?;
    let seed: u64 = args.flag_or("seed", 42)?;
    let log = Simulator::new(model, seed).generate()?;
    finish_generate(args, log)
}

fn finish_generate(args: &ParsedArgs, log: FailureLog) -> Result<String> {
    match args.flag("out") {
        Some(path) => {
            faillog::save(path, &log)?;
            Ok(format!("wrote {} failures to {path}\n", log.len()))
        }
        None => Ok(faillog::to_string(&log)?),
    }
}

/// `failctl summary`.
pub fn summary(args: &ParsedArgs) -> Result<String> {
    args.reject_unknown_flags(&[])?;
    let log = load(args.positional(0, "file")?)?;
    let s = faillog::summarize(&log);
    let mut out = String::new();
    let _ = writeln!(out, "system:            {}", s.system);
    let _ = writeln!(out, "window:            {} ({:.0} days)", log.window(), s.window_days);
    let _ = writeln!(out, "failures:          {}", s.failures);
    let _ = writeln!(out, "failing nodes:     {}", s.failing_nodes);
    let _ = writeln!(out, "gpu failures:      {}", s.gpu_failures);
    let _ = writeln!(out, "multi-gpu:         {}", s.multi_gpu_failures);
    if let Some(tbf) = TbfAnalysis::from_log(&log) {
        let _ = writeln!(out, "mtbf:              {:.1} h", tbf.mtbf_hours());
    }
    if let Some(ttr) = failscope::TtrAnalysis::from_log(&log) {
        let _ = writeln!(out, "mttr:              {:.1} h", ttr.mttr_hours());
    }
    Ok(out)
}

/// Resolves the `--threads` flag (default: host parallelism). The
/// rendered output is byte-identical at every thread count.
fn threads_flag(args: &ParsedArgs) -> Result<usize> {
    args.flag_or("threads", failstats::available_threads())
}

/// How a command renders its result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OutputFormat {
    /// Operator-facing plain text (the default).
    Text,
    /// Machine-readable JSON (NDJSON for multi-section output).
    Json,
}

/// Resolves the `--format` flag (default: text).
fn format_flag(args: &ParsedArgs) -> Result<OutputFormat> {
    match args.flag("format").unwrap_or("text") {
        "text" => Ok(OutputFormat::Text),
        "json" => Ok(OutputFormat::Json),
        other => Err(Error::args(format!(
            "unknown --format `{other}` (use text or json)"
        ))),
    }
}

/// Resolves the `--index` flag. Snapshots are opt-in (`off` when the
/// flag is absent): the default report's metrics section truthfully
/// shows where the data came from, so a silently warm default would
/// change output between otherwise-identical invocations.
fn index_mode(args: &ParsedArgs) -> Result<IndexMode> {
    match args.flag("index") {
        None => Ok(IndexMode::Off),
        Some(raw) => raw.parse::<IndexMode>().map_err(Error::args),
    }
}

fn require_warm_err(path: &str, args: &ParsedArgs) -> Error {
    let mut msg = format!(
        "{path}: no warm .fsidx snapshot for --index require (build one with `failctl index build {path}`)"
    );
    if let Some(expr) = args.flag("where") {
        // Snapshots are always unfiltered, so the fix is the same build
        // command — the filter applies at read time, not build time.
        let _ = write!(
            msg,
            "; `--where {expr}` filters the snapshot at read time, so the same unfiltered build serves it"
        );
    }
    Error::run(msg)
}

/// A report's resolved input: a warm snapshot index, or a cold-parsed
/// (possibly filtered at ingest) log to be indexed in-process.
enum ReportInput {
    Warm(Box<failscope::StreamView>),
    Cold(FailureLog),
}

/// Loads a report's file input honouring `--index` and the command's
/// filter: a warm snapshot is served without parsing the log (exact
/// hit) or by parsing only its appended tail (prefix hit), with the
/// predicate applied to the decoded view; otherwise the log is parsed
/// cold with the predicate pushed into the parser. Auto mode refreshes
/// the snapshot best-effort after an *unfiltered* cold parse only — a
/// filtered parse never sees the whole log, and snapshots must.
fn open_report_input(
    args: &ParsedArgs,
    path: &str,
    trace: &Collector,
    parse_opts: &ParseOptions,
    filter: &Option<CompiledPredicate>,
) -> Result<ReportInput> {
    let mode = index_mode(args)?;
    if mode == IndexMode::Off {
        let log = load_traced(path, Some(trace), &pushdown(parse_opts, filter))?;
        return Ok(ReportInput::Cold(log));
    }
    let warm = |view: failscope::StreamView| -> Result<ReportInput> {
        Ok(ReportInput::Warm(Box::new(filter_view(view, filter))))
    };
    match failindex::open_indexed(path, Some(trace))? {
        IndexedLoad::Exact(snap) => warm(snap.into_view()),
        IndexedLoad::Extended { snapshot, .. } => warm(snapshot.into_view()),
        IndexedLoad::Cold { source } => {
            if mode == IndexMode::Require {
                return Err(require_warm_err(path, args));
            }
            if filter.is_some() {
                let log = load_traced(path, Some(trace), &pushdown(parse_opts, filter))?;
                return Ok(ReportInput::Cold(log));
            }
            let log = load_traced(path, Some(trace), parse_opts)?;
            failindex::save_traced(
                failindex::snapshot_path(path),
                &failscope::LogView::new(&log),
                source,
                Some(trace),
            )
            .ok();
            Ok(ReportInput::Cold(log))
        }
    }
}

/// `failctl report`.
///
/// The input is either a log file (positional) or `--model NAME
/// [--seed N]`, which generates the calibrated log in-process. Every
/// run records pipeline tracing — generation/parsing, index
/// construction, per-section rendering — so `--sections metrics`
/// always has data, and `--trace PATH` writes the deterministic NDJSON
/// export (byte-identical at any `--threads` value).
pub fn report(args: &ParsedArgs) -> Result<String> {
    args.reject_unknown_flags(&[
        "threads", "since", "until", "where", "format", "sections", "model", "seed", "trace",
        "parse-chunk", "index",
    ])?;
    let threads = threads_flag(args)?;
    let format = format_flag(args)?;
    let parse_opts = parse_options(args)?;
    let filter = build_filter(args)?;
    let sections = match args.flag("sections") {
        Some(spec) => failscope::select_sections(spec)?,
        None => failscope::SECTIONS.iter().collect(),
    };
    let trace = Collector::new();
    let input = match args.flag("model") {
        Some(name) => {
            if !args.positional.is_empty() {
                return Err(Error::args(
                    "pass either a log file or --model, not both",
                ));
            }
            if let Some(mode) = args.flag("index") {
                return Err(Error::args(format!(
                    "--index {mode} only applies to file input (--model {name} is generated in-process)"
                )));
            }
            let seed: u64 = args.flag_or("seed", 42)?;
            let log = Simulator::new(model_by_name(name)?, seed).generate_traced(Some(&trace))?;
            // The model path never touches the parser; the predicate
            // applies directly to the generated records.
            match &filter {
                Some(p) => {
                    let (spec, window) = (log.spec().clone(), log.window());
                    ReportInput::Cold(log.filtered(|r| p.matches(r, &spec, window)))
                }
                None => ReportInput::Cold(log),
            }
        }
        None => {
            if let Some(seed) = args.flag("seed") {
                return Err(Error::args(format!(
                    "--seed {seed} only applies with --model"
                )));
            }
            let path = args.positional(0, "file")?;
            open_report_input(args, path, &trace, &parse_opts, &filter)?
        }
    };
    let render = |ctx: &SectionCtx<'_>| match format {
        OutputFormat::Text => failscope::render_text_sections(&sections, ctx, threads),
        OutputFormat::Json => failscope::render_json_sections(&sections, ctx, threads),
    };
    let out = match &input {
        ReportInput::Warm(view) => render(&SectionCtx::with_trace(view.as_ref(), &trace)),
        ReportInput::Cold(log) => {
            let view = failscope::LogView::new_traced(log, Some(&trace));
            render(&SectionCtx::with_trace(&view, &trace))
        }
    };
    write_trace(args, &trace)?;
    Ok(out)
}

/// Loads one `compare` input honouring `--index` and the command's
/// filter: warm snapshots are filtered as decoded views and converted
/// back to a log without parsing (the comparison renderer works on
/// logs); cold parses push the predicate into the parser and refresh
/// the snapshot in auto mode only when unfiltered.
fn load_compare_input(
    args: &ParsedArgs,
    path: &str,
    trace: &Collector,
    parse_opts: &ParseOptions,
    mode: IndexMode,
    filter: &Option<CompiledPredicate>,
) -> Result<FailureLog> {
    if mode == IndexMode::Off {
        return load_traced(path, Some(trace), &pushdown(parse_opts, filter));
    }
    match failindex::open_indexed(path, Some(trace))? {
        IndexedLoad::Exact(snap) => Ok(filter_view(snap.into_view(), filter).to_log()),
        IndexedLoad::Extended { snapshot, .. } => {
            Ok(filter_view(snapshot.into_view(), filter).to_log())
        }
        IndexedLoad::Cold { source } => {
            if mode == IndexMode::Require {
                return Err(require_warm_err(path, args));
            }
            if filter.is_some() {
                return load_traced(path, Some(trace), &pushdown(parse_opts, filter));
            }
            let log = load_traced(path, Some(trace), parse_opts)?;
            failindex::save_traced(
                failindex::snapshot_path(path),
                &failscope::LogView::new(&log),
                source,
                Some(trace),
            )
            .ok();
            Ok(log)
        }
    }
}

/// `failctl compare`.
pub fn compare(args: &ParsedArgs) -> Result<String> {
    args.reject_unknown_flags(&[
        "threads", "since", "until", "where", "format", "trace", "parse-chunk", "index",
    ])?;
    let threads = threads_flag(args)?;
    let format = format_flag(args)?;
    let parse_opts = parse_options(args)?;
    let filter = build_filter(args)?;
    let mode = index_mode(args)?;
    let trace = Collector::new();
    let older =
        load_compare_input(args, args.positional(0, "old")?, &trace, &parse_opts, mode, &filter)?;
    let newer =
        load_compare_input(args, args.positional(1, "new")?, &trace, &parse_opts, mode, &filter)?;
    let out = trace.time("compare.render", || match format {
        OutputFormat::Text => failscope::render_comparison_threaded(&older, &newer, threads),
        OutputFormat::Json => failscope::render_comparison_json(&older, &newer, threads),
    });
    write_trace(args, &trace)?;
    Ok(out)
}

/// `failctl index`: explicit `.fsidx` snapshot management.
///
/// `build` parses the log and writes a fresh snapshot; `verify` is a
/// read-only freshness check (exit status reflects usability); `stat`
/// prints a snapshot's own metadata without touching the source log.
pub fn index_cmd(args: &ParsedArgs) -> Result<String> {
    args.reject_unknown_flags(&["threads", "parse-chunk"])?;
    let action = args.positional(0, "build|verify|stat")?;
    let path = args.positional(1, "file")?;
    match action {
        "build" => {
            let parse_opts = parse_options(args)?;
            let raw = std::fs::read(path).map_err(|e| Error::run(format!("{path}: {e}")))?;
            let source = failindex::SourceInfo::of_bytes(&raw);
            let log = load_traced(path, None, &parse_opts)?;
            let spath = failindex::snapshot_path(path);
            let bytes = failindex::save(&spath, &failscope::LogView::new(&log), source)?;
            Ok(format!(
                "indexed {} records -> {} ({bytes} bytes)\n",
                log.len(),
                spath.display()
            ))
        }
        "verify" => {
            let spath = failindex::snapshot_path(path);
            match failindex::probe(path)? {
                Freshness::Exact => Ok(format!("{}: exact match\n", spath.display())),
                Freshness::Prefix { tail_bytes } => Ok(format!(
                    "{}: prefix match ({tail_bytes} bytes appended since the snapshot)\n",
                    spath.display()
                )),
                Freshness::Stale { reason } => Err(Error::run(format!(
                    "{}: stale snapshot: {reason}",
                    spath.display()
                ))),
                Freshness::Missing => Err(Error::run(format!(
                    "{path}: no .fsidx snapshot (run `failctl index build {path}`)"
                ))),
            }
        }
        "stat" => {
            let spath = if path.ends_with(".fsidx") {
                std::path::PathBuf::from(path)
            } else {
                failindex::snapshot_path(path)
            };
            let snap = failindex::load(&spath)?;
            let source = snap.source();
            let spec = failscope::FleetIndex::spec(&snap);
            let mut out = String::new();
            let _ = writeln!(out, "snapshot: {}", spath.display());
            let _ = writeln!(out, "format:   fsidx v{}", failindex::FORMAT_VERSION);
            let _ = writeln!(
                out,
                "system:   {} ({} nodes x {} GPUs)",
                spec.name(),
                spec.nodes(),
                spec.gpus_per_node()
            );
            let _ = writeln!(out, "window:   {}", failscope::FleetIndex::window(&snap));
            let _ = writeln!(out, "records:  {}", failscope::FleetIndex::len(&snap));
            let _ = writeln!(
                out,
                "source:   {} bytes, {} lines, crc32 {:08x}",
                source.bytes, source.lines, source.crc32
            );
            Ok(out)
        }
        other => Err(Error::args(format!(
            "unknown index action `{other}` (use build, verify, or stat)"
        ))),
    }
}

/// `failctl anonymize`.
pub fn anonymize(args: &ParsedArgs) -> Result<String> {
    args.reject_unknown_flags(&["key"])?;
    let input = args.positional(0, "in")?;
    let output = args.positional(1, "out")?;
    let key: u64 = args.flag_or("key", 0xFA11_5C0F)?;
    let log = load(input)?;
    let anon = faillog::anonymize_nodes(&log, key);
    faillog::save(output, &anon)?;
    Ok(format!("anonymized {} records -> {output}\n", anon.len()))
}

/// `failctl checkpoint`.
pub fn checkpoint(args: &ParsedArgs) -> Result<String> {
    args.reject_unknown_flags(&["cost"])?;
    let log = load(args.positional(0, "file")?)?;
    let cost: f64 = args.flag_or("cost", 0.25)?;
    let plan = CheckpointPlan::from_log(&log, cost).map_err(|e| Error::run(e.to_string()))?;
    let daly = plan.daly_interval_hours();
    let mut out = String::new();
    let _ = writeln!(out, "mtbf:            {:.1} h", plan.mtbf_hours());
    let _ = writeln!(out, "checkpoint cost: {:.2} h", plan.checkpoint_cost_hours());
    let _ = writeln!(out, "young interval:  {:.2} h", plan.young_interval_hours());
    let _ = writeln!(out, "daly interval:   {daly:.2} h");
    let _ = writeln!(out, "efficiency:      {:.1}%", plan.efficiency(daly) * 100.0);
    Ok(out)
}

/// `failctl spares`.
pub fn spares(args: &ParsedArgs) -> Result<String> {
    args.reject_unknown_flags(&["class", "lead-days", "risk"])?;
    let log = load(args.positional(0, "file")?)?;
    let class = match args.flag("class").unwrap_or("gpu") {
        "gpu" => ComponentClass::Gpu,
        "cpu" => ComponentClass::Cpu,
        "memory" => ComponentClass::Memory,
        "storage" => ComponentClass::Storage,
        "power" => ComponentClass::Power,
        "board" => ComponentClass::Board,
        other => return Err(Error::args(format!("unknown component class `{other}`"))),
    };
    let lead_days: f64 = args.flag_or("lead-days", 14.0)?;
    let risk: f64 = args.flag_or("risk", 0.05)?;
    if !(risk > 0.0 && risk < 1.0) {
        return Err(Error::args("--risk must be in (0, 1)"));
    }
    let policy = SparePolicy::from_log(&log, class, lead_days * 24.0)
        .ok_or_else(|| Error::run(format!("no {} failures in the log", class.name())))?;
    let spares = policy.required_spares(risk);
    let mut out = String::new();
    let _ = writeln!(out, "class:            {}", class.name());
    let _ = writeln!(out, "lead time:        {lead_days:.1} days");
    let _ = writeln!(out, "lead-time demand: {:.2} failures", policy.lead_time_demand());
    let _ = writeln!(out, "required spares:  {spares} (stockout <= {:.1}%)", risk * 100.0);
    let _ = writeln!(
        out,
        "residual risk:    {:.2}%",
        policy.stockout_probability(spares) * 100.0
    );
    Ok(out)
}

/// `failctl availability`.
pub fn availability(args: &ParsedArgs) -> Result<String> {
    args.reject_unknown_flags(&[])?;
    let log = load(args.positional(0, "file")?)?;
    let a = AvailabilityAnalysis::from_log(&log)
        .ok_or_else(|| Error::run("log is empty"))?;
    let mut out = String::new();
    let _ = writeln!(out, "repair overlap probability:  {:.1}%", a.overlap_probability() * 100.0);
    let _ = writeln!(out, "mean concurrent repairs:     {:.2}", a.mean_concurrent_repairs());
    let _ = writeln!(out, "max concurrent repairs:      {}", a.max_concurrent_repairs());
    let _ = writeln!(out, "time with repairs open:      {:.1}%", a.repair_busy_fraction() * 100.0);
    let _ = writeln!(out, "node-hours lost:             {:.0}", a.node_hours_lost());
    let _ = writeln!(out, "node availability:           {:.3}%", a.node_availability() * 100.0);
    Ok(out)
}

/// `failctl survival`.
pub fn survival(args: &ParsedArgs) -> Result<String> {
    args.reject_unknown_flags(&[])?;
    let log = load(args.positional(0, "file")?)?;
    let s = NodeSurvival::from_log(&log)
        .ok_or_else(|| Error::run("cannot fit a survival curve"))?;
    let horizon = log.window().duration().get();
    let mut out = String::new();
    let _ = writeln!(out, "nodes that failed:       {}", s.observed_failures());
    let _ = writeln!(out, "nodes never failed:      {}", s.censored_nodes());
    for frac in [0.25, 0.5, 0.75, 1.0] {
        let t = horizon * frac;
        let _ = writeln!(
            out,
            "S({:>6.0} h) = {:.3}",
            t,
            s.survival_at(t)
        );
    }
    match s.median_hours() {
        Some(m) => {
            let _ = writeln!(out, "median time to first failure: {m:.0} h");
        }
        None => {
            let _ = writeln!(out, "median time to first failure: beyond the window");
        }
    }
    Ok(out)
}

/// `failctl staffing`.
pub fn staffing(args: &ParsedArgs) -> Result<String> {
    args.reject_unknown_flags(&["crews", "target"])?;
    let log = load(args.positional(0, "file")?)?;
    let target: f64 = args.flag_or("target", 1.05)?;
    if target < 1.0 {
        return Err(Error::args("--target must be at least 1.0"));
    }
    let mut out = String::new();
    if let Some(raw) = args.flag("crews") {
        let crews: u32 = raw
            .parse()
            .map_err(|_| Error::args(format!("invalid --crews value `{raw}`")))?;
        let o = simulate_staffing(&log, crews)
            .ok_or_else(|| Error::run("log is empty or crews is zero"))?;
        let _ = writeln!(out, "crews:            {}", o.crews);
        let _ = writeln!(out, "hands-on mttr:    {:.1} h", o.hands_on_mttr_hours);
        let _ = writeln!(out, "effective mttr:   {:.1} h ({:.2}x)", o.effective_mttr_hours, o.inflation());
        let _ = writeln!(out, "mean wait:        {:.1} h", o.mean_wait_hours);
        let _ = writeln!(out, "delayed failures: {:.1}%", o.delayed_fraction * 100.0);
    } else {
        let _ = writeln!(out, "crews  effective mttr  inflation  delayed");
        for crews in 1..=10 {
            let o = simulate_staffing(&log, crews)
                .ok_or_else(|| Error::run("log is empty"))?;
            let _ = writeln!(
                out,
                "{:>5}  {:>12.1} h  {:>8.2}x  {:>6.1}%",
                crews,
                o.effective_mttr_hours,
                o.inflation(),
                o.delayed_fraction * 100.0
            );
        }
        match required_crews(&log, target, 64) {
            Some(c) => {
                let _ = writeln!(out, "crews for <= {:.0}% queueing overhead: {c}", (target - 1.0) * 100.0);
            }
            None => {
                let _ = writeln!(out, "no crew count up to 64 meets the target");
            }
        }
    }
    Ok(out)
}

/// `failctl plan`.
pub fn plan(args: &ParsedArgs) -> Result<String> {
    args.reject_unknown_flags(&[])?;
    let log = load(args.positional(0, "file")?)?;
    let plan = OperationsPlan::from_log(&log, PlanConfig::default())
        .ok_or_else(|| Error::run("log too small to plan from"))?;
    Ok(plan.render())
}

/// `failctl racks`.
pub fn racks(args: &ParsedArgs) -> Result<String> {
    args.reject_unknown_flags(&[])?;
    let log = load(args.positional(0, "file")?)?;
    let d = failscope::RackDistribution::from_log(&log);
    let mut out = String::new();
    let mut rows: Vec<_> = d.shares().to_vec();
    rows.sort_by_key(|share| std::cmp::Reverse(share.count));
    for share in rows.iter().take(10) {
        let _ = writeln!(
            out,
            "{:<8} {:>4} failures over {:>3} nodes",
            share.rack.to_string(),
            share.count,
            share.nodes
        );
    }
    if d.shares().len() > 10 {
        let _ = writeln!(out, "... ({} racks total)", d.shares().len());
    }
    if let Some(test) = d.uniformity_test() {
        let _ = writeln!(
            out,
            "uniformity: chi2 = {:.1}, dof = {}, p = {:.4} -> {}",
            test.statistic,
            test.dof,
            test.p_value,
            if test.rejects_at(0.01) {
                "non-uniform"
            } else {
                "consistent with uniform"
            }
        );
    }
    Ok(out)
}

fn model_by_name(name: &str) -> Result<SystemModel> {
    match name {
        "tsubame2" => Ok(SystemModel::tsubame2()),
        "tsubame3" => Ok(SystemModel::tsubame3()),
        other => Err(Error::run(format!(
            "unknown model `{other}` (use tsubame2 or tsubame3)"
        ))),
    }
}

/// `failctl watch`: streams a log file or a simulated replay through
/// the online monitor, writing NDJSON alerts and periodic summaries to
/// `out` as they happen (which is why this one takes a writer instead
/// of returning a `String`).
pub fn watch_stream(args: &ParsedArgs, out: &mut dyn io::Write) -> Result<()> {
    args.reject_unknown_flags(&[
        "follow",
        "accel",
        "seed",
        "inject-mttr",
        "baseline",
        "window",
        "refresh",
        "chunk",
        "max-records",
        "max-idle",
        "threads",
        "where",
        "format",
        "sections",
        "trace",
        "parse-chunk",
        "index",
    ])?;
    let source_arg = args.positional(0, "path|sim:MODEL")?;
    let filter = build_filter(args)?;
    let persist_index = match index_mode(args)? {
        IndexMode::Off => false,
        IndexMode::Auto => true,
        IndexMode::Require => {
            return Err(Error::args(
                "watch supports --index auto or off (snapshots are written, never read)",
            ))
        }
    };
    if persist_index {
        if let Some(expr) = args.flag("where") {
            // Snapshots must cover the whole log; a watch scoped by a
            // predicate accumulates filtered state that must never be
            // persisted as an index.
            return Err(Error::args(format!(
                "--index auto cannot persist an index scoped by `--where {expr}`; drop one of the two flags"
            )));
        }
    }

    let mut source: Box<dyn EventSource> = if let Some(name) = source_arg.strip_prefix("sim:") {
        let clock = match args.flag("accel").unwrap_or("max") {
            "max" => ReplayClock::unpaced(),
            raw => {
                let rate: f64 = raw.parse().map_err(|_| {
                    Error::args(format!(
                        "invalid --accel value `{raw}` (sim hours per wall second, or `max`)"
                    ))
                })?;
                ReplayClock::new(rate)
            }
        };
        if let Some(bytes) = args.flag("parse-chunk") {
            return Err(Error::args(format!(
                "--parse-chunk {bytes} only applies to file sources (sim:{name} is generated in-process)"
            )));
        }
        if let Some(mode) = args.flag("index") {
            return Err(Error::args(format!(
                "--index {mode} only applies to file sources (sim:{name} has no log to snapshot)"
            )));
        }
        let seed: u64 = args.flag_or("seed", 42)?;
        let mut src = SimSource::new(model_by_name(name)?, seed, clock)?;
        if let Some(raw) = args.flag("inject-mttr") {
            let factor: f64 = raw.parse().map_err(|_| {
                Error::args(format!("invalid --inject-mttr value `{raw}`"))
            })?;
            if !(factor.is_finite() && factor > 0.0) {
                return Err(Error::args("--inject-mttr must be positive"));
            }
            // The canonical regression scenario: repairs slow down by
            // `factor` halfway through the replay.
            src = src.with_mttr_injection(factor, 0.5);
        }
        Box::new(src)
    } else {
        for flag in ["accel", "seed", "inject-mttr"] {
            if let Some(value) = args.flag(flag) {
                return Err(Error::args(format!(
                    "--{flag} {value} only applies to sim: sources (`{source_arg}` is a file)"
                )));
            }
        }
        let capacity = match args.flag("parse-chunk") {
            Some(_) => Some(parse_options(args)?.chunk_bytes),
            None => None,
        };
        Box::new(TailSource::open_with_capacity(
            source_arg,
            args.switch("follow"),
            capacity,
        )?)
    };

    let baseline = match args.flag("baseline") {
        Some("none") => None,
        Some(name) => Some(Baseline::from_model(model_by_name(name)?, 1)?),
        // Default: the calibrated model matching the stream's system
        // generation, so drift means "unlike the paper's machine".
        None => Some(Baseline::from_model(
            SystemModel::for_generation(source.generation()),
            1,
        )?),
    };
    let detector = baseline.map(|b| DriftDetector::new(b, DriftConfig::default()));

    let trace = Collector::new();
    let state = StateConfig::builder()
        .window(args.flag_or("window", StateConfig::default().window)?)
        .build()?;
    let mut builder = WatchConfig::builder()
        .state(state)
        .refresh_every(args.flag_or("refresh", 100)?)
        .ingest_chunk(args.flag_or("chunk", WatchConfig::default().ingest_chunk)?)
        .threads(threads_flag(args)?)
        .json_summaries(format_flag(args)? == OutputFormat::Json)
        .trace(trace.clone());
    if let Some(pred) = filter {
        builder = builder.filter(pred);
    }
    if let Some(raw) = args.flag("max-idle") {
        let polls: u64 = raw
            .parse()
            .map_err(|_| Error::args(format!("invalid --max-idle value `{raw}`")))?;
        builder = builder.max_idle_polls(polls);
    }
    if let Some(raw) = args.flag("max-records") {
        let records: usize = raw
            .parse()
            .map_err(|_| Error::args(format!("invalid --max-records value `{raw}`")))?;
        builder = builder.max_records(records);
    }
    if let Some(spec) = args.flag("sections") {
        builder = builder.summary_sections(failwatch::select_watch_sections(spec)?);
    }
    let config = builder.build()?;
    let outcome = failwatch::run(source.as_mut(), detector, &config, out)?;
    // Clean shutdown: persist the accumulated index so a later
    // `report --index auto` on the same log starts warm. The source's
    // progress fingerprint covers exactly the bytes whose records the
    // state ingested, so a bounded run (--max-records) snapshots a
    // valid prefix of the file.
    if persist_index {
        if let Some((log_path, progress)) = source.snapshot_target() {
            let source_info = failindex::SourceInfo {
                bytes: progress.bytes,
                crc32: progress.crc32,
                lines: progress.lines,
            };
            failindex::save_traced(
                failindex::snapshot_path(&log_path),
                outcome.state.view(),
                source_info,
                Some(&trace),
            )
            .ok();
        }
    }
    write_trace(args, &trace)?;
    Ok(())
}

/// `failctl watch` via the uniform dispatch path: buffers the stream
/// and returns it as a string (main.rs streams to stdout instead).
pub fn watch(args: &ParsedArgs) -> Result<String> {
    let mut buf = Vec::new();
    watch_stream(args, &mut buf)?;
    String::from_utf8(buf).map_err(|_| Error::run("watch produced non-UTF8 output"))
}

/// Dispatches a parsed command line.
pub fn dispatch(args: &ParsedArgs) -> Result<String> {
    match args.command.as_str() {
        "generate" => generate(args),
        "scenario" => scenario(args),
        "summary" => summary(args),
        "report" => report(args),
        "compare" => compare(args),
        "index" => index_cmd(args),
        "anonymize" => anonymize(args),
        "checkpoint" => checkpoint(args),
        "spares" => spares(args),
        "availability" => availability(args),
        "survival" => survival(args),
        "staffing" => staffing(args),
        "plan" => plan(args),
        "racks" => racks(args),
        "watch" => watch(args),
        "help" | "--help" | "-h" => Ok(help()),
        other => Err(Error::run(format!(
            "unknown command `{other}`; try `failctl help`"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> ParsedArgs {
        ParsedArgs::parse(words.iter().map(|s| s.to_string())).expect("parses")
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("failctl-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    #[test]
    fn generate_to_stdout_and_file() {
        let text = generate(&parse(&["generate", "--system", "tsubame3", "--seed", "7"]))
            .expect("generates");
        assert!(text.starts_with("# failscope-log v1"));
        let path = temp_path("gen.fslog");
        let msg = generate(&parse(&[
            "generate",
            "--out",
            path.to_str().expect("utf8 path"),
        ]))
        .expect("generates");
        assert!(msg.contains("338 failures"));
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn generate_rejects_unknown_system_and_flags() {
        assert!(generate(&parse(&["generate", "--system", "cray"])).is_err());
        assert!(generate(&parse(&["generate", "--sytem", "tsubame2"])).is_err());
    }

    #[test]
    fn full_pipeline_through_files() {
        let log_path = temp_path("pipeline.fslog");
        let path = log_path.to_str().expect("utf8 path");
        generate(&parse(&["generate", "--system", "tsubame2", "--out", path]))
            .expect("generates");

        let s = summary(&parse(&["summary", path])).expect("summarizes");
        assert!(s.contains("failures:          897"));
        assert!(s.contains("mtbf:"));

        let r = report(&parse(&["report", path])).expect("reports");
        assert!(r.contains("Failure categories"));
        let r1 = report(&parse(&["report", path, "--threads", "1"])).expect("reports");
        let r4 = report(&parse(&["report", path, "--threads", "4"])).expect("reports");
        assert_eq!(r, r1, "default thread count changes nothing");
        assert_eq!(r1, r4, "thread count changes the report");
        assert!(report(&parse(&["report", path, "--thread", "4"])).is_err());

        let c = checkpoint(&parse(&["checkpoint", path, "--cost", "0.1"])).expect("plans");
        assert!(c.contains("daly interval"));

        let sp = spares(&parse(&["spares", path, "--class", "gpu"])).expect("sizes");
        assert!(sp.contains("required spares"));

        let av = availability(&parse(&["availability", path])).expect("analyzes");
        assert!(av.contains("repair overlap"));

        let sv = survival(&parse(&["survival", path])).expect("fits");
        assert!(sv.contains("nodes that failed"));

        let st = staffing(&parse(&["staffing", path])).expect("simulates");
        assert!(st.contains("queueing overhead"));
        let st = staffing(&parse(&["staffing", path, "--crews", "2"])).expect("simulates");
        assert!(st.contains("effective mttr"));
        assert!(staffing(&parse(&["staffing", path, "--target", "0.5"])).is_err());

        let pl = plan(&parse(&["plan", path])).expect("plans");
        assert!(pl.contains("Operations plan"));
        assert!(pl.contains("repair crews"));

        let rk = racks(&parse(&["racks", path])).expect("analyzes");
        assert!(rk.contains("uniformity"));
        assert!(rk.contains("non-uniform"));

        let anon_path = temp_path("pipeline-anon.fslog");
        let anon = anonymize(&parse(&[
            "anonymize",
            path,
            anon_path.to_str().expect("utf8 path"),
            "--key",
            "9",
        ]))
        .expect("anonymizes");
        assert!(anon.contains("897 records"));

        std::fs::remove_file(&log_path).expect("cleanup");
        std::fs::remove_file(&anon_path).expect("cleanup");
    }

    #[test]
    fn compare_two_generations() {
        let p2 = temp_path("cmp2.fslog");
        let p3 = temp_path("cmp3.fslog");
        generate(&parse(&["generate", "--system", "tsubame2", "--out", p2.to_str().unwrap()]))
            .expect("generates");
        generate(&parse(&["generate", "--system", "tsubame3", "--out", p3.to_str().unwrap()]))
            .expect("generates");
        let out = compare(&parse(&[
            "compare",
            p2.to_str().unwrap(),
            p3.to_str().unwrap(),
        ]))
        .expect("compares");
        assert!(out.contains("MTBF"));
        std::fs::remove_file(&p2).expect("cleanup");
        std::fs::remove_file(&p3).expect("cleanup");
    }

    #[test]
    fn scenario_generation() {
        let out = scenario(&parse(&[
            "scenario", "--nodes", "64", "--gpus", "8", "--mtbf", "30", "--days", "120",
        ]))
        .expect("generates");
        assert!(out.contains("gpus-per-node: 8"));
        // Out-of-range parameters fail cleanly.
        assert!(scenario(&parse(&["scenario", "--gpus", "9"])).is_err());
        assert!(scenario(&parse(&["scenario", "--multi", "1.5"])).is_err());
        assert!(scenario(&parse(&["scenario", "--trend-start", "0"])).is_err());
        // A wear-out trend generates successfully.
        assert!(scenario(&parse(&[
            "scenario", "--trend-start", "0.5", "--trend-end", "2.0",
        ]))
        .is_ok());
    }

    #[test]
    fn spares_flag_validation() {
        let path = temp_path("spares.fslog");
        generate(&parse(&["generate", "--out", path.to_str().unwrap()])).expect("generates");
        assert!(spares(&parse(&["spares", path.to_str().unwrap(), "--class", "quantum"]))
            .is_err());
        assert!(spares(&parse(&["spares", path.to_str().unwrap(), "--risk", "2.0"])).is_err());
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn dispatch_routes_and_rejects() {
        assert!(dispatch(&parse(&["help"])).expect("help").contains("USAGE"));
        assert!(dispatch(&parse(&["frobnicate"])).is_err());
        // Missing file errors are reported, not panicked.
        assert!(dispatch(&parse(&["report", "/no/such/file"])).is_err());
    }

    #[test]
    fn load_errors_carry_path_line_and_field() {
        let path = temp_path("broken.fslog");
        std::fs::write(
            &path,
            "# failscope-log v1\n# generation: Tsubame-3\n# name: Tsubame-3\n# nodes: 540\n\
             # gpus-per-node: 4\n# window: 2017-05-09..2020-02-22\n\
             id,time_h,ttr_h,category,node,gpus,locus\n0,12.0,oops,GPU,5,0,\n",
        )
        .expect("write");
        let err = load(path.to_str().unwrap()).unwrap_err().to_string();
        assert!(err.contains("broken.fslog"), "{err}");
        assert!(err.contains("line 8"), "{err}");
        assert!(err.contains("ttr_h"), "{err}");
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn report_formats_and_section_selection() {
        let path = temp_path("fmt.fslog");
        let p = path.to_str().unwrap();
        generate(&parse(&["generate", "--system", "tsubame3", "--out", p])).expect("generates");

        // JSON report: one NDJSON line per section, thread-identical.
        let j1 = report(&parse(&["report", p, "--format", "json", "--threads", "1"]))
            .expect("reports");
        let j4 = report(&parse(&["report", p, "--format", "json", "--threads", "4"]))
            .expect("reports");
        assert_eq!(j1, j4);
        assert_eq!(j1.lines().count(), failscope::SECTIONS.len());
        assert!(j1.starts_with(r#"{"id":"header""#), "{j1}");
        assert!(j1.contains(r#""system":"Tsubame-3""#), "{j1}");

        // Section selection works for both formats and rejects unknowns.
        let picked = report(&parse(&["report", p, "--sections", "tbf,ttr"])).expect("reports");
        assert!(picked.contains("Time between failures"));
        assert!(!picked.contains("Failure categories"));
        let picked_json = report(&parse(&[
            "report", p, "--sections", "tbf,ttr", "--format", "json",
        ]))
        .expect("reports");
        assert_eq!(picked_json.lines().count(), 2);
        let err = report(&parse(&["report", p, "--sections", "tbf,bogus"])).unwrap_err();
        assert!(err.to_string().contains("unknown section `bogus`"), "{err}");
        assert!(report(&parse(&["report", p, "--format", "yaml"])).is_err());

        // Comparison JSON is a single document.
        let cj = compare(&parse(&["compare", p, p, "--format", "json"])).expect("compares");
        assert_eq!(cj.lines().count(), 1);
        assert!(cj.contains(r#""mttr_hours":{"older":"#), "{cj}");

        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn gzip_report_matches_plain_end_to_end() {
        let plain = temp_path("gzcmp.fslog");
        let packed = temp_path("gzcmp.fslog.gz");
        let p = plain.to_str().unwrap();
        let g = packed.to_str().unwrap();
        generate(&parse(&["generate", "--system", "tsubame3", "--out", p])).expect("generates");
        generate(&parse(&["generate", "--system", "tsubame3", "--out", g])).expect("generates");
        // The .gz output really is gzip (magic bytes) and smaller.
        let raw = std::fs::read(&packed).expect("read gz");
        assert_eq!(&raw[..2], &[0x1F, 0x8B], "not gzip output");
        let plain_len = std::fs::metadata(&plain).expect("stat").len() as usize;
        assert!(raw.len() * 10 < plain_len * 8, "{} vs {plain_len}", raw.len());
        // Same report from compressed and plain input, both formats.
        let rp = report(&parse(&["report", p])).expect("reports plain");
        let rg = report(&parse(&["report", g])).expect("reports gzip");
        assert_eq!(rp, rg, "gzip input changed the report");
        let jp = report(&parse(&["report", p, "--format", "json"])).expect("reports");
        let jg = report(&parse(&["report", g, "--format", "json"])).expect("reports");
        assert_eq!(jp, jg);
        // compare accepts compressed input too.
        let c = compare(&parse(&["compare", g, p])).expect("compares");
        assert!(c.contains("MTBF"));
        std::fs::remove_file(&plain).expect("cleanup");
        std::fs::remove_file(&packed).expect("cleanup");
    }

    #[test]
    fn parse_chunk_flag_changes_nothing_but_is_validated() {
        let path = temp_path("chunked.fslog");
        let p = path.to_str().unwrap();
        generate(&parse(&["generate", "--system", "tsubame2", "--out", p])).expect("generates");
        // Analysis output is identical for every chunk size and thread
        // count. The full report is only compared at a fixed chunk size
        // across threads, because its metrics section truthfully
        // reports `parse.chunks`, which does change with --parse-chunk.
        let analysis = "header,categories,spatial,involvement,tbf,ttr,availability,survival,seasonal";
        let base = report(&parse(&["report", p, "--sections", analysis])).expect("reports");
        for chunk in ["1", "4096", "1048576"] {
            for threads in ["1", "4"] {
                let out = report(&parse(&[
                    "report", p, "--sections", analysis,
                    "--parse-chunk", chunk, "--threads", threads,
                ]))
                .expect("reports");
                assert_eq!(out, base, "--parse-chunk {chunk} --threads {threads}");
            }
        }
        let full1 = report(&parse(&["report", p, "--parse-chunk", "64", "--threads", "1"]))
            .expect("reports");
        let full4 = report(&parse(&["report", p, "--parse-chunk", "64", "--threads", "4"]))
            .expect("reports");
        assert_eq!(full1, full4, "metrics must stay thread-invariant");
        let c = compare(&parse(&["compare", p, p, "--parse-chunk", "512"])).expect("compares");
        assert!(c.contains("MTBF"));
        assert!(report(&parse(&["report", p, "--parse-chunk", "0"])).is_err());
        assert!(report(&parse(&["report", p, "--parse-chunk", "lots"])).is_err());
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn watch_reads_gzip_replay_but_rejects_follow_on_it() {
        let packed = temp_path("watch-replay.fslog.gz");
        let g = packed.to_str().unwrap();
        generate(&parse(&["generate", "--system", "tsubame2", "--out", g])).expect("generates");
        let out = watch(&parse(&["watch", g, "--baseline", "tsubame2"])).expect("watches");
        assert!(out.contains("897 records"), "{out}");
        let err = watch(&parse(&["watch", g, "--follow"])).unwrap_err();
        assert!(err.to_string().contains("--follow requires plain text"), "{err}");
        // --parse-chunk tunes the file read buffer; sim sources reject it.
        let tuned = watch(&parse(&[
            "watch", g, "--baseline", "tsubame2", "--parse-chunk", "4096",
        ]))
        .expect("watches");
        assert_eq!(out, tuned);
        assert!(watch(&parse(&["watch", "sim:tsubame3", "--parse-chunk", "4096"])).is_err());
        std::fs::remove_file(&packed).expect("cleanup");
    }

    #[test]
    fn watch_json_format_and_sections() {
        let out = watch(&parse(&[
            "watch", "sim:tsubame3", "--format", "json", "--max-records", "50",
        ]))
        .expect("watches");
        // Pure NDJSON: every line parses as an object.
        assert!(out.lines().all(|l| l.starts_with('{')), "{out}");
        assert!(out.contains(r#"{"id":"overview","title":"Stream overview","data":{"#));

        let picked = watch(&parse(&[
            "watch", "sim:tsubame3", "--sections", "overview", "--max-records", "50",
        ]))
        .expect("watches");
        assert!(picked.contains("# summary @"));
        assert!(!picked.contains("#   categories:"));
        assert!(watch(&parse(&["watch", "sim:tsubame3", "--sections", "nope"])).is_err());
    }

    /// The analysis sections (everything except `metrics`, whose
    /// counters truthfully differ between a parse and a snapshot hit).
    const ANALYSIS: &str =
        "header,categories,spatial,involvement,tbf,ttr,availability,survival,seasonal";

    #[test]
    fn index_lifecycle_and_warm_reports_match_cold_byte_for_byte() {
        let path = temp_path("idx.fslog");
        let p = path.to_str().unwrap();
        let spath = format!("{p}.fsidx");
        generate(&parse(&["generate", "--system", "tsubame2", "--out", p])).expect("generates");

        // No snapshot yet: require refuses, verify reports it missing.
        let err = report(&parse(&["report", p, "--index", "require"])).unwrap_err();
        assert!(err.to_string().contains("no warm .fsidx snapshot"), "{err}");
        let err = index_cmd(&parse(&["index", "verify", p])).unwrap_err();
        assert!(err.to_string().contains("no .fsidx snapshot"), "{err}");
        assert!(report(&parse(&["report", p, "--index", "sometimes"])).is_err());

        // Build, then inspect.
        let built = index_cmd(&parse(&["index", "build", p])).expect("builds");
        assert!(built.contains("indexed 897 records"), "{built}");
        let v = index_cmd(&parse(&["index", "verify", p])).expect("verifies");
        assert!(v.contains("exact match"), "{v}");
        let st = index_cmd(&parse(&["index", "stat", p])).expect("stats");
        assert!(st.contains("records:  897"), "{st}");
        assert!(st.contains("Tsubame-2"), "{st}");
        let st2 = index_cmd(&parse(&["index", "stat", &spath])).expect("stats");
        assert_eq!(st, st2, "stat accepts the .fsidx path directly");
        assert!(index_cmd(&parse(&["index", "rebuild", p])).is_err());

        // Warm report output is byte-identical to cold, at 1 and 4
        // threads, for text and JSON.
        let cold = report(&parse(&["report", p, "--sections", ANALYSIS, "--index", "off"]))
            .expect("reports");
        for threads in ["1", "4"] {
            let warm = report(&parse(&[
                "report", p, "--sections", ANALYSIS, "--index", "require", "--threads", threads,
            ]))
            .expect("reports");
            assert_eq!(warm, cold, "--threads {threads}");
        }
        let cold_json = report(&parse(&[
            "report", p, "--sections", ANALYSIS, "--format", "json",
        ]))
        .expect("reports");
        let warm_json = report(&parse(&[
            "report", p, "--sections", ANALYSIS, "--format", "json", "--index", "require",
        ]))
        .expect("reports");
        assert_eq!(warm_json, cold_json);

        // The warm run parsed zero records: its trace has the snapshot
        // hit and no parse counters at all.
        let tp = temp_path("idx-warm.ndjson");
        report(&parse(&[
            "report", p, "--index", "require", "--trace", tp.to_str().unwrap(),
        ]))
        .expect("reports");
        let trace = std::fs::read_to_string(&tp).expect("trace written");
        assert!(
            trace.contains(r#""stage":"index.snapshot_hit","value":1"#),
            "{trace}"
        );
        assert!(!trace.contains("parse.records"), "{trace}");

        // Clipping composes with a warm snapshot (zero parsing there too).
        let cold_clip = report(&parse(&[
            "report", p, "--until", "1000", "--sections", ANALYSIS,
        ]))
        .expect("reports");
        let warm_clip = report(&parse(&[
            "report", p, "--until", "1000", "--sections", ANALYSIS, "--index", "require",
        ]))
        .expect("reports");
        assert_eq!(warm_clip, cold_clip);

        // compare accepts --index and matches the cold comparison.
        let c_cold = compare(&parse(&["compare", p, p])).expect("compares");
        let c_warm = compare(&parse(&["compare", p, p, "--index", "require"])).expect("compares");
        assert_eq!(c_warm, c_cold);

        // --index is rejected where it cannot apply.
        assert!(report(&parse(&["report", "--model", "tsubame2", "--index", "auto"])).is_err());

        std::fs::remove_file(&path).expect("cleanup");
        std::fs::remove_file(&spath).expect("cleanup");
    }

    #[test]
    fn index_auto_cold_builds_then_extends_over_growth() {
        let path = temp_path("idx-grow.fslog");
        let p = path.to_str().unwrap();
        let spath = format!("{p}.fsidx");
        let log = Simulator::new(SystemModel::tsubame2(), 42).generate().expect("simulates");
        let text = faillog::to_string(&log).expect("serializes");
        let cut = text[..text.len() / 2].rfind('\n').expect("has lines") + 1;
        std::fs::write(&path, &text[..cut]).expect("write prefix");

        // First auto run parses cold and leaves a snapshot behind.
        let first = report(&parse(&["report", p, "--sections", ANALYSIS, "--index", "auto"]))
            .expect("reports");
        let v = index_cmd(&parse(&["index", "verify", p])).expect("verifies");
        assert!(v.contains("exact match"), "{v}");

        // The log grows; verify sees a usable prefix, and the next auto
        // run extends instead of re-parsing, matching a cold rebuild.
        std::fs::write(&path, &text).expect("write full");
        let v = index_cmd(&parse(&["index", "verify", p])).expect("verifies");
        assert!(v.contains("prefix match"), "{v}");
        let tp = temp_path("idx-grow.ndjson");
        let warm = report(&parse(&[
            "report", p, "--sections", ANALYSIS, "--index", "auto",
            "--trace", tp.to_str().unwrap(),
        ]))
        .expect("reports");
        let cold = report(&parse(&["report", p, "--sections", ANALYSIS, "--index", "off"]))
            .expect("reports");
        assert_eq!(warm, cold);
        assert_ne!(warm, first, "growth must change the report");
        let trace = std::fs::read_to_string(&tp).expect("trace written");
        assert!(
            trace.contains(r#""stage":"index.snapshot_extend","value":1"#),
            "{trace}"
        );
        assert!(!trace.contains("parse.records"), "{trace}");
        // ... and the rewritten snapshot now covers the whole log.
        let v = index_cmd(&parse(&["index", "verify", p])).expect("verifies");
        assert!(v.contains("exact match"), "{v}");

        std::fs::remove_file(&path).expect("cleanup");
        std::fs::remove_file(&spath).expect("cleanup");
    }

    #[test]
    fn watch_index_auto_persists_a_snapshot_on_clean_shutdown() {
        let path = temp_path("watch-idx.fslog");
        let p = path.to_str().unwrap();
        let spath = format!("{p}.fsidx");
        generate(&parse(&["generate", "--system", "tsubame2", "--out", p])).expect("generates");

        let out = watch(&parse(&[
            "watch", p, "--baseline", "tsubame2", "--index", "auto",
        ]))
        .expect("watches");
        assert!(out.contains("897 records"), "{out}");
        let v = index_cmd(&parse(&["index", "verify", p])).expect("verifies");
        assert!(v.contains("exact match"), "{v}");

        // The watch-built snapshot serves a warm report identical to cold.
        let warm = report(&parse(&["report", p, "--sections", ANALYSIS, "--index", "require"]))
            .expect("reports");
        let cold = report(&parse(&["report", p, "--sections", ANALYSIS])).expect("reports");
        assert_eq!(warm, cold);

        // Sim sources and require mode are rejected; gzip input writes
        // no snapshot (progress counts decoded bytes, not raw ones).
        assert!(watch(&parse(&["watch", "sim:tsubame3", "--index", "auto"])).is_err());
        assert!(watch(&parse(&["watch", p, "--index", "require"])).is_err());
        let packed = temp_path("watch-idx.fslog.gz");
        let g = packed.to_str().unwrap();
        generate(&parse(&["generate", "--system", "tsubame2", "--out", g])).expect("generates");
        watch(&parse(&["watch", g, "--baseline", "tsubame2", "--index", "auto"]))
            .expect("watches");
        assert!(!std::path::Path::new(&format!("{g}.fsidx")).exists());

        std::fs::remove_file(&path).expect("cleanup");
        std::fs::remove_file(&spath).expect("cleanup");
        std::fs::remove_file(&packed).expect("cleanup");
    }

    #[test]
    fn report_from_model_emits_deterministic_trace() {
        let t1 = temp_path("model-t1.ndjson");
        let t4 = temp_path("model-t4.ndjson");
        let base = ["report", "--model", "tsubame2", "--seed", "42"];
        let with = |trace: &str, threads: &str| {
            let mut words: Vec<&str> = base.to_vec();
            words.extend(["--trace", trace, "--threads", threads]);
            report(&parse(&words)).expect("reports")
        };
        let r1 = with(t1.to_str().unwrap(), "1");
        let r4 = with(t4.to_str().unwrap(), "4");
        assert_eq!(r1, r4, "report must be thread-identical");
        assert!(r1.contains("Failure categories"));
        let trace1 = std::fs::read_to_string(&t1).expect("trace written");
        let trace4 = std::fs::read_to_string(&t4).expect("trace written");
        assert_eq!(trace1, trace4, "trace must be thread-identical");
        assert!(trace1.lines().count() > 3, "{trace1}");
        for line in trace1.lines() {
            assert!(line.starts_with(r#"{"kind":""#), "{line}");
        }
        assert!(trace1.contains(r#""stage":"sim.generate""#), "{trace1}");
        assert!(trace1.contains(r#""stage":"index.ttr_hours""#), "{trace1}");
        assert!(trace1.contains(r#""stage":"render.header""#), "{trace1}");
        // The metrics section surfaces the same collector as JSON.
        let m = report(&parse(&[
            "report", "--model", "tsubame2", "--sections", "metrics", "--format", "json",
        ]))
        .expect("reports");
        assert_eq!(m.lines().count(), 1);
        assert!(m.starts_with(r#"{"id":"metrics","title":"Runtime metrics","data":{"#), "{m}");
        assert!(m.contains(r#""counters":"#), "{m}");
        // Mixing the two input modes (or --seed without --model) fails.
        assert!(report(&parse(&["report", "x.fslog", "--model", "tsubame2"])).is_err());
        assert!(report(&parse(&["report", "x.fslog", "--seed", "7"])).is_err());
        std::fs::remove_file(&t1).expect("cleanup");
        std::fs::remove_file(&t4).expect("cleanup");
    }

    #[test]
    fn watch_trace_counts_ingested_records() {
        let tp = temp_path("watch-trace.ndjson");
        let out = watch(&parse(&[
            "watch", "sim:tsubame3", "--max-records", "40",
            "--trace", tp.to_str().unwrap(),
        ]))
        .expect("watches");
        assert!(out.contains("# watch done:"));
        let trace = std::fs::read_to_string(&tp).expect("trace written");
        assert!(
            trace.contains(r#""stage":"watch.records_ingested","value":40"#),
            "{trace}"
        );
        std::fs::remove_file(&tp).expect("cleanup");
    }

    #[test]
    fn report_since_until_filters_the_window() {
        let path = temp_path("clip.fslog");
        let p = path.to_str().unwrap();
        generate(&parse(&["generate", "--system", "tsubame3", "--out", p])).expect("generates");
        let full = report(&parse(&["report", p])).expect("reports");
        let early = report(&parse(&["report", p, "--until", "1000"])).expect("reports");
        assert_ne!(full, early, "clipping must change the report");
        // A date bound resolves against the window (T3 starts 2017-08-01).
        let dated =
            report(&parse(&["report", p, "--since", "2017-10-01"])).expect("reports");
        assert_ne!(full, dated);
        // An empty clip errors cleanly rather than panicking.
        assert!(report(&parse(&["report", p, "--since", "banana"])).is_err());
        let c = compare(&parse(&["compare", p, p, "--until", "2000"])).expect("compares");
        assert!(c.contains("MTBF"));
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn watch_replays_a_simulation_and_alerts_on_injected_regression() {
        let out = watch(&parse(&[
            "watch",
            "sim:tsubame3",
            "--accel",
            "max",
            "--inject-mttr",
            "5.0",
        ]))
        .expect("watches");
        assert!(out.contains("# failwatch: sim:"), "{out}");
        assert!(out.contains("\"kind\":\"mttr_regression\""), "{out}");
        assert!(out.contains("# watch done:"), "{out}");
        // Deterministic across thread counts.
        let t1 = watch(&parse(&[
            "watch", "sim:tsubame3", "--inject-mttr", "5.0", "--threads", "1",
        ]))
        .expect("watches");
        let t4 = watch(&parse(&[
            "watch", "sim:tsubame3", "--inject-mttr", "5.0", "--threads", "4",
        ]))
        .expect("watches");
        assert_eq!(t1, t4);
    }

    #[test]
    fn watch_reads_a_log_file() {
        let path = temp_path("watch.fslog");
        let p = path.to_str().unwrap();
        generate(&parse(&["generate", "--system", "tsubame2", "--out", p])).expect("generates");
        let out = watch(&parse(&["watch", p, "--baseline", "tsubame2"])).expect("watches");
        assert!(out.contains("897 records"), "{out}");
        // File sources reject sim-only flags; sim baseline name checked.
        assert!(watch(&parse(&["watch", p, "--inject-mttr", "2.0"])).is_err());
        assert!(watch(&parse(&["watch", "sim:cray"])).is_err());
        assert!(watch(&parse(&["watch", p, "--baseline", "cray"])).is_err());
        std::fs::remove_file(&path).expect("cleanup");
    }

    /// The ISSUE's acceptance predicate, end to end on both canonical
    /// seed logs: byte-identical across thread counts, warm vs cold,
    /// and against a post-hoc filtered baseline.
    #[test]
    fn report_where_is_byte_identical_across_threads_index_and_post_hoc() {
        const EXPR: &str = "category == gpu && ttr > 24";
        for system in ["tsubame2", "tsubame3"] {
            let path = temp_path(&format!("where-{system}.fslog"));
            let p = path.to_str().unwrap();
            let spath = format!("{p}.fsidx");
            generate(&parse(&["generate", "--system", system, "--out", p]))
                .expect("generates");

            let cold = report(&parse(&[
                "report", p, "--sections", ANALYSIS, "--where", EXPR, "--threads", "1",
            ]))
            .expect("reports");
            for threads in ["2", "4"] {
                let r = report(&parse(&[
                    "report", p, "--sections", ANALYSIS, "--where", EXPR, "--threads", threads,
                ]))
                .expect("reports");
                assert_eq!(r, cold, "--threads {threads} on {system}");
            }

            // A filtered cold parse in auto mode matches too but must
            // NOT leave a snapshot behind: a filtered parse never sees
            // the whole log, and snapshots must.
            let auto = report(&parse(&[
                "report", p, "--sections", ANALYSIS, "--where", EXPR, "--index", "auto",
            ]))
            .expect("reports");
            assert_eq!(auto, cold);
            assert!(
                !std::path::Path::new(&spath).exists(),
                "filtered parse must not persist a snapshot"
            );

            // Warm snapshots compose: the .fsidx stores unfiltered
            // state and the predicate filters the decoded view.
            index_cmd(&parse(&["index", "build", p])).expect("builds");
            for mode in ["auto", "require"] {
                for threads in ["1", "4"] {
                    let warm = report(&parse(&[
                        "report", p, "--sections", ANALYSIS, "--where", EXPR,
                        "--index", mode, "--threads", threads,
                    ]))
                    .expect("reports");
                    assert_eq!(warm, cold, "--index {mode} --threads {threads} on {system}");
                }
            }

            // Post-hoc baseline: filter the same records outside the
            // pipeline, save them as a log, report that log unfiltered.
            let log = load(p).expect("loads");
            let posthoc_log = log.filtered(|r| r.category().is_gpu() && r.ttr().get() > 24.0);
            assert!(!posthoc_log.is_empty() && posthoc_log.len() < log.len());
            let bpath = temp_path(&format!("where-{system}-posthoc.fslog"));
            let b = bpath.to_str().unwrap();
            faillog::save(b, &posthoc_log).expect("saves");
            let posthoc = report(&parse(&["report", b, "--sections", ANALYSIS]))
                .expect("reports");
            assert_eq!(cold, posthoc, "pushdown must equal the post-hoc filter on {system}");

            // compare under the same filter matches an unfiltered
            // comparison of the post-hoc logs.
            let c_pushdown = compare(&parse(&["compare", p, p, "--where", EXPR]))
                .expect("compares");
            let c_posthoc = compare(&parse(&["compare", b, b])).expect("compares");
            assert_eq!(c_pushdown, c_posthoc);

            std::fs::remove_file(&path).expect("cleanup");
            std::fs::remove_file(&spath).expect("cleanup");
            std::fs::remove_file(&bpath).expect("cleanup");
        }
    }

    #[test]
    fn where_errors_are_span_annotated_and_name_the_flag() {
        let path = temp_path("where-err.fslog");
        let p = path.to_str().unwrap();
        generate(&parse(&["generate", "--out", p])).expect("generates");
        let err = report(&parse(&["report", p, "--where", "bananas == 1"]))
            .unwrap_err()
            .to_string();
        assert!(err.starts_with("--where: unknown field `bananas`"), "{err}");
        assert!(err.contains("bananas == 1"), "{err}");
        assert!(err.contains("^^^^^^^"), "source span must be underlined: {err}");
        let err = report(&parse(&["report", p, "--where", "ttr >"]))
            .unwrap_err()
            .to_string();
        assert!(err.starts_with("--where: ") && err.contains('^'), "{err}");
        // compare and watch route through the same compiler.
        let err = compare(&parse(&["compare", p, p, "--where", "ttr = 1"]))
            .unwrap_err()
            .to_string();
        assert!(err.starts_with("--where: ") && err.contains('^'), "{err}");
        let err = watch(&parse(&["watch", p, "--where", "category == banana"]))
            .unwrap_err()
            .to_string();
        assert!(err.starts_with("--where: ") && err.contains('^'), "{err}");
        // The sugar flags name themselves, not --where.
        let err = report(&parse(&["report", p, "--since", "banana"]))
            .unwrap_err()
            .to_string();
        assert!(err.starts_with("--since: "), "{err}");
        let err = report(&parse(&["report", p, "--until", "2017-13-01"]))
            .unwrap_err()
            .to_string();
        assert!(err.starts_with("--until: "), "{err}");
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn since_until_are_sugar_for_where_time_bounds() {
        let path = temp_path("sugar.fslog");
        let p = path.to_str().unwrap();
        generate(&parse(&["generate", "--system", "tsubame3", "--out", p]))
            .expect("generates");
        let sugar = report(&parse(&["report", p, "--since", "500", "--until", "1000"]))
            .expect("reports");
        let spelled = report(&parse(&[
            "report", p, "--where", "time >= 500 && time < 1000",
        ]))
        .expect("reports");
        assert_eq!(sugar, spelled, "--since/--until must desugar to time bounds");
        // The sugar conjoins with an explicit --where.
        let both = report(&parse(&[
            "report", p, "--where", "category == gpu", "--until", "1000",
        ]))
        .expect("reports");
        let spelled = report(&parse(&[
            "report", p, "--where", "category == gpu && time < 1000",
        ]))
        .expect("reports");
        assert_eq!(both, spelled);
        // Date bounds desugar through the same literal path.
        let dated = report(&parse(&["report", p, "--since", "2017-10-01"])).expect("reports");
        let spelled = report(&parse(&[
            "report", p, "--where", "time >= \"2017-10-01\"",
        ]))
        .expect("reports");
        assert_eq!(dated, spelled);
        // The model path honours the same filter flags.
        let m = report(&parse(&[
            "report", "--model", "tsubame3", "--sections", ANALYSIS, "--where", "category == gpu",
        ]))
        .expect("reports");
        let full = report(&parse(&["report", "--model", "tsubame3", "--sections", ANALYSIS]))
            .expect("reports");
        assert_ne!(m, full, "the filter must scope the generated log");
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn watch_where_scopes_the_monitor_and_tags_alerts() {
        let path = temp_path("watch-where.fslog");
        let p = path.to_str().unwrap();
        generate(&parse(&["generate", "--system", "tsubame2", "--out", p]))
            .expect("generates");
        let out = watch(&parse(&[
            "watch", p, "--baseline", "tsubame2", "--where", "category == gpu",
        ]))
        .expect("watches");
        assert!(out.contains("# filter: category == gpu"), "{out}");
        assert!(
            !out.contains("897 records"),
            "the monitor must see only the filtered stream: {out}"
        );
        let alerts: Vec<&str> = out.lines().filter(|l| l.starts_with('{')).collect();
        for line in &alerts {
            assert!(
                line.ends_with("\"filter\":\"category == gpu\"}"),
                "every alert must carry the filter expression: {line}"
            );
        }
        // JSON mode stays pure NDJSON (the banner is text-only).
        let json = watch(&parse(&[
            "watch", p, "--baseline", "tsubame2", "--where", "category == gpu",
            "--format", "json",
        ]))
        .expect("watches");
        for line in json.lines() {
            assert!(line.starts_with('{'), "{line}");
        }
        // A filtered watch must never persist its (filtered) index.
        let err = watch(&parse(&[
            "watch", p, "--where", "category == gpu", "--index", "auto",
        ]))
        .unwrap_err()
        .to_string();
        assert!(err.contains("--index auto"), "{err}");
        assert!(err.contains("--where category == gpu"), "{err}");
        assert!(!std::path::Path::new(&format!("{p}.fsidx")).exists());
        std::fs::remove_file(&path).expect("cleanup");
    }

    /// Satellite: every invalid flag combination names the offending
    /// flag and its value.
    #[test]
    fn flag_rejections_name_the_flag_and_value() {
        let path = temp_path("reject.fslog");
        let p = path.to_str().unwrap();
        generate(&parse(&["generate", "--out", p])).expect("generates");
        let msg = |r: Result<String>| r.unwrap_err().to_string();
        let m = msg(watch(&parse(&["watch", "sim:tsubame3", "--parse-chunk", "512"])));
        assert!(m.contains("--parse-chunk 512") && m.contains("sim:tsubame3"), "{m}");
        let m = msg(watch(&parse(&["watch", "sim:tsubame3", "--index", "off"])));
        assert!(m.contains("--index off") && m.contains("sim:tsubame3"), "{m}");
        let m = msg(watch(&parse(&["watch", p, "--inject-mttr", "2.0"])));
        assert!(m.contains("--inject-mttr 2.0") && m.contains(p), "{m}");
        let m = msg(watch(&parse(&["watch", p, "--accel", "3"])));
        assert!(m.contains("--accel 3"), "{m}");
        let m = msg(report(&parse(&["report", "--model", "tsubame2", "--index", "auto"])));
        assert!(m.contains("--index auto") && m.contains("tsubame2"), "{m}");
        let m = msg(report(&parse(&["report", p, "--seed", "7"])));
        assert!(m.contains("--seed 7"), "{m}");
        // --index require on a snapshotless log while --where is active
        // names both flags (and the fix is still an unfiltered build).
        let m = msg(report(&parse(&["report", p, "--index", "require", "--where", "ttr > 1"])));
        assert!(m.contains("--index require"), "{m}");
        assert!(m.contains("--where ttr > 1"), "{m}");
        assert!(m.contains("failctl index build"), "{m}");
        std::fs::remove_file(&path).expect("cleanup");
    }
}
