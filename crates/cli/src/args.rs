//! Minimal dependency-free argument parsing for `failctl`.
//!
//! Grammar: `failctl <command> [positional...] [--flag value]...`. Flags
//! take exactly one value, except for the known boolean switches in
//! [`SWITCHES`] which take none; unknown flags are an error, so typos
//! fail loudly rather than being ignored.

use std::collections::BTreeMap;

use failtypes::{Error, Result};

/// Valueless boolean flags: present means `true`. Everything else in
/// `--flag value` position must carry a value.
pub const SWITCHES: &[&str] = &["follow"];

/// Parsed command line: the command word, positionals, and `--key value`
/// flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedArgs {
    /// The first word after the binary name.
    pub command: String,
    /// Positional arguments in order.
    pub positional: Vec<String>,
    flags: BTreeMap<String, String>,
}

impl ParsedArgs {
    /// Parses `args` (excluding the binary name).
    ///
    /// # Errors
    ///
    /// Fails when no command is given, a flag lacks a value, or a flag is
    /// repeated.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self> {
        let mut iter = args.into_iter();
        let command = iter
            .next()
            .ok_or_else(|| Error::args("missing command; try `failctl help`"))?;
        let mut positional = Vec::new();
        let mut flags = BTreeMap::new();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let value = if SWITCHES.contains(&key) {
                    String::from("true")
                } else {
                    iter.next()
                        .ok_or_else(|| Error::args(format!("flag --{key} needs a value")))?
                };
                if flags.insert(key.to_string(), value).is_some() {
                    return Err(Error::args(format!("flag --{key} given twice")));
                }
            } else {
                positional.push(arg);
            }
        }
        Ok(ParsedArgs {
            command,
            positional,
            flags,
        })
    }

    /// Returns the raw value of a flag.
    pub fn flag(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// `true` when a boolean switch (see [`SWITCHES`]) was given.
    pub fn switch(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }

    /// Returns a flag parsed to `T`, or `default` when absent.
    ///
    /// # Errors
    ///
    /// Fails when the flag is present but unparsable.
    pub fn flag_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| Error::args(format!("invalid value `{raw}` for --{key}"))),
        }
    }

    /// Returns a required positional argument.
    ///
    /// # Errors
    ///
    /// Fails when the positional is missing.
    pub fn positional(&self, index: usize, name: &str) -> Result<&str> {
        self.positional
            .get(index)
            .map(String::as_str)
            .ok_or_else(|| Error::args(format!("missing <{name}> argument")))
    }

    /// Errors on any flag not in `allowed` (typo protection).
    ///
    /// # Errors
    ///
    /// Fails naming the first unknown flag.
    pub fn reject_unknown_flags(&self, allowed: &[&str]) -> Result<()> {
        for key in self.flags.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(Error::args(format!(
                    "unknown flag --{key}; allowed: {}",
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<ParsedArgs> {
        ParsedArgs::parse(words.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parse_failures_are_arg_errors() {
        let err = parse(&[]).unwrap_err();
        assert!(matches!(err, Error::Args(_)), "{err}");
    }

    #[test]
    fn parses_command_positionals_and_flags() {
        let p = parse(&["report", "log.fslog", "--seed", "42"]).unwrap();
        assert_eq!(p.command, "report");
        assert_eq!(p.positional(0, "file").unwrap(), "log.fslog");
        assert_eq!(p.flag("seed"), Some("42"));
        assert_eq!(p.flag_or("seed", 0u64).unwrap(), 42);
        assert_eq!(p.flag_or("missing", 7u64).unwrap(), 7);
    }

    #[test]
    fn rejects_missing_command_and_values() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["gen", "--seed"]).is_err());
        assert!(parse(&["gen", "--seed", "1", "--seed", "2"]).is_err());
    }

    #[test]
    fn rejects_bad_flag_values_and_unknown_flags() {
        let p = parse(&["gen", "--seed", "not-a-number"]).unwrap();
        assert!(p.flag_or("seed", 0u64).is_err());
        let p = parse(&["gen", "--sede", "1"]).unwrap();
        assert!(p.reject_unknown_flags(&["seed"]).is_err());
        assert!(p.reject_unknown_flags(&["sede"]).is_ok());
    }

    #[test]
    fn switches_take_no_value() {
        let p = parse(&["watch", "log.fslog", "--follow", "--threads", "2"]).unwrap();
        assert!(p.switch("follow"));
        assert_eq!(p.positional(0, "path").unwrap(), "log.fslog");
        assert_eq!(p.flag("threads"), Some("2"));
        let p = parse(&["watch", "log.fslog"]).unwrap();
        assert!(!p.switch("follow"));
        // A switch at the end of the line needs no trailing value.
        assert!(parse(&["watch", "log.fslog", "--follow"]).is_ok());
    }

    #[test]
    fn missing_positional_is_an_error() {
        let p = parse(&["report"]).unwrap();
        let err = p.positional(0, "file").unwrap_err();
        assert!(err.to_string().contains("<file>"));
    }
}
