//! Spare-part provisioning.
//!
//! The paper's RQ5 discussion: "The longer recovery times highlight the
//! need for appropriate spare provisioning of parts", balanced against
//! the cost of "keeping an excessive number of spare components on-site".
//! This module sizes a spare pool analytically (Poisson demand during the
//! replenishment lead time) and validates the sizing with a discrete-event
//! inventory simulation.

use failscope::{FleetIndex, LogView};
use failstats::{sample_poisson, ContinuousDist, Exponential};
use failtypes::{ComponentClass, FailureLog};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A spare-provisioning policy for one component class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SparePolicy {
    /// Mean failures (spare demands) per hour.
    pub demand_rate_per_hour: f64,
    /// Hours to replenish a consumed spare (procurement lead time).
    pub lead_time_hours: f64,
}

impl SparePolicy {
    /// Creates a policy; `None` for non-positive inputs.
    pub fn new(demand_rate_per_hour: f64, lead_time_hours: f64) -> Option<Self> {
        (demand_rate_per_hour > 0.0
            && demand_rate_per_hour.is_finite()
            && lead_time_hours > 0.0
            && lead_time_hours.is_finite())
        .then_some(SparePolicy {
            demand_rate_per_hour,
            lead_time_hours,
        })
    }

    /// Derives the demand rate from any measured [`FleetIndex`] for one
    /// component class (replacement-driven categories).
    ///
    /// Returns `None` when the class never failed.
    pub fn from_index<V: FleetIndex + ?Sized>(
        index: &V,
        class: ComponentClass,
        lead_time_hours: f64,
    ) -> Option<Self> {
        let mtbf = failscope::class_mtbf_hours_index(index, class)?;
        Self::new(1.0 / mtbf, lead_time_hours)
    }

    /// [`SparePolicy::from_index`], indexing the log once.
    ///
    /// Returns `None` when the class never failed in the log.
    #[doc(hidden)]
    pub fn from_log(
        log: &FailureLog,
        class: ComponentClass,
        lead_time_hours: f64,
    ) -> Option<Self> {
        Self::from_index(&LogView::new(log), class, lead_time_hours)
    }

    /// Mean demand during one replenishment lead time.
    pub fn lead_time_demand(&self) -> f64 {
        self.demand_rate_per_hour * self.lead_time_hours
    }

    /// Probability that a demand finds no spare on hand with a base stock
    /// of `s`: `P(X >= s)` for Poisson lead-time demand `X` (a demand
    /// stocks out when at least `s` replenishments are already
    /// outstanding).
    pub fn stockout_probability(&self, spares: u32) -> f64 {
        if spares == 0 {
            return 1.0;
        }
        let lambda = self.lead_time_demand();
        // P(X >= s) = 1 - P(X <= s-1); Poisson CDF via the regularized
        // incomplete gamma: P(X <= k) = Q(k+1, λ).
        1.0 - failstats::special::gamma_q(spares as f64, lambda)
    }

    /// Smallest spare count whose stockout probability is at most
    /// `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is outside `(0, 1)`.
    pub fn required_spares(&self, epsilon: f64) -> u32 {
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "stockout tolerance must be in (0,1)"
        );
        let mut s = 0u32;
        while self.stockout_probability(s) > epsilon {
            s += 1;
            if s > 1_000_000 {
                unreachable!("stockout probability is monotone decreasing in s");
            }
        }
        s
    }
}

/// The outcome of a stochastic inventory simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InventoryOutcome {
    /// Demands that found a spare on hand.
    pub served_immediately: u64,
    /// Demands that had to wait for a replenishment.
    pub stockouts: u64,
    /// Fraction of demands that stocked out.
    pub stockout_fraction: f64,
}

/// Simulates a spare pool of size `spares` against Poisson failure demand
/// for `horizon_hours`, with one replenishment order (taking the policy's
/// lead time) per consumed spare.
///
/// Deterministic for a fixed seed; used to validate
/// [`SparePolicy::required_spares`].
pub fn simulate_inventory(
    policy: SparePolicy,
    spares: u32,
    horizon_hours: f64,
    seed: u64,
) -> InventoryOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let gap = Exponential::new(policy.demand_rate_per_hour).expect("validated rate");
    // Outstanding replenishment arrival times, unsorted (small).
    let mut arrivals: Vec<f64> = Vec::new();
    let mut on_hand = spares as i64;
    let mut t = 0.0;
    let mut served = 0u64;
    let mut stockouts = 0u64;
    loop {
        t += gap.sample(&mut rng);
        if t >= horizon_hours {
            break;
        }
        // Receive any replenishments that arrived by now.
        arrivals.retain(|&a| {
            if a <= t {
                on_hand += 1;
                false
            } else {
                true
            }
        });
        if on_hand > 0 {
            served += 1;
        } else {
            stockouts += 1;
        }
        // Consume (or owe) a spare and order a replacement.
        on_hand -= 1;
        arrivals.push(t + policy.lead_time_hours);
    }
    let total = served + stockouts;
    InventoryOutcome {
        served_immediately: served,
        stockouts,
        stockout_fraction: if total > 0 {
            stockouts as f64 / total as f64
        } else {
            0.0
        },
    }
}

/// Convenience: expected number of demands over a horizon (for sizing
/// simulation lengths in examples and benches).
pub fn expected_demands(policy: SparePolicy, horizon_hours: f64, seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    sample_poisson(policy.demand_rate_per_hour * horizon_hours, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use failsim::{Simulator, SystemModel};

    #[test]
    fn policy_construction() {
        assert!(SparePolicy::new(0.0, 10.0).is_none());
        assert!(SparePolicy::new(0.1, 0.0).is_none());
        assert!(SparePolicy::new(f64::NAN, 1.0).is_none());
        let p = SparePolicy::new(0.05, 100.0).unwrap();
        assert!((p.lead_time_demand() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn stockout_probability_matches_poisson() {
        let p = SparePolicy::new(0.02, 100.0).unwrap(); // λ = 2
        // No spares: every demand stocks out.
        assert_eq!(p.stockout_probability(0), 1.0);
        // P(X >= 1) = 1 - e^-2.
        assert!((p.stockout_probability(1) - (1.0 - (-2.0f64).exp())).abs() < 1e-9);
        // P(X >= 2) = 1 - e^-2 (1 + 2).
        let expected = 1.0 - (-2.0f64).exp() * 3.0;
        assert!((p.stockout_probability(2) - expected).abs() < 1e-9);
        // Monotone decreasing.
        for s in 0..20 {
            assert!(p.stockout_probability(s + 1) <= p.stockout_probability(s) + 1e-12);
        }
    }

    #[test]
    fn required_spares_thresholds() {
        let p = SparePolicy::new(0.02, 100.0).unwrap(); // λ = 2
        let s = p.required_spares(0.05);
        assert!(p.stockout_probability(s) <= 0.05);
        if s > 0 {
            assert!(p.stockout_probability(s - 1) > 0.05);
        }
        // Tighter tolerance needs at least as many spares.
        assert!(p.required_spares(0.001) >= s);
    }

    #[test]
    fn simulation_validates_analytic_sizing() {
        let p = SparePolicy::new(0.05, 50.0).unwrap(); // λ = 2.5
        let s = p.required_spares(0.05);
        let outcome = simulate_inventory(p, s, 2_000_000.0, 9);
        // The analytic model slightly overestimates risk (it ignores that
        // multiple outstanding orders overlap); the simulated rate must be
        // within the tolerance with margin for noise.
        assert!(
            outcome.stockout_fraction < 0.08,
            "stockout fraction {}",
            outcome.stockout_fraction
        );
        assert!(outcome.served_immediately > 0);
    }

    #[test]
    fn zero_spares_stock_out_heavily() {
        let p = SparePolicy::new(0.05, 50.0).unwrap();
        let none = simulate_inventory(p, 0, 500_000.0, 10);
        let plenty = simulate_inventory(p, 20, 500_000.0, 10);
        assert!(none.stockout_fraction > 0.5);
        assert!(plenty.stockout_fraction < 0.01);
    }

    #[test]
    fn from_measured_log() {
        let t3 = Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap();
        let p = SparePolicy::from_log(&t3, ComponentClass::Gpu, 14.0 * 24.0).unwrap();
        // GPU MTBF ≈ 260 h, lead time 336 h → λ ≈ 1.3.
        assert!((p.lead_time_demand() - 1.29).abs() < 0.1);
        let s = p.required_spares(0.05);
        assert!((2..=6).contains(&s), "spares {s}");
        // A class that never fails yields None.
        let empty = t3.filtered(|_| false);
        assert!(SparePolicy::from_log(&empty, ComponentClass::Gpu, 100.0).is_none());
    }

    #[test]
    fn deterministic_simulation() {
        let p = SparePolicy::new(0.01, 100.0).unwrap();
        let a = simulate_inventory(p, 2, 100_000.0, 5);
        let b = simulate_inventory(p, 2, 100_000.0, 5);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "tolerance")]
    fn required_spares_rejects_bad_epsilon() {
        let p = SparePolicy::new(0.01, 10.0).unwrap();
        let _ = p.required_spares(0.0);
    }

    #[test]
    fn expected_demands_scales_with_horizon() {
        let p = SparePolicy::new(0.01, 10.0).unwrap();
        let d = expected_demands(p, 1_000_000.0, 3);
        assert!((d as f64 - 10_000.0).abs() < 500.0, "demands {d}");
    }
}
