//! Checkpoint-interval optimization driven by measured MTBF.
//!
//! The paper motivates checkpointing as the standard mitigation for GPU
//! failures (Section III cites GPU snapshot/CRUM/MANA). This module
//! implements the classic Young and Daly optimal-interval formulas on top
//! of an MTBF measured by [`failscope::TbfAnalysis`], plus the expected
//! waste model needed to compare plans.

use failscope::{FleetIndex, LogView};
use failtypes::FailureLog;
use serde::{Deserialize, Serialize};

/// Error for invalid checkpoint-model parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidCheckpointParams(&'static str);

impl std::fmt::Display for InvalidCheckpointParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid checkpoint parameters: {}", self.0)
    }
}

impl std::error::Error for InvalidCheckpointParams {}

/// A checkpointing plan for an application on a system with a known MTBF.
///
/// # Examples
///
/// ```
/// use failmitigate::CheckpointPlan;
///
/// // 15 h MTBF (Tsubame-2-like), 6-minute checkpoints.
/// let plan = CheckpointPlan::new(15.0, 0.1)?;
/// // Young: sqrt(2 · 0.1 · 15) ≈ 1.73 h.
/// assert!((plan.young_interval_hours() - 1.732).abs() < 0.01);
/// assert!(plan.efficiency(plan.daly_interval_hours()) > 0.75);
/// # Ok::<(), failmitigate::InvalidCheckpointParams>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointPlan {
    mtbf_hours: f64,
    checkpoint_cost_hours: f64,
}

impl CheckpointPlan {
    /// Creates a plan from an MTBF and a per-checkpoint cost, both in
    /// hours.
    ///
    /// # Errors
    ///
    /// Rejects non-positive or non-finite inputs, and costs at or above
    /// half the MTBF (the optimal-interval formulas lose validity there).
    pub fn new(mtbf_hours: f64, checkpoint_cost_hours: f64) -> Result<Self, InvalidCheckpointParams> {
        if mtbf_hours <= 0.0 || mtbf_hours.is_nan() || mtbf_hours.is_infinite() {
            return Err(InvalidCheckpointParams("MTBF must be positive and finite"));
        }
        if checkpoint_cost_hours <= 0.0
            || checkpoint_cost_hours.is_nan()
            || checkpoint_cost_hours.is_infinite()
        {
            return Err(InvalidCheckpointParams(
                "checkpoint cost must be positive and finite",
            ));
        }
        if checkpoint_cost_hours >= mtbf_hours / 2.0 {
            return Err(InvalidCheckpointParams(
                "checkpoint cost must be below half the MTBF",
            ));
        }
        Ok(CheckpointPlan {
            mtbf_hours,
            checkpoint_cost_hours,
        })
    }

    /// Derives the plan from any measured [`FleetIndex`] (a batch
    /// [`LogView`] or a live [`failscope::StreamView`]).
    ///
    /// # Errors
    ///
    /// Fails when the index holds fewer than two failures (no MTBF) or
    /// the parameters are invalid for the measured MTBF.
    pub fn from_index<V: FleetIndex + ?Sized>(
        index: &V,
        checkpoint_cost_hours: f64,
    ) -> Result<Self, InvalidCheckpointParams> {
        let tbf = failscope::TbfAnalysis::from_index(index)
            .ok_or(InvalidCheckpointParams("log has fewer than two failures"))?;
        Self::new(tbf.mtbf_hours(), checkpoint_cost_hours)
    }

    /// [`CheckpointPlan::from_index`], indexing the log once.
    ///
    /// # Errors
    ///
    /// Fails when the log has fewer than two failures (no MTBF) or the
    /// parameters are invalid for the measured MTBF.
    #[doc(hidden)]
    pub fn from_log(
        log: &FailureLog,
        checkpoint_cost_hours: f64,
    ) -> Result<Self, InvalidCheckpointParams> {
        Self::from_index(&LogView::new(log), checkpoint_cost_hours)
    }

    /// The system MTBF in hours.
    pub const fn mtbf_hours(&self) -> f64 {
        self.mtbf_hours
    }

    /// The per-checkpoint cost in hours.
    pub const fn checkpoint_cost_hours(&self) -> f64 {
        self.checkpoint_cost_hours
    }

    /// Young's optimal interval `sqrt(2 δ M)`.
    pub fn young_interval_hours(&self) -> f64 {
        (2.0 * self.checkpoint_cost_hours * self.mtbf_hours).sqrt()
    }

    /// Daly's higher-order optimal interval
    /// `sqrt(2 δ M) · [1 + ⅓ sqrt(δ/(2M)) + (δ/(2M))/9] − δ`, valid for
    /// `δ < 2M`.
    pub fn daly_interval_hours(&self) -> f64 {
        let d = self.checkpoint_cost_hours;
        let m = self.mtbf_hours;
        let base = (2.0 * d * m).sqrt();
        let ratio = (d / (2.0 * m)).sqrt();
        base * (1.0 + ratio / 3.0 + ratio * ratio / 9.0) - d
    }

    /// Expected fraction of wall-clock time doing useful work at
    /// checkpoint interval `tau` hours, under the standard first-order
    /// waste model: checkpoint overhead `δ/(τ+δ)` plus expected rework of
    /// half a segment per failure.
    ///
    /// # Panics
    ///
    /// Panics if `tau` is not positive.
    pub fn efficiency(&self, tau: f64) -> f64 {
        assert!(tau > 0.0, "interval must be positive");
        let d = self.checkpoint_cost_hours;
        let m = self.mtbf_hours;
        let overhead = d / (tau + d);
        let rework = (tau + d) / (2.0 * m);
        (1.0 - overhead) * (1.0 - rework.min(1.0)).max(0.0)
    }

    /// Expected wall-clock hours to finish `work_hours` of failure-free
    /// compute at interval `tau`.
    ///
    /// # Panics
    ///
    /// Panics if `tau` is not positive or the efficiency collapses to
    /// zero (interval hopelessly long for the MTBF).
    pub fn expected_makespan_hours(&self, work_hours: f64, tau: f64) -> f64 {
        let eff = self.efficiency(tau);
        assert!(eff > 0.0, "efficiency is zero at this interval");
        work_hours / eff
    }
}

/// Sweeps checkpoint costs and reports the Daly interval and efficiency
/// for each — the table the `checkpoint_planner` example prints.
pub fn sweep_costs(mtbf_hours: f64, costs: &[f64]) -> Vec<(f64, f64, f64)> {
    costs
        .iter()
        .filter_map(|&cost| {
            let plan = CheckpointPlan::new(mtbf_hours, cost).ok()?;
            let tau = plan.daly_interval_hours();
            Some((cost, tau, plan.efficiency(tau)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use failsim::{Simulator, SystemModel};

    #[test]
    fn young_formula() {
        let plan = CheckpointPlan::new(50.0, 0.25).unwrap();
        assert!((plan.young_interval_hours() - 5.0).abs() < 1e-12);
        assert_eq!(plan.mtbf_hours(), 50.0);
        assert_eq!(plan.checkpoint_cost_hours(), 0.25);
    }

    #[test]
    fn daly_close_to_young_for_small_cost() {
        let plan = CheckpointPlan::new(100.0, 0.01).unwrap();
        let young = plan.young_interval_hours();
        let daly = plan.daly_interval_hours();
        assert!((daly - young).abs() / young < 0.02, "young {young} daly {daly}");
    }

    #[test]
    fn optimal_interval_roughly_maximizes_efficiency() {
        let plan = CheckpointPlan::new(72.0, 0.2).unwrap();
        let tau_opt = plan.daly_interval_hours();
        let best = plan.efficiency(tau_opt);
        // Nearby intervals are no better (allowing model error).
        for factor in [0.25, 0.5, 2.0, 4.0] {
            assert!(
                plan.efficiency(tau_opt * factor) <= best + 1e-3,
                "factor {factor}"
            );
        }
    }

    #[test]
    fn efficiency_is_sane() {
        let plan = CheckpointPlan::new(15.0, 0.1).unwrap();
        let tau = plan.daly_interval_hours();
        let eff = plan.efficiency(tau);
        assert!(eff > 0.7 && eff < 1.0, "eff {eff}");
        // Makespan inflates work by 1/eff.
        let makespan = plan.expected_makespan_hours(100.0, tau);
        assert!((makespan - 100.0 / eff).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_params() {
        assert!(CheckpointPlan::new(0.0, 0.1).is_err());
        assert!(CheckpointPlan::new(-5.0, 0.1).is_err());
        assert!(CheckpointPlan::new(10.0, 0.0).is_err());
        assert!(CheckpointPlan::new(10.0, 5.0).is_err()); // >= M/2
        assert!(CheckpointPlan::new(f64::NAN, 0.1).is_err());
        assert!(CheckpointPlan::new(10.0, f64::INFINITY).is_err());
    }

    #[test]
    fn from_measured_logs() {
        let t2 = Simulator::new(SystemModel::tsubame2(), 42).generate().unwrap();
        let t3 = Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap();
        let p2 = CheckpointPlan::from_log(&t2, 0.1).unwrap();
        let p3 = CheckpointPlan::from_log(&t3, 0.1).unwrap();
        // Higher MTBF permits longer intervals and better efficiency.
        assert!(p3.daly_interval_hours() > 2.0 * p2.daly_interval_hours());
        assert!(
            p3.efficiency(p3.daly_interval_hours()) > p2.efficiency(p2.daly_interval_hours())
        );
        // Empty log fails.
        let empty = t3.filtered(|_| false);
        assert!(CheckpointPlan::from_log(&empty, 0.1).is_err());
    }

    #[test]
    fn sweep_skips_invalid_costs() {
        let rows = sweep_costs(15.0, &[0.05, 0.1, 0.5, 100.0]);
        assert_eq!(rows.len(), 3); // 100.0 >= 15/2 dropped
        // Larger cost -> longer interval, lower efficiency.
        for w in rows.windows(2) {
            assert!(w[0].1 < w[1].1);
            assert!(w[0].2 > w[1].2);
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn efficiency_rejects_zero_tau() {
        let plan = CheckpointPlan::new(10.0, 0.1).unwrap();
        let _ = plan.efficiency(0.0);
    }
}
