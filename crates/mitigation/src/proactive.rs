//! Prediction-triggered proactive recovery.
//!
//! The paper closes RQ5 with: "lowering the time to recovery requires
//! designing strategies that are specific to different types of failures
//! and leveraging failure prediction to initiate recovery proactively
//! where possible". This module models a failure predictor by its
//! precision/recall and computes the MTTR reduction (and its cost in
//! wasted proactive actions) that such a strategy would deliver on a
//! measured log.

use failtypes::{Category, FailureLog};
use serde::{Deserialize, Serialize};

/// A failure predictor characterized by its confusion-matrix rates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Predictor {
    /// Fraction of real failures the predictor flags ahead of time.
    pub recall: f64,
    /// Fraction of flagged events that are real failures.
    pub precision: f64,
}

impl Predictor {
    /// Creates a predictor; `None` unless both rates are in `(0, 1]`.
    pub fn new(recall: f64, precision: f64) -> Option<Self> {
        (recall > 0.0 && recall <= 1.0 && precision > 0.0 && precision <= 1.0)
            .then_some(Predictor { recall, precision })
    }

    /// False alarms raised per true positive.
    pub fn false_alarms_per_hit(&self) -> f64 {
        (1.0 - self.precision) / self.precision
    }
}

/// The effect of proactive recovery on one log.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProactiveOutcome {
    /// MTTR with the strategy, hours.
    pub proactive_mttr_hours: f64,
    /// MTTR without it, hours.
    pub baseline_mttr_hours: f64,
    /// Repair hours saved over the whole log.
    pub hours_saved: f64,
    /// Hours spent on false-alarm proactive actions.
    pub false_alarm_cost_hours: f64,
}

impl ProactiveOutcome {
    /// Relative MTTR reduction, `0..=1`.
    pub fn mttr_reduction(&self) -> f64 {
        1.0 - self.proactive_mttr_hours / self.baseline_mttr_hours
    }

    /// Net benefit after subtracting false-alarm cost, in hours.
    pub fn net_hours_saved(&self) -> f64 {
        self.hours_saved - self.false_alarm_cost_hours
    }
}

/// Evaluates prediction-triggered proactive recovery on a log.
///
/// For each failure, with probability `recall` the predictor flags it in
/// advance and the repair takes `proactive_ttr_hours(category)` (e.g.
/// draining the node and hot-swapping a staged spare) instead of the
/// recorded TTR — unless the recorded TTR was already faster. Each true
/// positive drags along `(1-precision)/precision` false alarms, each
/// costing `false_alarm_cost_hours`.
///
/// The expectation is computed in closed form (no sampling), so results
/// are deterministic.
///
/// Returns `None` for an empty log.
pub fn evaluate_proactive(
    log: &FailureLog,
    predictor: Predictor,
    mut proactive_ttr_hours: impl FnMut(Category) -> f64,
    false_alarm_cost_hours: f64,
) -> Option<ProactiveOutcome> {
    if log.is_empty() {
        return None;
    }
    let mut baseline_total = 0.0;
    let mut proactive_total = 0.0;
    let mut hits = 0.0;
    for rec in log.iter() {
        let ttr = rec.ttr().get();
        baseline_total += ttr;
        let fast = proactive_ttr_hours(rec.category()).max(0.0).min(ttr);
        proactive_total += predictor.recall * fast + (1.0 - predictor.recall) * ttr;
        hits += predictor.recall;
    }
    let n = log.len() as f64;
    let false_alarms = hits * predictor.false_alarms_per_hit();
    Some(ProactiveOutcome {
        proactive_mttr_hours: proactive_total / n,
        baseline_mttr_hours: baseline_total / n,
        hours_saved: baseline_total - proactive_total,
        false_alarm_cost_hours: false_alarms * false_alarm_cost_hours,
    })
}

/// A simple category-specific proactive TTR model: hardware replacements
/// drop to the staging time, software restarts to the reboot time — the
/// "strategies specific to different types of failures" the paper calls
/// for.
pub fn default_proactive_ttr(category: Category) -> f64 {
    if category.is_software() {
        2.0 // scripted restart/patch with the fix staged
    } else {
        8.0 // drain + hot-swap with the part already on site
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use failsim::{Simulator, SystemModel};

    fn t3() -> FailureLog {
        Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap()
    }

    #[test]
    fn predictor_construction() {
        assert!(Predictor::new(0.0, 0.5).is_none());
        assert!(Predictor::new(0.5, 0.0).is_none());
        assert!(Predictor::new(1.1, 0.5).is_none());
        let p = Predictor::new(0.6, 0.8).unwrap();
        assert!((p.false_alarms_per_hit() - 0.25).abs() < 1e-12);
        let perfect = Predictor::new(1.0, 1.0).unwrap();
        assert_eq!(perfect.false_alarms_per_hit(), 0.0);
    }

    #[test]
    fn perfect_predictor_caps_mttr_at_proactive_times() {
        let log = t3();
        let p = Predictor::new(1.0, 1.0).unwrap();
        let out = evaluate_proactive(&log, p, default_proactive_ttr, 4.0).unwrap();
        // Every repair becomes at most the proactive time.
        assert!(out.proactive_mttr_hours <= 8.0);
        assert!(out.mttr_reduction() > 0.8);
        assert_eq!(out.false_alarm_cost_hours, 0.0);
        assert!(out.net_hours_saved() > 0.0);
    }

    #[test]
    fn realistic_predictor_gives_partial_reduction() {
        let log = t3();
        let p = Predictor::new(0.5, 0.8).unwrap();
        let out = evaluate_proactive(&log, p, default_proactive_ttr, 4.0).unwrap();
        // Baseline MTTR ≈ 55 h; recall 0.5 halves the improvable part.
        assert!((out.baseline_mttr_hours - 55.0).abs() < 12.0);
        let reduction = out.mttr_reduction();
        assert!(reduction > 0.35 && reduction < 0.55, "reduction {reduction}");
        assert!(out.false_alarm_cost_hours > 0.0);
        assert!(out.net_hours_saved() > 0.0);
    }

    #[test]
    fn low_precision_can_negate_the_benefit() {
        let log = t3();
        let sloppy = Predictor::new(0.5, 0.02).unwrap();
        // Expensive false alarms (e.g. draining big jobs).
        let out = evaluate_proactive(&log, sloppy, default_proactive_ttr, 40.0).unwrap();
        assert!(out.net_hours_saved() < 0.0, "net {}", out.net_hours_saved());
        // Yet MTTR itself still improves — the cost is elsewhere.
        assert!(out.mttr_reduction() > 0.0);
    }

    #[test]
    fn proactive_never_worse_than_recorded() {
        // A "proactive" time larger than the recorded TTR must not hurt.
        let log = t3();
        let p = Predictor::new(1.0, 1.0).unwrap();
        let out = evaluate_proactive(&log, p, |_| 1e6, 0.0).unwrap();
        assert!((out.proactive_mttr_hours - out.baseline_mttr_hours).abs() < 1e-9);
        assert!(out.hours_saved.abs() < 1e-6);
    }

    #[test]
    fn category_specific_strategy_beats_uniform() {
        // The paper: strategies must be failure-type specific. A uniform
        // 8 h action everywhere is worse than 2 h for software + 8 h for
        // hardware on a software-dominated log.
        let log = t3();
        let p = Predictor::new(0.7, 0.9).unwrap();
        let specific = evaluate_proactive(&log, p, default_proactive_ttr, 4.0).unwrap();
        let uniform = evaluate_proactive(&log, p, |_| 8.0, 4.0).unwrap();
        assert!(specific.proactive_mttr_hours < uniform.proactive_mttr_hours);
    }

    #[test]
    fn empty_log_is_none() {
        let empty = t3().filtered(|_| false);
        let p = Predictor::new(0.5, 0.5).unwrap();
        assert!(evaluate_proactive(&empty, p, default_proactive_ttr, 1.0).is_none());
    }
}
