//! An integrated operations plan: every mitigation the paper's
//! implications call for, derived from one measured log.
//!
//! [`OperationsPlan::from_log`] runs the whole "measure, then act" loop:
//! checkpoint intervals from the MTBF, spare pools from the per-class
//! rates, repair-crew staffing from the overlap profile, co-location
//! policy from the multi-GPU share, and the slot-scheduling policy from
//! the Fig. 5 skew — the one-call API an operations team would script
//! against.

use failscope::{FleetIndex, LogView};
use failtypes::{ComponentClass, FailureLog};
use serde::{Deserialize, Serialize};

use crate::checkpoint::CheckpointPlan;
use crate::colocation::NodeFailureModel;
use crate::scheduler::{evaluate_policy, AllocationPolicy, SlotRiskModel};
use crate::spares::SparePolicy;
use crate::staffing::required_crews_index;

/// Tunables of an [`OperationsPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlanConfig {
    /// Per-checkpoint cost in hours.
    pub checkpoint_cost_hours: f64,
    /// Spare replenishment lead time in hours.
    pub spare_lead_time_hours: f64,
    /// Acceptable stockout probability per spare class.
    pub spare_stockout_tolerance: f64,
    /// Acceptable MTTR inflation from repair-crew queueing.
    pub staffing_inflation_target: f64,
    /// Correlated-double-kill tolerance per week-long co-located job
    /// pair (the default, 3e-4, permits roughly one fleet-wide double
    /// kill per year on a Tsubame-3-sized system and forbids dense
    /// packing on a Tsubame-2-like multi-GPU failure mix).
    pub colocation_tolerance: f64,
}

impl Default for PlanConfig {
    fn default() -> Self {
        PlanConfig {
            checkpoint_cost_hours: 0.25,
            spare_lead_time_hours: 14.0 * 24.0,
            spare_stockout_tolerance: 0.05,
            staffing_inflation_target: 1.05,
            colocation_tolerance: 3e-4,
        }
    }
}

/// One component class's spare recommendation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpareLine {
    /// The component class.
    pub class: ComponentClass,
    /// Measured MTBF of the class in hours.
    pub class_mtbf_hours: f64,
    /// Recommended on-site spares.
    pub spares: u32,
}

/// The integrated plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperationsPlan {
    /// Checkpoint plan from the measured system MTBF.
    pub checkpoint: CheckpointPlan,
    /// Daly-optimal checkpoint interval in hours.
    pub checkpoint_interval_hours: f64,
    /// Spare recommendations for every class that failed.
    pub spares: Vec<SpareLine>,
    /// Repair crews needed to keep queueing inflation under the target
    /// (`None` when even 64 crews cannot).
    pub repair_crews: Option<u32>,
    /// Whether dense job co-location is acceptable under the correlated
    /// multi-GPU kill tolerance.
    pub colocation_acceptable: bool,
    /// Interruption-probability advantage of risk-aware slot scheduling
    /// over first-fit on a reference job mix (positive = risk-aware
    /// wins).
    pub slot_scheduling_gain: f64,
}

impl OperationsPlan {
    /// Derives the full plan from any measured [`FleetIndex`] in a
    /// single indexed pass — a batch [`LogView`] or a live
    /// [`failscope::StreamView`] mid-ingestion work the same way.
    ///
    /// Returns `None` when the index is too small to measure an MTBF or
    /// has no GPU failures (both needed by most of the plan).
    pub fn from_index<V: FleetIndex + ?Sized>(index: &V, config: PlanConfig) -> Option<Self> {
        let checkpoint = CheckpointPlan::from_index(index, config.checkpoint_cost_hours).ok()?;

        let mut spares = Vec::new();
        for class in ComponentClass::ALL {
            if let Some(policy) =
                SparePolicy::from_index(index, class, config.spare_lead_time_hours)
            {
                spares.push(SpareLine {
                    class,
                    class_mtbf_hours: 1.0 / policy.demand_rate_per_hour,
                    spares: policy.required_spares(config.spare_stockout_tolerance),
                });
            }
        }

        let repair_crews =
            required_crews_index(index, config.staffing_inflation_target, 64);

        let node_model = NodeFailureModel::from_index(index)?;
        let colocation_acceptable = crate::colocation::colocation_acceptable(
            node_model,
            168.0,
            config.colocation_tolerance,
        );

        let slot_scheduling_gain = match SlotRiskModel::from_index(index) {
            Some(risk) => {
                let jobs: Vec<(usize, f64)> = (0..200).map(|i| (1 + i % 2, 48.0)).collect();
                let ff = evaluate_policy(&risk, AllocationPolicy::FirstFit, &jobs);
                let ra = evaluate_policy(&risk, AllocationPolicy::RiskAware, &jobs);
                ff.mean_interruption_probability - ra.mean_interruption_probability
            }
            None => 0.0,
        };

        Some(OperationsPlan {
            checkpoint_interval_hours: checkpoint.daly_interval_hours(),
            checkpoint,
            spares,
            repair_crews,
            colocation_acceptable,
            slot_scheduling_gain,
        })
    }

    /// [`OperationsPlan::from_index`], indexing the log once.
    ///
    /// Returns `None` when the log is too small to measure an MTBF or
    /// has no GPU failures (both needed by most of the plan).
    #[doc(hidden)]
    pub fn from_log(log: &FailureLog, config: PlanConfig) -> Option<Self> {
        Self::from_index(&LogView::new(log), config)
    }

    /// Renders the plan as an operator-facing text block.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "=== Operations plan ===");
        let _ = writeln!(
            out,
            "checkpoint every {:.2} h (MTBF {:.1} h, cost {:.2} h, efficiency {:.1}%)",
            self.checkpoint_interval_hours,
            self.checkpoint.mtbf_hours(),
            self.checkpoint.checkpoint_cost_hours(),
            self.checkpoint.efficiency(self.checkpoint_interval_hours) * 100.0
        );
        let _ = writeln!(out, "spares (on-site):");
        for line in &self.spares {
            let _ = writeln!(
                out,
                "  {:<10} {:>3}  (class MTBF {:.0} h)",
                line.class.name(),
                line.spares,
                line.class_mtbf_hours
            );
        }
        match self.repair_crews {
            Some(c) => {
                let _ = writeln!(out, "repair crews: {c}");
            }
            None => {
                let _ = writeln!(out, "repair crews: target unachievable with 64 crews");
            }
        }
        let _ = writeln!(
            out,
            "co-location of multi-GPU jobs: {}",
            if self.colocation_acceptable {
                "acceptable"
            } else {
                "avoid (correlated multi-GPU failures)"
            }
        );
        let _ = writeln!(
            out,
            "risk-aware slot scheduling gain: {:.2} pp interruption probability",
            self.slot_scheduling_gain * 100.0
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use failsim::{Simulator, SystemModel};

    fn plan_for(model: SystemModel, seed: u64) -> OperationsPlan {
        let log = Simulator::new(model, seed).generate().expect("valid model");
        OperationsPlan::from_log(&log, PlanConfig::default()).expect("plannable log")
    }

    #[test]
    fn plans_differ_across_generations_in_the_right_direction() {
        let p2 = plan_for(SystemModel::tsubame2(), 42);
        let p3 = plan_for(SystemModel::tsubame3(), 43);
        // Higher MTBF -> longer checkpoint intervals.
        assert!(p3.checkpoint_interval_hours > p2.checkpoint_interval_hours);
        // Higher failure rate -> more crews and more GPU spares.
        assert!(p2.repair_crews.expect("achievable") > p3.repair_crews.expect("achievable"));
        let gpu_spares = |p: &OperationsPlan| {
            p.spares
                .iter()
                .find(|l| l.class == ComponentClass::Gpu)
                .expect("GPUs fail")
                .spares
        };
        assert!(gpu_spares(&p2) > gpu_spares(&p3));
        // T2's 70% multi-GPU share forbids dense co-location; T3 allows it.
        assert!(!p2.colocation_acceptable);
        assert!(p3.colocation_acceptable);
    }

    #[test]
    fn every_failing_class_gets_a_spare_line() {
        let p = plan_for(SystemModel::tsubame3(), 43);
        let classes: Vec<ComponentClass> = p.spares.iter().map(|l| l.class).collect();
        for class in [ComponentClass::Gpu, ComponentClass::Cpu, ComponentClass::Memory] {
            assert!(classes.contains(&class), "missing {class}");
        }
        for line in &p.spares {
            assert!(line.class_mtbf_hours > 0.0);
        }
    }

    #[test]
    fn render_mentions_every_section() {
        let p = plan_for(SystemModel::tsubame3(), 43);
        let text = p.render();
        for needle in [
            "checkpoint every",
            "spares (on-site):",
            "repair crews:",
            "co-location",
            "slot scheduling gain",
        ] {
            assert!(text.contains(needle), "missing {needle}\n{text}");
        }
    }

    #[test]
    fn slot_gain_is_positive_on_skewed_systems() {
        let p = plan_for(SystemModel::tsubame3(), 43);
        assert!(p.slot_scheduling_gain > 0.0);
    }

    #[test]
    fn empty_log_is_unplannable() {
        let log = Simulator::new(SystemModel::tsubame3(), 43)
            .generate()
            .expect("valid model")
            .filtered(|_| false);
        assert!(OperationsPlan::from_log(&log, PlanConfig::default()).is_none());
    }
}
