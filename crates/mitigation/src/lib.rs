//! Mitigation strategies derived from failure-log analysis.
//!
//! The DSN 2021 Tsubame study ends each research question with an
//! operational implication; this crate turns those implications into
//! executable policies, all parameterized by measured
//! [`failtypes::FailureLog`]s:
//!
//! * [`CheckpointPlan`] — Young/Daly checkpoint-interval optimization
//!   from measured MTBF (the paper's cited mitigation for GPU failures).
//! * [`SparePolicy`] / [`simulate_inventory`] — spare-part pool sizing
//!   against the long repair tails of Fig. 10 ("appropriate spare
//!   provisioning of parts").
//! * [`SlotRiskModel`] / [`evaluate_policy`] — GPU-slot-aware scheduling
//!   that load-balances away from the failure-prone slots of Fig. 5.
//! * [`Predictor`] / [`evaluate_proactive`] — prediction-triggered
//!   proactive recovery, the paper's proposed lever against the stagnant
//!   MTTR of Fig. 9.
//! * [`rotate_exposure`] — periodic GPU rearrangement during maintenance,
//!   equalizing per-card wear across the skewed slots of Fig. 5.
//! * [`NodeFailureModel`] / [`evaluate_placement`] — co-location-aware
//!   node scheduling under the simultaneous multi-GPU failure mode of
//!   Table III.
//!
//! # Examples
//!
//! ```
//! use failmitigate::CheckpointPlan;
//! use failsim::{Simulator, SystemModel};
//!
//! let log = Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap();
//! let plan = CheckpointPlan::from_log(&log, 0.25)?;
//! let tau = plan.daly_interval_hours();
//! assert!(tau > 4.0 && tau < 10.0);
//! # Ok::<(), failmitigate::InvalidCheckpointParams>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

mod checkpoint;
mod colocation;
mod plan;
mod proactive;
mod rotation;
mod scheduler;
mod spares;
mod staffing;

pub use checkpoint::{sweep_costs, CheckpointPlan, InvalidCheckpointParams};
pub use colocation::{
    colocation_acceptable, evaluate_placement, ColocationOutcome, NodeFailureModel, Placement,
};
pub use plan::{OperationsPlan, PlanConfig, SpareLine};
pub use rotation::{rotate_exposure, RotationOutcome};
pub use proactive::{default_proactive_ttr, evaluate_proactive, Predictor, ProactiveOutcome};
pub use scheduler::{
    allocate, evaluate_policy, AllocationPolicy, PolicyOutcome, SlotRiskModel,
};
pub use spares::{expected_demands, simulate_inventory, InventoryOutcome, SparePolicy};
pub use staffing::{
    required_crews, required_crews_index, simulate_staffing, simulate_staffing_index,
    StaffingOutcome,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CheckpointPlan>();
        assert_send_sync::<SparePolicy>();
        assert_send_sync::<SlotRiskModel>();
        assert_send_sync::<Predictor>();
    }
}
