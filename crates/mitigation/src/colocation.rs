//! Co-location-aware node scheduling under multi-GPU failures.
//!
//! RQ3's implication: operators should "change the scheduler design when
//! co-locating multiple jobs on the same node for increased utilization".
//! For two 2-GPU jobs on 4-GPU nodes, packing them onto one node and
//! spreading them over two nodes kill the *same number of jobs in
//! expectation* — what differs is the correlation: a simultaneous
//! multi-GPU failure on a packed node can kill **both** jobs at once,
//! while spread jobs can only die together through two independent
//! events. This module quantifies that trade against the utilization
//! gain, using multi-GPU rates measured from a log (Table III).

use failscope::{FleetIndex, LogView};
use failtypes::FailureLog;
use serde::{Deserialize, Serialize};

/// Node-level GPU failure rates relevant to co-location decisions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeFailureModel {
    /// Single-GPU failures per node-hour.
    pub single_gpu_rate: f64,
    /// Simultaneous multi-GPU failures per node-hour.
    pub multi_gpu_rate: f64,
}

impl NodeFailureModel {
    /// Creates a model; `None` for negative or non-finite rates.
    pub fn new(single_gpu_rate: f64, multi_gpu_rate: f64) -> Option<Self> {
        (single_gpu_rate >= 0.0
            && multi_gpu_rate >= 0.0
            && single_gpu_rate.is_finite()
            && multi_gpu_rate.is_finite())
        .then_some(NodeFailureModel {
            single_gpu_rate,
            multi_gpu_rate,
        })
    }

    /// Derives the rates from any measured [`FleetIndex`] (events with
    /// unknown involvement count as single).
    ///
    /// Returns `None` when the index has no GPU failures.
    pub fn from_index<V: FleetIndex + ?Sized>(index: &V) -> Option<Self> {
        let node_hours = index.window().duration().get() * index.spec().nodes() as f64;
        let mut single = 0usize;
        let mut multi = 0usize;
        for rec in index.records().iter().filter(|r| r.category().is_gpu()) {
            if rec.is_multi_gpu() {
                multi += 1;
            } else {
                single += 1;
            }
        }
        if single + multi == 0 {
            return None;
        }
        Self::new(single as f64 / node_hours, multi as f64 / node_hours)
    }

    /// [`NodeFailureModel::from_index`], indexing the log once.
    ///
    /// Returns `None` when the log has no GPU failures.
    #[doc(hidden)]
    pub fn from_log(log: &FailureLog) -> Option<Self> {
        Self::from_index(&LogView::new(log))
    }

    /// Share of GPU failures that are simultaneous multi-GPU.
    pub fn multi_share(&self) -> f64 {
        let total = self.single_gpu_rate + self.multi_gpu_rate;
        if total > 0.0 {
            self.multi_gpu_rate / total
        } else {
            0.0
        }
    }
}

/// How two 2-GPU jobs are placed on 4-GPU nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Placement {
    /// Both jobs share one node (better utilization, correlated risk).
    Pack,
    /// Each job gets its own node (blast radius one job).
    Spread,
}

/// Risk profile of a placement of two 2-GPU jobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ColocationOutcome {
    /// The placement evaluated.
    pub placement: Placement,
    /// Expected jobs killed over the duration (ties between placements —
    /// the expectation is placement-invariant).
    pub expected_job_kills: f64,
    /// Expected *correlated double kills*: events killing both jobs at
    /// once.
    pub correlated_kills: f64,
    /// Nodes occupied.
    pub nodes_used: u32,
}

/// Evaluates one placement for `duration_hours`.
///
/// Model (multi-GPU events treated as double-GPU, the dominant mode in
/// Table III): a single-GPU failure strikes a uniformly random GPU slot;
/// a double strikes a uniformly random slot pair.
///
/// * **Pack** — all 4 slots busy. Singles kill exactly one job; a double
///   hits GPUs of both jobs with probability 4/6 (kills both) and one job
///   with probability 2/6.
/// * **Spread** — 2 of 4 slots busy per node, two nodes exposed. A single
///   hits a busy slot with probability 1/2; a double hits at least one
///   busy slot with probability 5/6 and can never kill more than the one
///   job on its node.
///
/// # Panics
///
/// Panics if `duration_hours` is negative.
pub fn evaluate_placement(
    model: NodeFailureModel,
    placement: Placement,
    duration_hours: f64,
) -> ColocationOutcome {
    assert!(duration_hours >= 0.0, "duration must be non-negative");
    let s = model.single_gpu_rate * duration_hours;
    let m = model.multi_gpu_rate * duration_hours;
    match placement {
        Placement::Pack => {
            let both = m * (4.0 / 6.0);
            let one = m * (2.0 / 6.0);
            ColocationOutcome {
                placement,
                expected_job_kills: s + one + 2.0 * both,
                correlated_kills: both,
                nodes_used: 1,
            }
        }
        Placement::Spread => {
            // Two nodes, each half-busy.
            let singles = 2.0 * s * 0.5;
            let multis = 2.0 * m * (5.0 / 6.0);
            ColocationOutcome {
                placement,
                expected_job_kills: singles + multis,
                // Both jobs dying simultaneously needs two independent
                // events at once — negligible at these rates.
                correlated_kills: 0.0,
                nodes_used: 2,
            }
        }
    }
}

/// The scheduler decision the paper's RQ3 asks for: co-locating is
/// acceptable when the correlated-kill rate it introduces stays below
/// `tolerance` expected double kills per job — dense packing on a
/// Tsubame-3-like fleet (multi-GPU failures < 8%) but not on a
/// Tsubame-2-like one (~70%).
pub fn colocation_acceptable(
    model: NodeFailureModel,
    duration_hours: f64,
    tolerance: f64,
) -> bool {
    evaluate_placement(model, Placement::Pack, duration_hours).correlated_kills <= tolerance
}

#[cfg(test)]
mod tests {
    use super::*;
    use failsim::{Simulator, SystemModel};

    #[test]
    fn model_construction() {
        assert!(NodeFailureModel::new(-1.0, 0.0).is_none());
        assert!(NodeFailureModel::new(0.0, f64::NAN).is_none());
        let m = NodeFailureModel::new(3e-5, 1e-5).expect("valid");
        assert!((m.multi_share() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn expected_kills_tie_but_correlation_does_not() {
        let model = NodeFailureModel::new(1e-4, 2e-5).expect("valid");
        let pack = evaluate_placement(model, Placement::Pack, 1000.0);
        let spread = evaluate_placement(model, Placement::Spread, 1000.0);
        // Expectation is placement-invariant: s + 5m/3 both ways.
        assert!(
            (pack.expected_job_kills - spread.expected_job_kills).abs() < 1e-12,
            "pack {} spread {}",
            pack.expected_job_kills,
            spread.expected_job_kills
        );
        // The correlated-kill risk is all on the packed side.
        assert!(pack.correlated_kills > 0.0);
        assert_eq!(spread.correlated_kills, 0.0);
        assert_eq!(pack.nodes_used, 1);
        assert_eq!(spread.nodes_used, 2);
    }

    #[test]
    fn decision_flips_between_generations() {
        let t2 = Simulator::new(SystemModel::tsubame2(), 42).generate().expect("valid");
        let t3 = Simulator::new(SystemModel::tsubame3(), 43).generate().expect("valid");
        let m2 = NodeFailureModel::from_log(&t2).expect("GPU failures");
        let m3 = NodeFailureModel::from_log(&t3).expect("GPU failures");
        // Table III: ~70% of T2 GPU failures are multi; < 8% on T3.
        assert!(m2.multi_share() > 0.5, "T2 multi share {}", m2.multi_share());
        assert!(m3.multi_share() < 0.1, "T3 multi share {}", m3.multi_share());

        // With a tolerance calibrated between the two fleets' correlated
        // risk, packing is acceptable on T3 but not on T2.
        let duration = 168.0; // a week-long job
        let risk2 = evaluate_placement(m2, Placement::Pack, duration).correlated_kills;
        let risk3 = evaluate_placement(m3, Placement::Pack, duration).correlated_kills;
        assert!(risk2 > 10.0 * risk3, "T2 {risk2} vs T3 {risk3}");
        let tolerance = (risk2 * risk3).sqrt();
        assert!(colocation_acceptable(m3, duration, tolerance));
        assert!(!colocation_acceptable(m2, duration, tolerance));
    }

    #[test]
    fn zero_duration_zero_risk() {
        let model = NodeFailureModel::new(1e-4, 1e-5).expect("valid");
        let out = evaluate_placement(model, Placement::Pack, 0.0);
        assert_eq!(out.expected_job_kills, 0.0);
        assert_eq!(out.correlated_kills, 0.0);
        assert!(colocation_acceptable(model, 0.0, 0.0));
    }

    #[test]
    fn from_log_requires_gpu_failures() {
        let t3 = Simulator::new(SystemModel::tsubame3(), 43).generate().expect("valid");
        let none = t3.filtered(|r| !r.category().is_gpu());
        assert!(NodeFailureModel::from_log(&none).is_none());
        let m = NodeFailureModel::from_log(&t3).expect("GPU failures");
        assert!(m.single_gpu_rate > 0.0);
    }
}
