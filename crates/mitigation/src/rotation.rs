//! Periodic GPU rearrangement during maintenance.
//!
//! RQ2's second implication: "the operations staff could also mitigate
//! this [non-uniform per-slot failure rates] by rearranging the GPUs
//! periodically during maintenance". If failure pressure is a property of
//! the *slot* (cooling position, PCIe riser, power phase), rotating the
//! physical cards through the slots equalizes the accumulated wear per
//! card. This module computes the per-card exposure with and without
//! rotation.

use failtypes::GpuSlot;
use serde::{Deserialize, Serialize};

use crate::scheduler::SlotRiskModel;

/// Per-card accumulated failure exposure over a planning horizon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RotationOutcome {
    /// Expected failures accumulated by each card (indexed by its
    /// starting slot).
    pub exposure_per_card: Vec<f64>,
    /// Number of maintenance rotations performed.
    pub rotations: u32,
}

impl RotationOutcome {
    /// Largest-to-smallest exposure ratio (1.0 = perfectly equalized).
    ///
    /// Returns `None` when a card has zero exposure.
    pub fn imbalance(&self) -> Option<f64> {
        let max = self.exposure_per_card.iter().cloned().fold(f64::MIN, f64::max);
        let min = self.exposure_per_card.iter().cloned().fold(f64::MAX, f64::min);
        (min > 0.0).then(|| max / min)
    }

    /// Mean exposure across cards (invariant under rotation — rotation
    /// redistributes risk, it does not remove it).
    pub fn mean_exposure(&self) -> f64 {
        self.exposure_per_card.iter().sum::<f64>() / self.exposure_per_card.len().max(1) as f64
    }
}

/// Simulates card exposure over `horizon_hours` with a maintenance
/// rotation every `rotation_period_hours` (cards advance one slot
/// cyclically each rotation). A period of `f64::INFINITY` means "never
/// rotate".
///
/// # Panics
///
/// Panics if the horizon or period is not positive.
pub fn rotate_exposure(
    model: &SlotRiskModel,
    horizon_hours: f64,
    rotation_period_hours: f64,
) -> RotationOutcome {
    assert!(horizon_hours > 0.0, "horizon must be positive");
    assert!(rotation_period_hours > 0.0, "period must be positive");
    let n = model.slots();
    let mut exposure = vec![0.0; n];
    let mut t = 0.0;
    let mut rotations = 0u32;
    while t < horizon_hours {
        let span = rotation_period_hours.min(horizon_hours - t);
        for (card, e) in exposure.iter_mut().enumerate() {
            // After `rotations` rotations, the card that started in slot
            // `card` sits in slot `(card + rotations) % n`.
            let slot = (card + rotations as usize) % n;
            *e += model.rate(GpuSlot::new(slot as u8)) * span;
        }
        t += span;
        if t < horizon_hours {
            rotations += 1;
        }
    }
    RotationOutcome {
        exposure_per_card: exposure,
        rotations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed_model() -> SlotRiskModel {
        // Tsubame-3-like: outer slots are the hot ones.
        SlotRiskModel::new(vec![2e-5, 1e-5, 1e-5, 2e-5]).expect("valid rates")
    }

    #[test]
    fn no_rotation_preserves_slot_skew() {
        let model = skewed_model();
        let out = rotate_exposure(&model, 8760.0, f64::INFINITY);
        assert_eq!(out.rotations, 0);
        assert!((out.imbalance().expect("positive exposure") - 2.0).abs() < 1e-9);
    }

    #[test]
    fn quarterly_rotation_equalizes_exposure() {
        let model = skewed_model();
        // Four quarters over a year on a 4-slot node: each card visits
        // every slot once.
        let out = rotate_exposure(&model, 8760.0, 8760.0 / 4.0);
        assert_eq!(out.rotations, 3);
        assert!(
            (out.imbalance().expect("positive exposure") - 1.0).abs() < 1e-9,
            "imbalance {:?}",
            out.imbalance()
        );
    }

    #[test]
    fn rotation_preserves_total_risk() {
        let model = skewed_model();
        let never = rotate_exposure(&model, 8760.0, f64::INFINITY);
        let often = rotate_exposure(&model, 8760.0, 100.0);
        assert!((never.mean_exposure() - often.mean_exposure()).abs() < 1e-12);
    }

    #[test]
    fn partial_rotation_reduces_but_does_not_eliminate_imbalance() {
        let model = skewed_model();
        let never = rotate_exposure(&model, 8760.0, f64::INFINITY);
        let halfway = rotate_exposure(&model, 8760.0, 8760.0 / 2.0);
        let quarterly = rotate_exposure(&model, 8760.0, 8760.0 / 4.0);
        let i_never = never.imbalance().expect("positive");
        let i_half = halfway.imbalance().expect("positive");
        let i_quarter = quarterly.imbalance().expect("positive");
        assert!(i_half <= i_never);
        assert!(i_quarter <= i_half);
    }

    #[test]
    fn uniform_rates_are_rotation_invariant() {
        let model = SlotRiskModel::new(vec![1e-5; 4]).expect("valid rates");
        let out = rotate_exposure(&model, 1000.0, 100.0);
        assert!((out.imbalance().expect("positive") - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn rejects_zero_horizon() {
        let _ = rotate_exposure(&skewed_model(), 0.0, 1.0);
    }
}
