//! GPU-slot-aware scheduling.
//!
//! RQ2's implication: "HPC centers should inform and help end-users take
//! advantage of all the GPUs in a node in a load-balanced manner". This
//! module models per-slot failure rates (from Fig. 5's measured skew) and
//! compares slot-allocation policies by the expected interruption
//! probability of the jobs they place.

use failscope::{FleetIndex, LogView, SlotDistribution};
use failtypes::{FailureLog, GpuSlot};
use serde::{Deserialize, Serialize};

/// Per-slot failure rates of one node architecture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlotRiskModel {
    /// Failures per hour for each slot of a node.
    rates_per_hour: Vec<f64>,
}

impl SlotRiskModel {
    /// Creates a model from per-slot failure rates (per hour, per node).
    ///
    /// Returns `None` when empty or any rate is negative/non-finite.
    pub fn new(rates_per_hour: Vec<f64>) -> Option<Self> {
        if rates_per_hour.is_empty()
            || rates_per_hour.iter().any(|r| *r < 0.0 || !r.is_finite())
        {
            return None;
        }
        Some(SlotRiskModel { rates_per_hour })
    }

    /// Derives per-slot rates from any measured [`FleetIndex`]: slot
    /// involvements over the window, divided across the system's nodes.
    ///
    /// Returns `None` when the index records no slot involvements.
    pub fn from_index<V: FleetIndex + ?Sized>(index: &V) -> Option<Self> {
        let dist = SlotDistribution::from_index(index);
        if dist.total_involvements() == 0 {
            return None;
        }
        let node_hours = index.window().duration().get() * index.spec().nodes() as f64;
        Self::new(
            dist.shares()
                .iter()
                .map(|s| s.count as f64 / node_hours)
                .collect(),
        )
    }

    /// [`SlotRiskModel::from_index`], indexing the log once.
    ///
    /// Returns `None` when the log records no slot involvements.
    #[doc(hidden)]
    pub fn from_log(log: &FailureLog) -> Option<Self> {
        Self::from_index(&LogView::new(log))
    }

    /// Number of GPU slots per node.
    pub fn slots(&self) -> usize {
        self.rates_per_hour.len()
    }

    /// Failure rate of one slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot is out of range.
    pub fn rate(&self, slot: GpuSlot) -> f64 {
        self.rates_per_hour[slot.index() as usize]
    }

    /// Probability that a job occupying `slots` for `duration_hours` is
    /// interrupted by a failure of any of them (independent exponential
    /// slot lifetimes).
    pub fn interruption_probability(&self, slots: &[GpuSlot], duration_hours: f64) -> f64 {
        let total_rate: f64 = slots.iter().map(|&s| self.rate(s)).sum();
        1.0 - (-total_rate * duration_hours).exp()
    }
}

/// A slot-allocation policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AllocationPolicy {
    /// Fill slots in index order (what naive tooling does).
    FirstFit,
    /// Prefer the historically least failure-prone slots.
    RiskAware,
    /// Round-robin across slots regardless of risk (pure load balance).
    RoundRobin,
}

/// Allocates `k` slots of a fresh node under a policy.
///
/// `rr_state` carries the round-robin cursor between calls (pass `0`
/// initially and reuse the returned state).
///
/// # Panics
///
/// Panics if `k` exceeds the slot count.
pub fn allocate(
    model: &SlotRiskModel,
    policy: AllocationPolicy,
    k: usize,
    rr_state: &mut usize,
) -> Vec<GpuSlot> {
    assert!(k <= model.slots(), "requested more GPUs than the node has");
    match policy {
        AllocationPolicy::FirstFit => (0..k).map(|i| GpuSlot::new(i as u8)).collect(),
        AllocationPolicy::RiskAware => {
            let mut order: Vec<usize> = (0..model.slots()).collect();
            order.sort_by(|&a, &b| {
                model.rates_per_hour[a]
                    .partial_cmp(&model.rates_per_hour[b])
                    .expect("rates are finite")
            });
            let mut chosen: Vec<GpuSlot> =
                order[..k].iter().map(|&i| GpuSlot::new(i as u8)).collect();
            chosen.sort();
            chosen
        }
        AllocationPolicy::RoundRobin => {
            let n = model.slots();
            let mut chosen: Vec<GpuSlot> = (0..k)
                .map(|i| GpuSlot::new(((*rr_state + i) % n) as u8))
                .collect();
            *rr_state = (*rr_state + k) % n;
            chosen.sort();
            chosen
        }
    }
}

/// The outcome of evaluating a policy on a stream of single-node jobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolicyOutcome {
    /// The policy evaluated.
    pub policy: AllocationPolicy,
    /// Mean interruption probability per job.
    pub mean_interruption_probability: f64,
    /// Largest per-slot share of allocations (1/slots = perfectly
    /// balanced).
    pub max_slot_load_share: f64,
}

/// Evaluates a policy over a job stream of `(gpus, duration_hours)`
/// requests, each placed on a fresh node.
pub fn evaluate_policy(
    model: &SlotRiskModel,
    policy: AllocationPolicy,
    jobs: &[(usize, f64)],
) -> PolicyOutcome {
    let mut rr = 0usize;
    let mut risk_sum = 0.0;
    let mut slot_loads = vec![0usize; model.slots()];
    for &(k, duration) in jobs {
        let slots = allocate(model, policy, k.min(model.slots()), &mut rr);
        risk_sum += model.interruption_probability(&slots, duration);
        for s in &slots {
            slot_loads[s.index() as usize] += 1;
        }
    }
    let total_loads: usize = slot_loads.iter().sum();
    PolicyOutcome {
        policy,
        mean_interruption_probability: risk_sum / jobs.len().max(1) as f64,
        max_slot_load_share: slot_loads
            .iter()
            .map(|&l| l as f64 / total_loads.max(1) as f64)
            .fold(0.0, f64::max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use failsim::{Simulator, SystemModel};

    fn t3_model() -> SlotRiskModel {
        let log = Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap();
        SlotRiskModel::from_log(&log).unwrap()
    }

    fn jobs() -> Vec<(usize, f64)> {
        (0..200)
            .map(|i| (1 + i % 3, 24.0 + (i % 7) as f64 * 12.0))
            .collect()
    }

    #[test]
    fn model_construction() {
        assert!(SlotRiskModel::new(vec![]).is_none());
        assert!(SlotRiskModel::new(vec![0.1, -0.1]).is_none());
        assert!(SlotRiskModel::new(vec![0.1, f64::NAN]).is_none());
        let m = SlotRiskModel::new(vec![0.001, 0.002]).unwrap();
        assert_eq!(m.slots(), 2);
        assert_eq!(m.rate(GpuSlot::new(1)), 0.002);
    }

    #[test]
    fn interruption_probability_behaviour() {
        let m = SlotRiskModel::new(vec![0.001, 0.002]).unwrap();
        let one = m.interruption_probability(&[GpuSlot::new(0)], 100.0);
        let both =
            m.interruption_probability(&[GpuSlot::new(0), GpuSlot::new(1)], 100.0);
        assert!(one > 0.0 && one < 1.0);
        assert!(both > one, "more GPUs, more risk");
        // Exact value: 1 - e^{-0.1}.
        assert!((one - (1.0 - (-0.1f64).exp())).abs() < 1e-12);
        // Zero duration, zero risk.
        assert_eq!(m.interruption_probability(&[GpuSlot::new(0)], 0.0), 0.0);
    }

    #[test]
    fn risk_aware_beats_first_fit_on_skewed_nodes() {
        // Tsubame-3 slots 0 and 3 are the risky ones; FirstFit always
        // grabs slot 0.
        let model = t3_model();
        let ff = evaluate_policy(&model, AllocationPolicy::FirstFit, &jobs());
        let ra = evaluate_policy(&model, AllocationPolicy::RiskAware, &jobs());
        assert!(
            ra.mean_interruption_probability < ff.mean_interruption_probability,
            "risk-aware {} vs first-fit {}",
            ra.mean_interruption_probability,
            ff.mean_interruption_probability
        );
    }

    #[test]
    fn round_robin_balances_load() {
        let model = t3_model();
        let ff = evaluate_policy(&model, AllocationPolicy::FirstFit, &jobs());
        let rr = evaluate_policy(&model, AllocationPolicy::RoundRobin, &jobs());
        assert!(rr.max_slot_load_share < ff.max_slot_load_share);
        // Perfectly balanced stream would be 0.25 per slot.
        assert!(rr.max_slot_load_share < 0.30, "{}", rr.max_slot_load_share);
    }

    #[test]
    fn allocation_shapes() {
        let model = SlotRiskModel::new(vec![0.3, 0.1, 0.2, 0.05]).unwrap();
        let mut rr = 0;
        let ff = allocate(&model, AllocationPolicy::FirstFit, 2, &mut rr);
        assert_eq!(ff, vec![GpuSlot::new(0), GpuSlot::new(1)]);
        let ra = allocate(&model, AllocationPolicy::RiskAware, 2, &mut rr);
        // Cheapest two slots: 3 (0.05) and 1 (0.1).
        assert_eq!(ra, vec![GpuSlot::new(1), GpuSlot::new(3)]);
        let mut rr = 0;
        let a = allocate(&model, AllocationPolicy::RoundRobin, 3, &mut rr);
        let b = allocate(&model, AllocationPolicy::RoundRobin, 3, &mut rr);
        assert_eq!(a, vec![GpuSlot::new(0), GpuSlot::new(1), GpuSlot::new(2)]);
        assert_eq!(b, vec![GpuSlot::new(0), GpuSlot::new(1), GpuSlot::new(3)]);
    }

    #[test]
    #[should_panic(expected = "more GPUs")]
    fn allocate_rejects_oversized_requests() {
        let model = SlotRiskModel::new(vec![0.1, 0.1]).unwrap();
        let mut rr = 0;
        let _ = allocate(&model, AllocationPolicy::FirstFit, 3, &mut rr);
    }

    #[test]
    fn from_log_requires_involvements() {
        let log = Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap();
        let no_gpus = log.filtered(|r| !r.category().is_gpu());
        assert!(SlotRiskModel::from_log(&no_gpus).is_none());
        let m = SlotRiskModel::from_log(&log).unwrap();
        assert_eq!(m.slots(), 4);
        // Slot 0 and 3 carry higher measured rates (Fig. 5b).
        assert!(m.rate(GpuSlot::new(0)) > m.rate(GpuSlot::new(1)));
        assert!(m.rate(GpuSlot::new(3)) > m.rate(GpuSlot::new(2)));
    }
}
