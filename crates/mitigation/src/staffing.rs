//! Repair-crew staffing.
//!
//! The RQ5 summary warns that MTTR can be cut by "more staff devoted to
//! failure monitoring, but this comes at an increased operational cost".
//! With MTTR comparable to MTBF, repairs overlap (see
//! [`failscope::AvailabilityAnalysis`]); if only `k` repair crews exist,
//! overlapping failures *queue*, inflating the effective time to
//! recovery beyond the hands-on time. This module replays a measured log
//! through a `k`-crew queue and reports the inflation, giving operators
//! the staffing/TTR trade-off curve.

use failscope::{FleetIndex, LogView};
use failtypes::FailureLog;
use serde::{Deserialize, Serialize};

/// The outcome of replaying a log through a `k`-crew repair queue.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StaffingOutcome {
    /// Crews simulated.
    pub crews: u32,
    /// Mean hands-on repair time (the log's recorded MTTR).
    pub hands_on_mttr_hours: f64,
    /// Mean effective repair time including queueing for a crew.
    pub effective_mttr_hours: f64,
    /// Mean wait for a crew.
    pub mean_wait_hours: f64,
    /// Fraction of failures that had to wait.
    pub delayed_fraction: f64,
    /// Longest wait observed.
    pub max_wait_hours: f64,
}

impl StaffingOutcome {
    /// Effective-MTTR inflation factor over the hands-on MTTR
    /// (1.0 = crews never limit repairs).
    pub fn inflation(&self) -> f64 {
        self.effective_mttr_hours / self.hands_on_mttr_hours
    }
}

/// Replays the failures of any [`FleetIndex`] through `crews` parallel
/// repair crews in arrival order: each failure waits until a crew frees
/// up, then occupies it for the recorded TTR.
///
/// Returns `None` for an empty index or zero crews.
pub fn simulate_staffing_index<V: FleetIndex + ?Sized>(
    index: &V,
    crews: u32,
) -> Option<StaffingOutcome> {
    if index.is_empty() || crews == 0 {
        return None;
    }
    // Earliest-free-crew times; linear scan is fine for realistic crew
    // counts.
    let mut free_at = vec![0.0f64; crews as usize];
    let mut total_wait = 0.0;
    let mut total_hands_on = 0.0;
    let mut delayed = 0usize;
    let mut max_wait = 0.0f64;
    for rec in index.records() {
        let arrival = rec.time().get();
        let service = rec.ttr().get();
        // Pick the crew that frees first.
        let (idx, &earliest) = free_at
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("times are finite"))
            .expect("at least one crew");
        let start = arrival.max(earliest);
        let wait = start - arrival;
        free_at[idx] = start + service;
        total_wait += wait;
        total_hands_on += service;
        if wait > 1e-9 {
            delayed += 1;
        }
        max_wait = max_wait.max(wait);
    }
    let n = index.len() as f64;
    Some(StaffingOutcome {
        crews,
        hands_on_mttr_hours: total_hands_on / n,
        effective_mttr_hours: (total_hands_on + total_wait) / n,
        mean_wait_hours: total_wait / n,
        delayed_fraction: delayed as f64 / n,
        max_wait_hours: max_wait,
    })
}

/// [`simulate_staffing_index`], indexing the log once.
pub fn simulate_staffing(log: &FailureLog, crews: u32) -> Option<StaffingOutcome> {
    simulate_staffing_index(&LogView::new(log), crews)
}

/// Smallest crew count whose effective-MTTR inflation stays at or below
/// `max_inflation` (e.g. `1.05` for at most 5% queueing overhead).
///
/// Returns `None` for an empty index, or if even `crew_cap` crews cannot
/// meet the target.
///
/// # Panics
///
/// Panics if `max_inflation < 1` or `crew_cap == 0`.
pub fn required_crews_index<V: FleetIndex + ?Sized>(
    index: &V,
    max_inflation: f64,
    crew_cap: u32,
) -> Option<u32> {
    assert!(max_inflation >= 1.0, "inflation target below 1 is impossible");
    assert!(crew_cap > 0, "crew cap must be positive");
    for crews in 1..=crew_cap {
        let outcome = simulate_staffing_index(index, crews)?;
        if outcome.inflation() <= max_inflation {
            return Some(crews);
        }
    }
    None
}

/// [`required_crews_index`], indexing the log once.
///
/// # Panics
///
/// Panics if `max_inflation < 1` or `crew_cap == 0`.
pub fn required_crews(log: &FailureLog, max_inflation: f64, crew_cap: u32) -> Option<u32> {
    required_crews_index(&LogView::new(log), max_inflation, crew_cap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use failsim::{Simulator, SystemModel};
    use failtypes::{
        Category, Date, FailureRecord, Generation, Hours, NodeId, ObservationWindow, T3Category,
    };

    fn tiny_log(records: Vec<(f64, f64)>) -> FailureLog {
        let window = ObservationWindow::new(
            Date::new(2020, 1, 1).unwrap(),
            Date::new(2020, 12, 31).unwrap(),
        )
        .unwrap();
        let recs = records
            .into_iter()
            .enumerate()
            .map(|(i, (t, ttr))| {
                FailureRecord::new(
                    i as u32,
                    Hours::new(t),
                    Hours::new(ttr),
                    Category::T3(T3Category::Gpu),
                    NodeId::new(i as u32 % 540),
                )
            })
            .collect();
        FailureLog::new(Generation::Tsubame3, window, recs).unwrap()
    }

    #[test]
    fn single_crew_queues_overlapping_repairs() {
        // Three failures at t=0,1,2, each taking 10 h, one crew.
        let log = tiny_log(vec![(0.0, 10.0), (1.0, 10.0), (2.0, 10.0)]);
        let out = simulate_staffing(&log, 1).unwrap();
        // Waits: 0, 9, 18 → mean 9.
        assert!((out.mean_wait_hours - 9.0).abs() < 1e-9);
        assert!((out.max_wait_hours - 18.0).abs() < 1e-9);
        assert!((out.delayed_fraction - 2.0 / 3.0).abs() < 1e-9);
        assert!((out.hands_on_mttr_hours - 10.0).abs() < 1e-9);
        assert!((out.effective_mttr_hours - 19.0).abs() < 1e-9);
        assert!((out.inflation() - 1.9).abs() < 1e-9);
    }

    #[test]
    fn enough_crews_eliminate_waiting() {
        let log = tiny_log(vec![(0.0, 10.0), (1.0, 10.0), (2.0, 10.0)]);
        let out = simulate_staffing(&log, 3).unwrap();
        assert_eq!(out.mean_wait_hours, 0.0);
        assert_eq!(out.delayed_fraction, 0.0);
        assert!((out.inflation() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn required_crews_finds_the_knee() {
        let log = tiny_log(vec![(0.0, 10.0), (1.0, 10.0), (2.0, 10.0)]);
        assert_eq!(required_crews(&log, 1.0, 5), Some(3));
        assert_eq!(required_crews(&log, 2.0, 5), Some(1));
        // Impossible target under the cap.
        let heavy = tiny_log((0..20).map(|i| (i as f64, 100.0)).collect());
        assert_eq!(required_crews(&heavy, 1.0, 1), None);
    }

    #[test]
    fn t2_needs_far_more_crews_than_t3() {
        // T2 averages ~3.6 concurrent repairs; T3 ~0.75. The staffing
        // knee reflects that.
        let t2 = Simulator::new(SystemModel::tsubame2(), 42).generate().unwrap();
        let t3 = Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap();
        let c2 = required_crews(&t2, 1.05, 30).unwrap();
        let c3 = required_crews(&t3, 1.05, 30).unwrap();
        assert!(c2 > c3, "T2 crews {c2} vs T3 crews {c3}");
        assert!(c2 >= 4, "T2 crews {c2}");
        assert!(c3 <= 4, "T3 crews {c3}");
    }

    #[test]
    fn inflation_decreases_monotonically_with_crews() {
        let log = Simulator::new(SystemModel::tsubame2(), 42).generate().unwrap();
        let mut prev = f64::INFINITY;
        for crews in 1..=8 {
            let out = simulate_staffing(&log, crews).unwrap();
            assert!(out.inflation() <= prev + 1e-9, "crews {crews}");
            prev = out.inflation();
        }
    }

    #[test]
    fn degenerate_inputs() {
        let log = tiny_log(vec![(0.0, 1.0)]);
        assert!(simulate_staffing(&log, 0).is_none());
        let empty = log.filtered(|_| false);
        assert!(simulate_staffing(&empty, 2).is_none());
        assert!(required_crews(&empty, 1.1, 5).is_none());
    }

    #[test]
    #[should_panic(expected = "impossible")]
    fn rejects_sub_one_inflation() {
        let log = tiny_log(vec![(0.0, 1.0)]);
        let _ = required_crews(&log, 0.9, 5);
    }
}
