//! Weighted discrete sampling via Walker's alias method.
//!
//! The simulator draws a failure category for every event; the alias method
//! makes that an O(1) operation regardless of how many categories a system
//! reports.

use rand::Rng;

/// A discrete distribution over `0..n` with arbitrary non-negative
/// weights, sampled in O(1) via Walker's alias tables.
///
/// # Examples
///
/// ```
/// use failstats::Categorical;
/// use rand::SeedableRng;
///
/// let d = Categorical::new(&[1.0, 0.0, 3.0]).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(9);
/// let idx = d.sample(&mut rng);
/// assert!(idx == 0 || idx == 2); // index 1 has zero weight
/// assert!((d.prob(2) - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Categorical {
    prob: Vec<f64>,
    // Alias tables.
    accept: Vec<f64>,
    alias: Vec<usize>,
}

impl Categorical {
    /// Builds the alias tables from non-negative weights.
    ///
    /// Returns `None` when `weights` is empty, contains a negative or
    /// non-finite value, or sums to zero.
    pub fn new(weights: &[f64]) -> Option<Self> {
        if weights.is_empty() {
            return None;
        }
        if weights.iter().any(|&w| w < 0.0 || !w.is_finite()) {
            return None;
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return None;
        }
        let n = weights.len();
        let prob: Vec<f64> = weights.iter().map(|w| w / total).collect();

        // Walker's alias construction with small/large worklists.
        let mut scaled: Vec<f64> = prob.iter().map(|p| p * n as f64).collect();
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        let mut accept = vec![1.0; n];
        let mut alias: Vec<usize> = (0..n).collect();
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            accept[s] = scaled[s];
            alias[s] = l;
            scaled[l] -= 1.0 - scaled[s];
            if scaled[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Leftovers (numerical residue) accept with probability 1.
        for &i in small.iter().chain(large.iter()) {
            accept[i] = 1.0;
            alias[i] = i;
        }
        Some(Categorical {
            prob,
            accept,
            alias,
        })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Returns `true` when there are no categories (never, by
    /// construction; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Normalized probability of category `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn prob(&self, i: usize) -> f64 {
        self.prob[i]
    }

    /// All normalized probabilities.
    pub fn probs(&self) -> &[f64] {
        &self.prob
    }

    /// Draws a category index.
    pub fn sample(&self, rng: &mut dyn rand::RngCore) -> usize {
        let n = self.prob.len();
        let i = (rng.gen::<f64>() * n as f64) as usize % n;
        if rng.gen::<f64>() < self.accept[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_weights() {
        assert!(Categorical::new(&[]).is_none());
        assert!(Categorical::new(&[0.0, 0.0]).is_none());
        assert!(Categorical::new(&[1.0, -1.0]).is_none());
        assert!(Categorical::new(&[1.0, f64::NAN]).is_none());
        assert!(Categorical::new(&[1.0, f64::INFINITY]).is_none());
    }

    #[test]
    fn normalizes_probabilities() {
        let d = Categorical::new(&[2.0, 6.0]).unwrap();
        assert!((d.prob(0) - 0.25).abs() < 1e-12);
        assert!((d.prob(1) - 0.75).abs() < 1e-12);
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
        assert_eq!(d.probs().len(), 2);
    }

    #[test]
    fn single_category_always_sampled() {
        let d = Categorical::new(&[5.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 0);
        }
    }

    #[test]
    fn zero_weight_categories_never_sampled() {
        let d = Categorical::new(&[1.0, 0.0, 1.0, 0.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let i = d.sample(&mut rng);
            assert!(i == 0 || i == 2, "sampled zero-weight index {i}");
        }
    }

    #[test]
    fn sampling_frequencies_match_weights() {
        let weights = [44.37, 1.78, 12.0, 8.0, 33.85];
        let d = Categorical::new(&weights).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 400_000;
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..n {
            counts[d.sample(&mut rng)] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expected = w / total;
            let observed = counts[i] as f64 / n as f64;
            assert!(
                (observed - expected).abs() < 0.005,
                "category {i}: observed {observed}, expected {expected}"
            );
        }
    }

    #[test]
    fn heavily_skewed_weights() {
        let d = Categorical::new(&[1e-6, 1.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| d.sample(&mut rng) == 0).count();
        // Expect about 0.0001% — allow a generous band around zero.
        assert!(hits < 20, "hits {hits}");
    }
}
