//! Special mathematical functions used by the distribution and fitting
//! machinery.
//!
//! Everything here is implemented from scratch (Lanczos log-gamma, the
//! series/continued-fraction regularized incomplete gamma, an Abramowitz &
//! Stegun style error function, the Acklam inverse normal CDF, and a
//! reflection-based digamma), with accuracy targets documented per function
//! and verified in the unit tests.

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation (g = 7, n = 9), accurate to roughly
/// 1e-13 relative error over the positive axis.
///
/// # Panics
///
/// Panics if `x <= 0` (the analyses only need the positive axis).
///
/// # Examples
///
/// ```
/// use failstats::special::ln_gamma;
/// // Γ(5) = 24
/// assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-12);
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7, n = 9 (published digits kept even
    // where they exceed f64 precision).
    const G: f64 = 7.0;
    #[allow(clippy::excessive_precision)]
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1-x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// The regularized lower incomplete gamma function `P(a, x)` for `a > 0`,
/// `x >= 0`.
///
/// `P(a, x) = γ(a, x) / Γ(a)` is the CDF of a Gamma(shape = a, scale = 1)
/// variable. Uses the power series for `x < a + 1` and the Lentz continued
/// fraction otherwise; absolute error below 1e-12.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0, got {a}");
    assert!(x >= 0.0, "gamma_p requires x >= 0, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// The regularized upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_q requires a > 0, got {a}");
    assert!(x >= 0.0, "gamma_q requires x >= 0, got {x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_q_cf(a: f64, x: f64) -> f64 {
    // Modified Lentz continued fraction for Q(a, x).
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Inverse of the regularized lower incomplete gamma: finds `x` with
/// `P(a, x) = p`.
///
/// Bisection on a bracketing interval; accurate to ~1e-10 relative.
///
/// # Panics
///
/// Panics if `a <= 0` or `p` is outside `[0, 1)`.
pub fn gamma_p_inv(a: f64, p: f64) -> f64 {
    assert!(a > 0.0, "gamma_p_inv requires a > 0, got {a}");
    assert!((0.0..1.0).contains(&p), "gamma_p_inv requires p in [0,1), got {p}");
    if p == 0.0 {
        return 0.0;
    }
    // Bracket the root: gamma mean is a, expand upward until P exceeds p.
    let mut hi = a.max(1.0);
    while gamma_p(a, hi) < p {
        hi *= 2.0;
        if hi > 1e300 {
            return hi;
        }
    }
    let mut lo = 0.0;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if gamma_p(a, mid) < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if (hi - lo) < 1e-12 * hi.max(1.0) {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// The error function `erf(x)`, accurate to about 1.5e-7 absolute.
///
/// Uses the Abramowitz & Stegun 7.1.26 rational approximation with the odd
/// symmetry `erf(-x) = -erf(x)`.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f64 = 0.254_829_592;
    const A2: f64 = -0.284_496_736;
    const A3: f64 = 1.421_413_741;
    const A4: f64 = -1.453_152_027;
    const A5: f64 = 1.061_405_429;
    const P: f64 = 0.327_591_1;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// The complementary error function `erfc(x) = 1 - erf(x)`.
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

/// Standard normal cumulative distribution function `Φ(z)`.
///
/// ```
/// use failstats::special::std_normal_cdf;
/// assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-9);
/// assert!((std_normal_cdf(1.96) - 0.975).abs() < 1e-3);
/// ```
pub fn std_normal_cdf(z: f64) -> f64 {
    0.5 * erfc(-z / std::f64::consts::SQRT_2)
}

/// Inverse standard normal CDF (the probit function), via Acklam's
/// algorithm; relative error below 1.15e-9 across `(0, 1)`.
///
/// # Panics
///
/// Panics if `p` is outside the open interval `(0, 1)`.
pub fn std_normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "std_normal_quantile requires p in (0,1), got {p}"
    );
    // Coefficients for Acklam's rational approximations (published digits
    // kept verbatim).
    #[allow(clippy::excessive_precision)]
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_690e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley refinement step brings the error near machine precision.
    let e = std_normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// The digamma function `ψ(x) = d/dx ln Γ(x)` for `x > 0`.
///
/// Recurrence to push the argument above 6, then the asymptotic series;
/// absolute error below 1e-10.
///
/// # Panics
///
/// Panics if `x <= 0`.
pub fn digamma(x: f64) -> f64 {
    assert!(x > 0.0, "digamma requires x > 0, got {x}");
    let mut x = x;
    let mut result = 0.0;
    while x < 9.0 {
        result -= 1.0 / x;
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result + x.ln() - 0.5 * inv
        - inv2
            * (1.0 / 12.0
                - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 * (1.0 / 240.0))))
}

/// The trigamma function `ψ'(x)` for `x > 0` (used by Newton steps in the
/// gamma MLE fitter).
///
/// # Panics
///
/// Panics if `x <= 0`.
pub fn trigamma(x: f64) -> f64 {
    assert!(x > 0.0, "trigamma requires x > 0, got {x}");
    let mut x = x;
    let mut result = 0.0;
    while x < 9.0 {
        result += 1.0 / (x * x);
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result
        + inv * (1.0 + 0.5 * inv + inv2 * (1.0 / 6.0 - inv2 * (1.0 / 30.0 - inv2 * (1.0 / 42.0))))
}

/// Kolmogorov distribution survival function
/// `Q(λ) = 2 Σ_{k≥1} (-1)^{k-1} exp(-2 k² λ²)`, the asymptotic p-value of
/// the KS statistic.
///
/// Returns a value clamped to `[0, 1]`.
pub fn kolmogorov_q(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64) * (k as f64) * lambda * lambda).exp();
        sum += sign * term;
        if term < 1e-16 {
            break;
        }
        sign = -sign;
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * b.abs().max(1.0)
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let facts: [f64; 8] = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0, 5040.0];
        for (i, &f) in facts.iter().enumerate() {
            let x = (i + 1) as f64;
            assert!(
                close(ln_gamma(x), f.ln(), 1e-12),
                "ln_gamma({x}) = {} want {}",
                ln_gamma(x),
                f.ln()
            );
        }
    }

    #[test]
    fn ln_gamma_half_integers() {
        // Γ(1/2) = sqrt(π), Γ(3/2) = sqrt(π)/2.
        let sqrt_pi = std::f64::consts::PI.sqrt();
        assert!(close(ln_gamma(0.5), sqrt_pi.ln(), 1e-10));
        assert!(close(ln_gamma(1.5), (sqrt_pi / 2.0).ln(), 1e-10));
        assert!(close(ln_gamma(2.5), (3.0 * sqrt_pi / 4.0).ln(), 1e-10));
    }

    #[test]
    #[should_panic(expected = "requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }

    #[test]
    fn gamma_p_known_values() {
        // P(1, x) = 1 - e^-x (exponential CDF).
        for &x in &[0.1, 0.5, 1.0, 2.0, 5.0, 10.0] {
            assert!(
                close(gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-12),
                "P(1,{x})"
            );
        }
        // P(a, 0) = 0.
        assert_eq!(gamma_p(3.0, 0.0), 0.0);
        // Median of Gamma(shape=2, scale=1) is about 1.67835.
        assert!((gamma_p(2.0, 1.678_346_99) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn gamma_p_q_complement() {
        for &a in &[0.3, 1.0, 2.5, 10.0, 50.0] {
            for &x in &[0.01, 0.5, 1.0, 3.0, 10.0, 60.0] {
                let s = gamma_p(a, x) + gamma_q(a, x);
                assert!((s - 1.0).abs() < 1e-10, "P+Q != 1 at a={a}, x={x}: {s}");
            }
        }
    }

    #[test]
    fn gamma_p_inv_inverts() {
        for &a in &[0.5, 1.0, 2.0, 7.5] {
            for &p in &[0.01, 0.25, 0.5, 0.75, 0.99] {
                let x = gamma_p_inv(a, p);
                assert!(
                    (gamma_p(a, x) - p).abs() < 1e-8,
                    "a={a} p={p} x={x} P={}",
                    gamma_p(a, x)
                );
            }
        }
        assert_eq!(gamma_p_inv(2.0, 0.0), 0.0);
    }

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-8);
        assert!((erf(1.0) - 0.842_700_792_949_715).abs() < 2e-7);
        assert!((erf(-1.0) + 0.842_700_792_949_715).abs() < 2e-7);
        assert!((erf(2.0) - 0.995_322_265_018_953).abs() < 2e-7);
        assert!((erfc(0.0) - 1.0).abs() < 1e-8);
    }

    #[test]
    fn normal_cdf_symmetry_and_tails() {
        assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-9);
        for &z in &[0.5, 1.0, 1.644_853_6, 2.326_347_9] {
            let s = std_normal_cdf(z) + std_normal_cdf(-z);
            assert!((s - 1.0).abs() < 1e-7, "symmetry at {z}");
        }
        assert!((std_normal_cdf(1.644_853_6) - 0.95).abs() < 1e-4);
    }

    #[test]
    fn normal_quantile_inverts_cdf() {
        for &p in &[0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let z = std_normal_quantile(p);
            assert!(
                (std_normal_cdf(z) - p).abs() < 1e-6,
                "p={p}, z={z}, cdf={}",
                std_normal_cdf(z)
            );
        }
        assert!(std_normal_quantile(0.5).abs() < 1e-8);
    }

    #[test]
    #[should_panic(expected = "requires p in (0,1)")]
    fn normal_quantile_rejects_bounds() {
        std_normal_quantile(1.0);
    }

    #[test]
    fn digamma_known_values() {
        // ψ(1) = -γ (Euler-Mascheroni).
        const EULER: f64 = 0.577_215_664_901_532_9;
        assert!((digamma(1.0) + EULER).abs() < 1e-10);
        // ψ(2) = 1 - γ.
        assert!((digamma(2.0) - (1.0 - EULER)).abs() < 1e-10);
        // ψ(0.5) = -γ - 2 ln 2.
        assert!((digamma(0.5) + EULER + 2.0 * 2.0f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn trigamma_known_values() {
        // ψ'(1) = π²/6.
        let pi2_6 = std::f64::consts::PI.powi(2) / 6.0;
        assert!((trigamma(1.0) - pi2_6).abs() < 1e-9);
        // ψ'(2) = π²/6 - 1.
        assert!((trigamma(2.0) - (pi2_6 - 1.0)).abs() < 1e-9);
        // Numerically consistent with digamma derivative.
        let h = 1e-5;
        for &x in &[0.7, 1.3, 3.0, 8.0] {
            let numeric = (digamma(x + h) - digamma(x - h)) / (2.0 * h);
            assert!(
                (trigamma(x) - numeric).abs() < 1e-5,
                "trigamma({x}) = {} vs numeric {numeric}",
                trigamma(x)
            );
        }
    }

    #[test]
    fn kolmogorov_q_behaviour() {
        assert_eq!(kolmogorov_q(0.0), 1.0);
        assert_eq!(kolmogorov_q(-1.0), 1.0);
        // Q is decreasing.
        let mut prev = 1.0;
        for i in 1..40 {
            let q = kolmogorov_q(i as f64 * 0.1);
            assert!(q <= prev + 1e-12);
            prev = q;
        }
        // Known point: Q(1.358) ≈ 0.05 (the 5% critical value).
        assert!((kolmogorov_q(1.358) - 0.05).abs() < 2e-3);
        assert!(kolmogorov_q(4.0) < 1e-12);
    }
}
