//! Empirical cumulative distribution functions.
//!
//! The paper's headline plots (Figs. 6 and 9) are CDFs of time between
//! failures and time to recovery; [`Ecdf`] is the structure that backs
//! them.

use serde::{Deserialize, Serialize};

use crate::desc::quantile_sorted;

/// An empirical CDF over a sample.
///
/// # Examples
///
/// ```
/// use failstats::Ecdf;
///
/// let e = Ecdf::new(vec![1.0, 2.0, 2.0, 10.0]).unwrap();
/// assert_eq!(e.eval(0.5), 0.0);
/// assert_eq!(e.eval(2.0), 0.75);
/// assert_eq!(e.eval(100.0), 1.0);
/// assert_eq!(e.quantile(0.5), 2.0);
/// assert_eq!(e.quantile(0.75), 4.0); // type-7 interpolation toward the tail
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF, sorting the sample.
    ///
    /// Returns `None` when the sample is empty or contains NaN.
    pub fn new(mut sample: Vec<f64>) -> Option<Self> {
        if sample.is_empty() || sample.iter().any(|x| x.is_nan()) {
            return None;
        }
        sample.sort_by(|a, b| a.partial_cmp(b).expect("NaN excluded above"));
        Some(Ecdf { sorted: sample })
    }

    /// Builds an ECDF from a sample that is already sorted ascending,
    /// skipping the `O(n log n)` sort of [`Ecdf::new`] — the fast path
    /// for pre-indexed log views.
    ///
    /// Returns `None` when the sample is empty, contains NaN, or is not
    /// actually nondecreasing (so a bad caller degrades to `None`, never
    /// to a silently wrong CDF).
    pub fn from_sorted(sample: Vec<f64>) -> Option<Self> {
        if sample.is_empty() || sample.iter().any(|x| x.is_nan()) {
            return None;
        }
        if sample.windows(2).any(|w| w[0] > w[1]) {
            return None;
        }
        Some(Ecdf { sorted: sample })
    }

    /// Number of observations.
    pub fn n(&self) -> usize {
        self.sorted.len()
    }

    /// Evaluates `F(x) = #(observations <= x) / n`.
    pub fn eval(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Empirical quantile (type-7 interpolation), `p` in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        quantile_sorted(&self.sorted, p).expect("ECDF is never empty")
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Smallest observation.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        self.sorted[self.sorted.len() - 1]
    }

    /// The sorted sample underlying the ECDF.
    pub fn sorted_sample(&self) -> &[f64] {
        &self.sorted
    }

    /// Returns `(x, F(x))` step points suitable for plotting the CDF curve:
    /// one point per observation, using the right-continuous convention.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, (i + 1) as f64 / n))
            .collect()
    }

    /// Samples the CDF on an evenly spaced grid of `resolution` points from
    /// min to max — the form the figure harness prints for CDF plots.
    ///
    /// # Panics
    ///
    /// Panics if `resolution < 2`.
    pub fn curve(&self, resolution: usize) -> Vec<(f64, f64)> {
        assert!(resolution >= 2, "curve needs at least two points");
        let (lo, hi) = (self.min(), self.max());
        let step = (hi - lo) / (resolution - 1) as f64;
        (0..resolution)
            .map(|i| {
                let x = lo + step * i as f64;
                (x, self.eval(x))
            })
            .collect()
    }

    /// Dvoretzky–Kiefer–Wolfowitz confidence band half-width: with
    /// probability at least `level`, the true CDF lies within `±ε` of
    /// this ECDF everywhere, `ε = sqrt(ln(2/α) / (2n))`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is outside `(0, 1)`.
    ///
    /// ```
    /// use failstats::Ecdf;
    /// let e = Ecdf::new((1..=200).map(f64::from).collect()).unwrap();
    /// let eps = e.dkw_band(0.95);
    /// assert!(eps > 0.0 && eps < 0.12);
    /// ```
    pub fn dkw_band(&self, level: f64) -> f64 {
        assert!(
            level > 0.0 && level < 1.0,
            "confidence level must be in (0,1)"
        );
        let alpha = 1.0 - level;
        ((2.0 / alpha).ln() / (2.0 * self.sorted.len() as f64)).sqrt()
    }

    /// Kolmogorov–Smirnov distance to another ECDF (two-sample statistic).
    pub fn ks_distance(&self, other: &Ecdf) -> f64 {
        let mut d: f64 = 0.0;
        for &x in &self.sorted {
            d = d.max((self.eval(x) - other.eval(x)).abs());
        }
        for &x in &other.sorted {
            d = d.max((self.eval(x) - other.eval(x)).abs());
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_and_nan() {
        assert!(Ecdf::new(vec![]).is_none());
        assert!(Ecdf::new(vec![1.0, f64::NAN]).is_none());
    }

    #[test]
    fn from_sorted_matches_new() {
        let sample = vec![9.0, 1.0, 4.0, 4.0, 2.5];
        let via_new = Ecdf::new(sample.clone()).unwrap();
        let mut sorted = sample;
        sorted.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        let via_sorted = Ecdf::from_sorted(sorted).unwrap();
        assert_eq!(via_new, via_sorted);
    }

    #[test]
    fn from_sorted_rejects_bad_input() {
        assert!(Ecdf::from_sorted(vec![]).is_none());
        assert!(Ecdf::from_sorted(vec![1.0, f64::NAN]).is_none());
        assert!(Ecdf::from_sorted(vec![2.0, 1.0]).is_none());
    }

    #[test]
    fn eval_is_right_continuous_step() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(e.eval(0.99), 0.0);
        assert!((e.eval(1.0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((e.eval(1.5) - 1.0 / 3.0).abs() < 1e-12);
        assert!((e.eval(2.0) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(e.eval(3.0), 1.0);
    }

    #[test]
    fn handles_duplicates() {
        let e = Ecdf::new(vec![5.0, 5.0, 5.0, 6.0]).unwrap();
        assert_eq!(e.eval(5.0), 0.75);
        assert_eq!(e.eval(4.9), 0.0);
        assert_eq!(e.n(), 4);
    }

    #[test]
    fn quantile_and_moments() {
        let e = Ecdf::new(vec![4.0, 1.0, 3.0, 2.0]).unwrap();
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(1.0), 4.0);
        assert_eq!(e.quantile(0.5), 2.5);
        assert_eq!(e.mean(), 2.5);
        assert_eq!(e.min(), 1.0);
        assert_eq!(e.max(), 4.0);
        assert_eq!(e.sorted_sample(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn points_are_monotone() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0, 2.0]).unwrap();
        let pts = e.points();
        assert_eq!(pts.len(), 4);
        assert_eq!(pts.last().unwrap().1, 1.0);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn curve_spans_range() {
        let e = Ecdf::new(vec![0.0, 10.0]).unwrap();
        let c = e.curve(11);
        assert_eq!(c.len(), 11);
        assert_eq!(c[0].0, 0.0);
        assert_eq!(c[10].0, 10.0);
        assert_eq!(c[10].1, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn curve_rejects_tiny_resolution() {
        let e = Ecdf::new(vec![1.0]).unwrap();
        let _ = e.curve(1);
    }

    #[test]
    fn dkw_band_shrinks_with_n_and_grows_with_level() {
        let small = Ecdf::new((1..=20).map(f64::from).collect()).unwrap();
        let large = Ecdf::new((1..=2000).map(f64::from).collect()).unwrap();
        assert!(large.dkw_band(0.95) < small.dkw_band(0.95));
        assert!(small.dkw_band(0.99) > small.dkw_band(0.90));
        // Known value: n = 200, 95% -> sqrt(ln(40)/400) ~ 0.0961.
        let e = Ecdf::new((1..=200).map(f64::from).collect()).unwrap();
        assert!((e.dkw_band(0.95) - 0.0961).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "confidence level")]
    fn dkw_band_rejects_bad_level() {
        let e = Ecdf::new(vec![1.0]).unwrap();
        let _ = e.dkw_band(1.0);
    }

    #[test]
    fn ks_distance_identical_is_zero() {
        let a = Ecdf::new(vec![1.0, 2.0, 3.0]).unwrap();
        let b = Ecdf::new(vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(a.ks_distance(&b), 0.0);
    }

    #[test]
    fn ks_distance_disjoint_is_one() {
        let a = Ecdf::new(vec![1.0, 2.0]).unwrap();
        let b = Ecdf::new(vec![10.0, 20.0]).unwrap();
        assert_eq!(a.ks_distance(&b), 1.0);
        assert_eq!(b.ks_distance(&a), 1.0);
    }
}
