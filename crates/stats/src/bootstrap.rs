//! Percentile-bootstrap confidence intervals, with an optional
//! crossbeam-parallel driver for large resample counts.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A two-sided percentile-bootstrap confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Point estimate (the statistic on the original sample).
    pub estimate: f64,
    /// Lower bound.
    pub lower: f64,
    /// Upper bound.
    pub upper: f64,
    /// Confidence level, e.g. `0.95`.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Returns `true` when the interval contains `x`.
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lower && x <= self.upper
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }
}

fn resample_stats<F>(data: &[f64], stat: &F, resamples: usize, seed: u64) -> Vec<f64>
where
    F: Fn(&[f64]) -> f64,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let mut buf = vec![0.0; data.len()];
    (0..resamples)
        .map(|_| {
            for slot in buf.iter_mut() {
                *slot = data[rng.gen_range(0..data.len())];
            }
            stat(&buf)
        })
        .collect()
}

/// Percentile-bootstrap CI of an arbitrary statistic.
///
/// Deterministic for a fixed `seed`. Returns `None` for an empty sample or
/// a `level` outside `(0, 1)`.
///
/// # Examples
///
/// ```
/// use failstats::bootstrap_ci;
///
/// let data: Vec<f64> = (1..=100).map(|i| i as f64).collect();
/// let ci = bootstrap_ci(&data, |d| d.iter().sum::<f64>() / d.len() as f64,
///                       500, 0.95, 42).unwrap();
/// assert!(ci.contains(50.5));
/// assert!(ci.width() < 15.0);
/// ```
pub fn bootstrap_ci<F>(
    data: &[f64],
    stat: F,
    resamples: usize,
    level: f64,
    seed: u64,
) -> Option<ConfidenceInterval>
where
    F: Fn(&[f64]) -> f64,
{
    if data.is_empty() || !(level > 0.0 && level < 1.0) || resamples == 0 {
        return None;
    }
    let mut stats = resample_stats(data, &stat, resamples, seed);
    stats.sort_by(|a, b| a.partial_cmp(b).expect("bootstrap statistics must be comparable"));
    let alpha = (1.0 - level) / 2.0;
    Some(ConfidenceInterval {
        estimate: stat(data),
        lower: crate::desc::quantile_sorted(&stats, alpha)?,
        upper: crate::desc::quantile_sorted(&stats, 1.0 - alpha)?,
        level,
    })
}

/// Parallel percentile-bootstrap CI: splits the resamples over `threads`
/// crossbeam scoped workers, each with an independent seed stream.
///
/// Produces the same kind of interval as [`bootstrap_ci`] (not bit-identical
/// to the serial version, but deterministic for fixed `seed` and
/// `threads`).
///
/// Returns `None` under the same conditions as [`bootstrap_ci`], or when
/// `threads == 0`.
pub fn bootstrap_ci_parallel<F>(
    data: &[f64],
    stat: F,
    resamples: usize,
    level: f64,
    seed: u64,
    threads: usize,
) -> Option<ConfidenceInterval>
where
    F: Fn(&[f64]) -> f64 + Sync,
{
    if data.is_empty() || !(level > 0.0 && level < 1.0) || resamples == 0 || threads == 0 {
        return None;
    }
    let per_thread = resamples.div_ceil(threads);
    let chunks: Vec<Vec<f64>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let stat = &stat;
                let count = per_thread.min(resamples.saturating_sub(t * per_thread));
                scope.spawn(move |_| {
                    resample_stats(data, stat, count, seed.wrapping_add(t as u64 * 0x9E37_79B9))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("bootstrap worker panicked"))
            .collect()
    })
    .expect("crossbeam scope failed");

    let mut stats: Vec<f64> = chunks.into_iter().flatten().collect();
    if stats.is_empty() {
        return None;
    }
    stats.sort_by(|a, b| a.partial_cmp(b).expect("bootstrap statistics must be comparable"));
    let alpha = (1.0 - level) / 2.0;
    Some(ConfidenceInterval {
        estimate: stat(data),
        lower: crate::desc::quantile_sorted(&stats, alpha)?,
        upper: crate::desc::quantile_sorted(&stats, 1.0 - alpha)?,
        level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_stat(d: &[f64]) -> f64 {
        d.iter().sum::<f64>() / d.len() as f64
    }

    #[test]
    fn ci_covers_true_mean() {
        let data: Vec<f64> = (0..500).map(|i| (i % 10) as f64).collect();
        let ci = bootstrap_ci(&data, mean_stat, 1000, 0.95, 7).unwrap();
        assert!(ci.contains(4.5), "{ci:?}");
        assert!((ci.estimate - 4.5).abs() < 1e-9);
        assert!(ci.lower <= ci.upper);
        assert_eq!(ci.level, 0.95);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let a = bootstrap_ci(&data, mean_stat, 200, 0.9, 1).unwrap();
        let b = bootstrap_ci(&data, mean_stat, 200, 0.9, 1).unwrap();
        assert_eq!(a, b);
        let c = bootstrap_ci(&data, mean_stat, 200, 0.9, 2).unwrap();
        assert_ne!(a.lower, c.lower);
    }

    #[test]
    fn degenerate_inputs_are_none() {
        assert!(bootstrap_ci(&[], mean_stat, 100, 0.95, 1).is_none());
        assert!(bootstrap_ci(&[1.0], mean_stat, 0, 0.95, 1).is_none());
        assert!(bootstrap_ci(&[1.0], mean_stat, 100, 0.0, 1).is_none());
        assert!(bootstrap_ci(&[1.0], mean_stat, 100, 1.0, 1).is_none());
        assert!(bootstrap_ci_parallel(&[1.0], mean_stat, 100, 0.95, 1, 0).is_none());
        assert!(bootstrap_ci_parallel(&[], mean_stat, 100, 0.95, 1, 2).is_none());
    }

    #[test]
    fn wider_level_gives_wider_interval() {
        let data: Vec<f64> = (0..200).map(|i| (i as f64).sin() * 10.0 + 50.0).collect();
        let narrow = bootstrap_ci(&data, mean_stat, 800, 0.5, 3).unwrap();
        let wide = bootstrap_ci(&data, mean_stat, 800, 0.99, 3).unwrap();
        assert!(wide.width() > narrow.width());
    }

    #[test]
    fn parallel_matches_serial_shape() {
        let data: Vec<f64> = (0..400).map(|i| (i % 37) as f64).collect();
        let serial = bootstrap_ci(&data, mean_stat, 2000, 0.95, 5).unwrap();
        let parallel = bootstrap_ci_parallel(&data, mean_stat, 2000, 0.95, 5, 4).unwrap();
        assert!((serial.estimate - parallel.estimate).abs() < 1e-12);
        // Intervals agree to bootstrap noise.
        assert!((serial.lower - parallel.lower).abs() < 1.0);
        assert!((serial.upper - parallel.upper).abs() < 1.0);
        assert!(parallel.contains(parallel.estimate));
    }

    #[test]
    fn parallel_is_deterministic() {
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let a = bootstrap_ci_parallel(&data, mean_stat, 500, 0.95, 9, 3).unwrap();
        let b = bootstrap_ci_parallel(&data, mean_stat, 500, 0.95, 9, 3).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn median_statistic_works() {
        let data: Vec<f64> = (0..301).map(|i| i as f64).collect();
        let ci = bootstrap_ci(
            &data,
            |d| crate::desc::median(d).unwrap(),
            500,
            0.95,
            11,
        )
        .unwrap();
        assert!(ci.contains(150.0));
    }
}
