//! Survival analysis: the Kaplan–Meier estimator and derived summaries.
//!
//! Field studies of GPU fleets (e.g. the Titan GPU-lifetimes study the
//! paper cites) characterize component reliability with survival curves
//! over possibly right-censored lifetimes; `failscope` uses this module
//! for node/GPU lifetime analyses.

use serde::{Deserialize, Serialize};

/// One observed lifetime: the duration and whether the event (failure)
/// was observed or the observation was censored (still alive at the end
/// of the window).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Lifetime {
    /// Observed duration.
    pub duration: f64,
    /// `true` when the failure was observed; `false` when censored.
    pub observed: bool,
}

impl Lifetime {
    /// An observed (uncensored) failure at `duration`.
    pub const fn observed(duration: f64) -> Self {
        Lifetime {
            duration,
            observed: true,
        }
    }

    /// A right-censored observation at `duration`.
    pub const fn censored(duration: f64) -> Self {
        Lifetime {
            duration,
            observed: false,
        }
    }
}

/// A step of the Kaplan–Meier survival curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SurvivalStep {
    /// Event time.
    pub time: f64,
    /// Survival probability `S(t)` just after this time.
    pub survival: f64,
    /// Subjects at risk just before this time.
    pub at_risk: usize,
    /// Events (failures) at this time.
    pub events: usize,
}

/// The Kaplan–Meier product-limit estimator.
///
/// # Examples
///
/// ```
/// use failstats::{KaplanMeier, Lifetime};
///
/// let km = KaplanMeier::fit(&[
///     Lifetime::observed(2.0),
///     Lifetime::observed(4.0),
///     Lifetime::censored(5.0),
///     Lifetime::observed(8.0),
/// ]).unwrap();
/// assert!((km.survival_at(3.0) - 0.75).abs() < 1e-12);
/// assert!(km.survival_at(9.0) < 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KaplanMeier {
    steps: Vec<SurvivalStep>,
    n: usize,
}

impl KaplanMeier {
    /// Fits the estimator.
    ///
    /// Returns `None` for an empty sample or any negative/non-finite
    /// duration.
    pub fn fit(lifetimes: &[Lifetime]) -> Option<Self> {
        if lifetimes.is_empty()
            || lifetimes
                .iter()
                .any(|l| l.duration < 0.0 || !l.duration.is_finite())
        {
            return None;
        }
        let mut sorted = lifetimes.to_vec();
        sorted.sort_by(|a, b| a.duration.partial_cmp(&b.duration).expect("finite"));
        let n = sorted.len();
        let mut steps = Vec::new();
        let mut survival = 1.0;
        let mut i = 0;
        while i < n {
            let t = sorted[i].duration;
            let at_risk = n - i;
            let mut events = 0;
            // Consume all observations at this exact time.
            let mut j = i;
            while j < n && sorted[j].duration == t {
                if sorted[j].observed {
                    events += 1;
                }
                j += 1;
            }
            if events > 0 {
                survival *= 1.0 - events as f64 / at_risk as f64;
                steps.push(SurvivalStep {
                    time: t,
                    survival,
                    at_risk,
                    events,
                });
            }
            i = j;
        }
        Some(KaplanMeier { steps, n })
    }

    /// The survival curve steps (only event times appear).
    pub fn steps(&self) -> &[SurvivalStep] {
        &self.steps
    }

    /// Number of subjects.
    pub const fn n(&self) -> usize {
        self.n
    }

    /// `S(t)`: the probability of surviving beyond `t`.
    pub fn survival_at(&self, t: f64) -> f64 {
        let mut s = 1.0;
        for step in &self.steps {
            if step.time <= t {
                s = step.survival;
            } else {
                break;
            }
        }
        s
    }

    /// Median survival time: the first event time where `S(t)` drops to
    /// 0.5 or below. `None` when the curve never reaches 0.5 (heavy
    /// censoring).
    pub fn median_survival(&self) -> Option<f64> {
        self.steps
            .iter()
            .find(|s| s.survival <= 0.5)
            .map(|s| s.time)
    }

    /// Restricted mean survival time up to `horizon`: the area under the
    /// survival curve on `[0, horizon]`.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is not positive.
    pub fn restricted_mean(&self, horizon: f64) -> f64 {
        assert!(horizon > 0.0, "horizon must be positive");
        let mut area = 0.0;
        let mut prev_t = 0.0;
        let mut prev_s = 1.0;
        for step in &self.steps {
            if step.time >= horizon {
                break;
            }
            area += prev_s * (step.time - prev_t);
            prev_t = step.time;
            prev_s = step.survival;
        }
        area + prev_s * (horizon - prev_t)
    }
}

/// A step of the Nelson–Aalen cumulative-hazard curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HazardStep {
    /// Event time.
    pub time: f64,
    /// Cumulative hazard `H(t)` just after this time.
    pub cumulative_hazard: f64,
    /// Subjects at risk just before this time.
    pub at_risk: usize,
    /// Events at this time.
    pub events: usize,
}

/// The Nelson–Aalen cumulative-hazard estimator, the additive companion
/// of [`KaplanMeier`] (`S(t) ≈ exp(-H(t))`).
///
/// # Examples
///
/// ```
/// use failstats::{Lifetime, NelsonAalen};
///
/// let na = NelsonAalen::fit(&[
///     Lifetime::observed(2.0),
///     Lifetime::observed(4.0),
///     Lifetime::censored(5.0),
/// ]).unwrap();
/// // H(2) = 1/3; H(4) = 1/3 + 1/2.
/// assert!((na.cumulative_hazard_at(3.0) - 1.0 / 3.0).abs() < 1e-12);
/// assert!((na.cumulative_hazard_at(4.5) - (1.0 / 3.0 + 0.5)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NelsonAalen {
    steps: Vec<HazardStep>,
    n: usize,
}

impl NelsonAalen {
    /// Fits the estimator.
    ///
    /// Returns `None` for an empty sample or any negative/non-finite
    /// duration.
    pub fn fit(lifetimes: &[Lifetime]) -> Option<Self> {
        if lifetimes.is_empty()
            || lifetimes
                .iter()
                .any(|l| l.duration < 0.0 || !l.duration.is_finite())
        {
            return None;
        }
        let mut sorted = lifetimes.to_vec();
        sorted.sort_by(|a, b| a.duration.partial_cmp(&b.duration).expect("finite"));
        let n = sorted.len();
        let mut steps = Vec::new();
        let mut hazard = 0.0;
        let mut i = 0;
        while i < n {
            let t = sorted[i].duration;
            let at_risk = n - i;
            let mut events = 0;
            let mut j = i;
            while j < n && sorted[j].duration == t {
                if sorted[j].observed {
                    events += 1;
                }
                j += 1;
            }
            if events > 0 {
                hazard += events as f64 / at_risk as f64;
                steps.push(HazardStep {
                    time: t,
                    cumulative_hazard: hazard,
                    at_risk,
                    events,
                });
            }
            i = j;
        }
        Some(NelsonAalen { steps, n })
    }

    /// The cumulative-hazard steps (only event times appear).
    pub fn steps(&self) -> &[HazardStep] {
        &self.steps
    }

    /// Number of subjects.
    pub const fn n(&self) -> usize {
        self.n
    }

    /// `H(t)`: the cumulative hazard up to and including `t`.
    pub fn cumulative_hazard_at(&self, t: f64) -> f64 {
        let mut h = 0.0;
        for step in &self.steps {
            if step.time <= t {
                h = step.cumulative_hazard;
            } else {
                break;
            }
        }
        h
    }

    /// Average hazard rate over `(a, b]`:
    /// `(H(b) - H(a)) / (b - a)` — an empirical failure rate usable for
    /// piecewise-exponential models.
    ///
    /// # Panics
    ///
    /// Panics if `b <= a`.
    pub fn mean_hazard_rate(&self, a: f64, b: f64) -> f64 {
        assert!(b > a, "interval must have positive length");
        (self.cumulative_hazard_at(b) - self.cumulative_hazard_at(a)) / (b - a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{ContinuousDist, Exponential};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_input() {
        assert!(KaplanMeier::fit(&[]).is_none());
        assert!(KaplanMeier::fit(&[Lifetime::observed(-1.0)]).is_none());
        assert!(KaplanMeier::fit(&[Lifetime::observed(f64::NAN)]).is_none());
    }

    #[test]
    fn no_censoring_matches_empirical_survival() {
        // Without censoring, KM is 1 - ECDF.
        let data = [1.0, 2.0, 3.0, 4.0];
        let km = KaplanMeier::fit(
            &data.map(Lifetime::observed),
        )
        .unwrap();
        assert!((km.survival_at(0.5) - 1.0).abs() < 1e-12);
        assert!((km.survival_at(1.0) - 0.75).abs() < 1e-12);
        assert!((km.survival_at(2.5) - 0.5).abs() < 1e-12);
        assert!((km.survival_at(4.0) - 0.0).abs() < 1e-12);
        assert_eq!(km.median_survival(), Some(2.0));
        assert_eq!(km.n(), 4);
    }

    #[test]
    fn censoring_keeps_curve_higher() {
        let observed = [2.0, 4.0, 6.0, 8.0].map(Lifetime::observed);
        let censored = [
            Lifetime::observed(2.0),
            Lifetime::censored(4.0),
            Lifetime::observed(6.0),
            Lifetime::censored(8.0),
        ];
        let km_obs = KaplanMeier::fit(&observed).unwrap();
        let km_cen = KaplanMeier::fit(&censored).unwrap();
        for &t in &[3.0, 5.0, 7.0] {
            assert!(km_cen.survival_at(t) >= km_obs.survival_at(t));
        }
    }

    #[test]
    fn ties_are_handled() {
        let km = KaplanMeier::fit(&[
            Lifetime::observed(3.0),
            Lifetime::observed(3.0),
            Lifetime::observed(5.0),
            Lifetime::censored(3.0),
        ])
        .unwrap();
        // At t=3: 4 at risk, 2 events → S = 1/2.
        assert!((km.survival_at(3.0) - 0.5).abs() < 1e-12);
        assert_eq!(km.steps()[0].at_risk, 4);
        assert_eq!(km.steps()[0].events, 2);
    }

    #[test]
    fn heavily_censored_median_is_none() {
        let km = KaplanMeier::fit(&[
            Lifetime::observed(1.0),
            Lifetime::censored(10.0),
            Lifetime::censored(10.0),
            Lifetime::censored(10.0),
        ])
        .unwrap();
        assert!(km.survival_at(20.0) > 0.5);
        assert!(km.median_survival().is_none());
    }

    #[test]
    fn restricted_mean_of_exponential_sample() {
        // RMST over a long horizon approaches the exponential mean.
        let d = Exponential::with_mean(10.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let lifetimes: Vec<Lifetime> = (0..5000)
            .map(|_| Lifetime::observed(d.sample(&mut rng)))
            .collect();
        let km = KaplanMeier::fit(&lifetimes).unwrap();
        let rmst = km.restricted_mean(100.0);
        assert!((rmst - 10.0).abs() < 0.5, "rmst {rmst}");
        // Median of exponential = mean·ln2.
        let median = km.median_survival().unwrap();
        assert!((median - 10.0 * 2.0f64.ln()).abs() < 0.5, "median {median}");
    }

    #[test]
    fn restricted_mean_short_horizon() {
        let km = KaplanMeier::fit(&[Lifetime::observed(10.0)]).unwrap();
        // Everything survives past 5, so RMST(5) = 5.
        assert!((km.restricted_mean(5.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn restricted_mean_rejects_zero_horizon() {
        let km = KaplanMeier::fit(&[Lifetime::observed(1.0)]).unwrap();
        let _ = km.restricted_mean(0.0);
    }

    #[test]
    fn nelson_aalen_matches_km_exponentiation() {
        // For modest hazards, S(t) ≈ exp(-H(t)).
        let d = Exponential::with_mean(10.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let lifetimes: Vec<Lifetime> = (0..2000)
            .map(|_| Lifetime::observed(d.sample(&mut rng)))
            .collect();
        let km = KaplanMeier::fit(&lifetimes).unwrap();
        let na = NelsonAalen::fit(&lifetimes).unwrap();
        for &t in &[2.0, 5.0, 10.0, 20.0] {
            let s = km.survival_at(t);
            let h = na.cumulative_hazard_at(t);
            assert!(((-h).exp() - s).abs() < 0.02, "t = {t}: exp(-H) = {}, S = {s}", (-h).exp());
        }
    }

    #[test]
    fn nelson_aalen_constant_hazard_of_exponential() {
        // The exponential's hazard is flat at 1/mean.
        let d = Exponential::with_mean(10.0).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let lifetimes: Vec<Lifetime> = (0..20_000)
            .map(|_| Lifetime::observed(d.sample(&mut rng)))
            .collect();
        let na = NelsonAalen::fit(&lifetimes).unwrap();
        for (a, b) in [(0.0, 5.0), (5.0, 10.0), (10.0, 20.0)] {
            let rate = na.mean_hazard_rate(a, b);
            assert!((rate - 0.1).abs() < 0.01, "({a},{b}): rate {rate}");
        }
    }

    #[test]
    fn nelson_aalen_rejects_bad_input() {
        assert!(NelsonAalen::fit(&[]).is_none());
        assert!(NelsonAalen::fit(&[Lifetime::observed(-1.0)]).is_none());
        let na = NelsonAalen::fit(&[Lifetime::censored(5.0)]).unwrap();
        assert_eq!(na.cumulative_hazard_at(100.0), 0.0);
        assert_eq!(na.n(), 1);
        assert!(na.steps().is_empty());
    }

    #[test]
    #[should_panic(expected = "positive length")]
    fn mean_hazard_rejects_empty_interval() {
        let na = NelsonAalen::fit(&[Lifetime::observed(1.0)]).unwrap();
        let _ = na.mean_hazard_rate(5.0, 5.0);
    }
}
