//! Continuous probability distributions with densities, CDFs, quantiles,
//! moments, and samplers.
//!
//! These are the building blocks for both directions of the workspace: the
//! simulator *samples* from calibrated distributions, and the fitters in
//! [`crate::fit`] recover distribution parameters from observed data.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::special::{gamma_p, gamma_p_inv, ln_gamma, std_normal_cdf, std_normal_quantile};

/// A continuous distribution on (a subset of) the real line.
///
/// The trait is object-safe so heterogeneous distribution lists (e.g. the
/// per-category TTR models) can be stored as `Box<dyn ContinuousDist>`.
pub trait ContinuousDist {
    /// Probability density at `x`.
    fn pdf(&self, x: f64) -> f64;

    /// Cumulative distribution function at `x`.
    fn cdf(&self, x: f64) -> f64;

    /// Quantile function (inverse CDF) for `p` in `(0, 1)`.
    fn quantile(&self, p: f64) -> f64;

    /// Distribution mean.
    fn mean(&self) -> f64;

    /// Distribution variance.
    fn variance(&self) -> f64;

    /// Draws one sample.
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64;

    /// Natural log of the density, used by likelihood computations.
    ///
    /// The default takes `ln(pdf)`; implementations override it where a
    /// numerically stabler form exists.
    fn ln_pdf(&self, x: f64) -> f64 {
        self.pdf(x).ln()
    }
}

fn uniform_open01(rng: &mut dyn rand::RngCore) -> f64 {
    // Map to the open interval (0,1) so ln() and quantile() stay finite.
    loop {
        let u: f64 = rng.gen();
        if u > 0.0 && u < 1.0 {
            return u;
        }
    }
}

/// Exponential distribution with rate `λ` (mean `1/λ`).
///
/// The memoryless baseline for inter-failure times; Tsubame-2's system-wide
/// TBF is close to exponential (mean ≈ 15 h, p75 ≈ 20 h ≈ mean·ln 4).
///
/// # Examples
///
/// ```
/// use failstats::{ContinuousDist, Exponential};
///
/// let d = Exponential::with_mean(15.0).unwrap();
/// assert!((d.mean() - 15.0).abs() < 1e-12);
/// assert!((d.quantile(0.75) - 15.0 * 4.0f64.ln()).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential with rate `λ > 0`; `None` otherwise.
    pub fn new(rate: f64) -> Option<Self> {
        (rate > 0.0 && rate.is_finite()).then_some(Exponential { rate })
    }

    /// Creates an exponential with the given mean.
    pub fn with_mean(mean: f64) -> Option<Self> {
        Self::new(1.0 / mean)
    }

    /// Returns the rate `λ`.
    pub const fn rate(&self) -> f64 {
        self.rate
    }
}

impl ContinuousDist for Exponential {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.rate * (-self.rate * x).exp()
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            1.0 - (-self.rate * x).exp()
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..1.0).contains(&p), "quantile requires p in [0,1)");
        -(1.0 - p).ln() / self.rate
    }

    fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    fn variance(&self) -> f64 {
        1.0 / (self.rate * self.rate)
    }

    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        -uniform_open01(rng).ln() / self.rate
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            f64::NEG_INFINITY
        } else {
            self.rate.ln() - self.rate * x
        }
    }
}

/// Weibull distribution with shape `k` and scale `λ`.
///
/// Shape below 1 models infant-mortality (decreasing hazard) failure
/// processes; shape above 1 models wear-out.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Creates a Weibull with `shape > 0` and `scale > 0`; `None`
    /// otherwise.
    pub fn new(shape: f64, scale: f64) -> Option<Self> {
        (shape > 0.0 && scale > 0.0 && shape.is_finite() && scale.is_finite())
            .then_some(Weibull { shape, scale })
    }

    /// Returns the shape `k`.
    pub const fn shape(&self) -> f64 {
        self.shape
    }

    /// Returns the scale `λ`.
    pub const fn scale(&self) -> f64 {
        self.scale
    }
}

impl ContinuousDist for Weibull {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        let (k, l) = (self.shape, self.scale);
        let z = x / l;
        (k / l) * z.powf(k - 1.0) * (-z.powf(k)).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            1.0 - (-(x / self.scale).powf(self.shape)).exp()
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..1.0).contains(&p), "quantile requires p in [0,1)");
        self.scale * (-(1.0 - p).ln()).powf(1.0 / self.shape)
    }

    fn mean(&self) -> f64 {
        self.scale * (ln_gamma(1.0 + 1.0 / self.shape)).exp()
    }

    fn variance(&self) -> f64 {
        let g1 = (ln_gamma(1.0 + 1.0 / self.shape)).exp();
        let g2 = (ln_gamma(1.0 + 2.0 / self.shape)).exp();
        self.scale * self.scale * (g2 - g1 * g1)
    }

    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        self.scale * (-uniform_open01(rng).ln()).powf(1.0 / self.shape)
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return f64::NEG_INFINITY;
        }
        let (k, l) = (self.shape, self.scale);
        k.ln() - l.ln() + (k - 1.0) * (x.ln() - l.ln()) - (x / l).powf(k)
    }
}

/// Log-normal distribution: `ln X ~ Normal(μ, σ²)`.
///
/// The workhorse for repair times (Figs. 9-10): long right tails with most
/// mass at moderate values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal with log-mean `mu` and log-std `sigma > 0`;
    /// `None` otherwise.
    pub fn new(mu: f64, sigma: f64) -> Option<Self> {
        (sigma > 0.0 && mu.is_finite() && sigma.is_finite()).then_some(LogNormal { mu, sigma })
    }

    /// Creates a log-normal with the given arithmetic mean and the given
    /// log-std `sigma`.
    ///
    /// Solves `mean = exp(μ + σ²/2)` for `μ` — the calibration path used by
    /// the simulator, where the paper reports means (e.g. MTTR ≈ 55 h) and
    /// we choose tail weight.
    pub fn with_mean(mean: f64, sigma: f64) -> Option<Self> {
        if mean <= 0.0 || mean.is_nan() {
            return None;
        }
        Self::new(mean.ln() - sigma * sigma / 2.0, sigma)
    }

    /// Returns the log-mean `μ`.
    pub const fn mu(&self) -> f64 {
        self.mu
    }

    /// Returns the log-std `σ`.
    pub const fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Returns the median `exp(μ)`.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }
}

impl ContinuousDist for LogNormal {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let z = (x.ln() - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (x * self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            std_normal_cdf((x.ln() - self.mu) / self.sigma)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1)");
        (self.mu + self.sigma * std_normal_quantile(p)).exp()
    }

    fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    fn variance(&self) -> f64 {
        let s2 = self.sigma * self.sigma;
        (s2.exp() - 1.0) * (2.0 * self.mu + s2).exp()
    }

    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        (self.mu + self.sigma * sample_std_normal(rng)).exp()
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return f64::NEG_INFINITY;
        }
        let z = (x.ln() - self.mu) / self.sigma;
        -0.5 * z * z - x.ln() - self.sigma.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln()
    }
}

/// Gamma distribution with shape `k` and scale `θ`.
///
/// Used for Tsubame-3's system-wide TBF, whose reported mean (~72 h) and
/// 75th percentile (93 h) rule out both exponential and log-normal shapes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Creates a gamma with `shape > 0`, `scale > 0`; `None` otherwise.
    pub fn new(shape: f64, scale: f64) -> Option<Self> {
        (shape > 0.0 && scale > 0.0 && shape.is_finite() && scale.is_finite())
            .then_some(Gamma { shape, scale })
    }

    /// Creates a gamma with the given mean and shape (`scale = mean /
    /// shape`).
    pub fn with_mean(mean: f64, shape: f64) -> Option<Self> {
        Self::new(shape, mean / shape)
    }

    /// Returns the shape `k`.
    pub const fn shape(&self) -> f64 {
        self.shape
    }

    /// Returns the scale `θ`.
    pub const fn scale(&self) -> f64 {
        self.scale
    }
}

impl ContinuousDist for Gamma {
    fn pdf(&self, x: f64) -> f64 {
        self.ln_pdf(x).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            gamma_p(self.shape, x / self.scale)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..1.0).contains(&p), "quantile requires p in [0,1)");
        self.scale * gamma_p_inv(self.shape, p)
    }

    fn mean(&self) -> f64 {
        self.shape * self.scale
    }

    fn variance(&self) -> f64 {
        self.shape * self.scale * self.scale
    }

    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        self.scale * sample_std_gamma(self.shape, rng)
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return f64::NEG_INFINITY;
        }
        let (k, t) = (self.shape, self.scale);
        (k - 1.0) * x.ln() - x / t - ln_gamma(k) - k * t.ln()
    }
}

/// Draws a standard normal deviate via the Box–Muller transform.
pub fn sample_std_normal(rng: &mut dyn rand::RngCore) -> f64 {
    let u1 = uniform_open01(rng);
    let u2 = uniform_open01(rng);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws a standard (scale 1) gamma deviate with shape `k > 0` using the
/// Marsaglia–Tsang squeeze method, with the boost trick for `k < 1`.
pub fn sample_std_gamma(shape: f64, rng: &mut dyn rand::RngCore) -> f64 {
    assert!(shape > 0.0, "gamma shape must be positive, got {shape}");
    if shape < 1.0 {
        // Boost: X_k = X_{k+1} * U^{1/k}.
        let x = sample_std_gamma(shape + 1.0, rng);
        return x * uniform_open01(rng).powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let z = sample_std_normal(rng);
        let v = (1.0 + c * z).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u = uniform_open01(rng);
        // Squeeze first, then the exact log acceptance test from
        // Marsaglia & Tsang (2000).
        if u < 1.0 - 0.0331 * z * z * z * z
            || u.ln() < 0.5 * z * z + d * (1.0 - v + v.ln())
        {
            return d * v;
        }
    }
}

/// Draws a Poisson count with the given mean (Knuth's method below 30,
/// normal approximation above).
pub fn sample_poisson(mean: f64, rng: &mut dyn rand::RngCore) -> u64 {
    assert!(mean >= 0.0, "Poisson mean must be non-negative, got {mean}");
    if mean == 0.0 {
        return 0;
    }
    if mean < 30.0 {
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= uniform_open01(rng);
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        let x = mean + mean.sqrt() * sample_std_normal(rng);
        x.round().max(0.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xDECAF)
    }

    fn sample_mean_var(d: &dyn ContinuousDist, n: usize) -> (f64, f64) {
        let mut r = rng();
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        let m = crate::desc::mean(&xs).unwrap();
        let v = crate::desc::variance(&xs).unwrap();
        (m, v)
    }

    #[test]
    fn constructors_reject_bad_params() {
        assert!(Exponential::new(0.0).is_none());
        assert!(Exponential::new(-1.0).is_none());
        assert!(Exponential::with_mean(0.0).is_none());
        assert!(Weibull::new(0.0, 1.0).is_none());
        assert!(Weibull::new(1.0, -1.0).is_none());
        assert!(LogNormal::new(0.0, 0.0).is_none());
        assert!(LogNormal::with_mean(-5.0, 1.0).is_none());
        assert!(Gamma::new(-1.0, 1.0).is_none());
        assert!(Gamma::new(1.0, f64::NAN).is_none());
    }

    #[test]
    fn exponential_properties() {
        let d = Exponential::with_mean(15.0).unwrap();
        assert!((d.rate() - 1.0 / 15.0).abs() < 1e-12);
        assert!((d.mean() - 15.0).abs() < 1e-12);
        assert!((d.variance() - 225.0).abs() < 1e-9);
        assert_eq!(d.cdf(-1.0), 0.0);
        assert_eq!(d.pdf(-1.0), 0.0);
        assert!((d.cdf(15.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        // quantile inverts cdf
        for &p in &[0.1, 0.5, 0.9] {
            assert!((d.cdf(d.quantile(p)) - p).abs() < 1e-12);
        }
        // ln_pdf consistent with pdf
        assert!((d.ln_pdf(3.0) - d.pdf(3.0).ln()).abs() < 1e-12);
    }

    #[test]
    fn exponential_sampling_matches_moments() {
        let d = Exponential::with_mean(15.0).unwrap();
        let (m, v) = sample_mean_var(&d, 40_000);
        assert!((m - 15.0).abs() < 0.3, "mean {m}");
        assert!((v - 225.0).abs() < 15.0, "var {v}");
    }

    #[test]
    fn weibull_reduces_to_exponential_at_shape_one() {
        let w = Weibull::new(1.0, 10.0).unwrap();
        let e = Exponential::with_mean(10.0).unwrap();
        for &x in &[0.5, 5.0, 20.0] {
            assert!((w.cdf(x) - e.cdf(x)).abs() < 1e-12);
            assert!((w.pdf(x) - e.pdf(x)).abs() < 1e-12);
        }
        assert!((w.mean() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn weibull_properties() {
        let d = Weibull::new(2.0, 10.0).unwrap();
        assert_eq!(d.shape(), 2.0);
        assert_eq!(d.scale(), 10.0);
        // Mean = λ Γ(1.5) = 10 · 0.8862...
        assert!((d.mean() - 8.862_269_254_527_58).abs() < 1e-9);
        for &p in &[0.05, 0.5, 0.95] {
            assert!((d.cdf(d.quantile(p)) - p).abs() < 1e-10);
        }
        assert!((d.ln_pdf(4.0) - d.pdf(4.0).ln()).abs() < 1e-10);
        let (m, _) = sample_mean_var(&d, 40_000);
        assert!((m - d.mean()).abs() < 0.15, "mean {m}");
    }

    #[test]
    fn lognormal_properties() {
        let d = LogNormal::new(3.0, 0.8).unwrap();
        assert!((d.median() - 3.0f64.exp()).abs() < 1e-9);
        assert!((d.mean() - (3.0 + 0.32f64).exp()).abs() < 1e-9);
        for &p in &[0.1, 0.5, 0.9] {
            assert!((d.cdf(d.quantile(p)) - p).abs() < 1e-6);
        }
        assert!((d.ln_pdf(7.0) - d.pdf(7.0).ln()).abs() < 1e-10);
        assert_eq!(d.pdf(0.0), 0.0);
        assert_eq!(d.cdf(-1.0), 0.0);
    }

    #[test]
    fn lognormal_with_mean_hits_target() {
        let d = LogNormal::with_mean(55.0, 1.1).unwrap();
        assert!((d.mean() - 55.0).abs() < 1e-9);
        let (m, _) = sample_mean_var(&d, 120_000);
        assert!((m - 55.0).abs() < 1.5, "sampled mean {m}");
    }

    #[test]
    fn gamma_properties() {
        let d = Gamma::with_mean(72.0, 2.0).unwrap();
        assert!((d.mean() - 72.0).abs() < 1e-12);
        assert!((d.variance() - 2.0 * 36.0 * 36.0).abs() < 1e-9);
        for &p in &[0.1, 0.5, 0.75, 0.9] {
            assert!((d.cdf(d.quantile(p)) - p).abs() < 1e-7);
        }
        assert!((d.ln_pdf(40.0) - d.pdf(40.0).ln()).abs() < 1e-10);
        let (m, v) = sample_mean_var(&d, 60_000);
        assert!((m - 72.0).abs() < 1.0, "mean {m}");
        assert!((v / d.variance() - 1.0).abs() < 0.08, "var {v}");
    }

    #[test]
    fn gamma_sampler_small_shape() {
        let d = Gamma::new(0.5, 2.0).unwrap();
        let (m, _) = sample_mean_var(&d, 60_000);
        assert!((m - 1.0).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn std_normal_sampler_moments() {
        let mut r = rng();
        let xs: Vec<f64> = (0..60_000).map(|_| sample_std_normal(&mut r)).collect();
        let m = crate::desc::mean(&xs).unwrap();
        let v = crate::desc::variance(&xs).unwrap();
        assert!(m.abs() < 0.02, "mean {m}");
        assert!((v - 1.0).abs() < 0.03, "var {v}");
    }

    #[test]
    fn poisson_sampler_moments() {
        let mut r = rng();
        for &mean in &[0.5, 4.0, 50.0] {
            let xs: Vec<f64> = (0..30_000)
                .map(|_| sample_poisson(mean, &mut r) as f64)
                .collect();
            let m = crate::desc::mean(&xs).unwrap();
            assert!((m - mean).abs() < mean.sqrt() * 0.1 + 0.02, "mean {m} vs {mean}");
        }
        assert_eq!(sample_poisson(0.0, &mut r), 0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            #[test]
            fn quantile_inverts_cdf_for_all_families(
                p in 0.01f64..0.99,
                mean in 0.1f64..1e4,
                shape in 0.3f64..8.0,
                sigma in 0.05f64..2.0,
            ) {
                let dists: Vec<Box<dyn ContinuousDist>> = vec![
                    Box::new(Exponential::with_mean(mean).unwrap()),
                    Box::new(Gamma::with_mean(mean, shape).unwrap()),
                    Box::new(LogNormal::with_mean(mean, sigma).unwrap()),
                    Box::new(Weibull::new(shape, mean).unwrap()),
                ];
                for d in &dists {
                    let x = d.quantile(p);
                    prop_assert!(x >= 0.0);
                    prop_assert!((d.cdf(x) - p).abs() < 1e-5, "cdf(q({p})) = {}", d.cdf(x));
                }
            }

            #[test]
            fn cdf_is_monotone(
                mean in 0.1f64..1e3,
                shape in 0.3f64..8.0,
                a in 0.0f64..500.0,
                b in 0.0f64..500.0,
            ) {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                let d = Gamma::with_mean(mean, shape).unwrap();
                prop_assert!(d.cdf(lo) <= d.cdf(hi) + 1e-12);
                prop_assert!((0.0..=1.0).contains(&d.cdf(hi)));
            }

            #[test]
            fn samples_are_in_support(seed in any::<u64>(), mean in 0.1f64..100.0) {
                let mut rng = StdRng::seed_from_u64(seed);
                for d in [
                    &Exponential::with_mean(mean).unwrap() as &dyn ContinuousDist,
                    &Gamma::with_mean(mean, 2.0).unwrap(),
                    &LogNormal::with_mean(mean, 0.8).unwrap(),
                    &Weibull::new(1.5, mean).unwrap(),
                ] {
                    let x = d.sample(&mut rng);
                    prop_assert!(x > 0.0 && x.is_finite());
                }
            }
        }
    }

    #[test]
    fn trait_objects_work() {
        let dists: Vec<Box<dyn ContinuousDist>> = vec![
            Box::new(Exponential::with_mean(10.0).unwrap()),
            Box::new(Weibull::new(1.5, 10.0).unwrap()),
            Box::new(LogNormal::with_mean(10.0, 1.0).unwrap()),
            Box::new(Gamma::with_mean(10.0, 2.0).unwrap()),
        ];
        let mut r = rng();
        for d in &dists {
            let x = d.sample(&mut r);
            assert!(x > 0.0);
            assert!(d.cdf(x) > 0.0 && d.cdf(x) < 1.0);
        }
    }
}
