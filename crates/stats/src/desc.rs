//! Descriptive statistics: means, variances, quantiles, and five-number
//! summaries.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Arithmetic mean; `None` for an empty slice.
///
/// ```
/// assert_eq!(failstats::mean(&[1.0, 2.0, 3.0]), Some(2.0));
/// assert_eq!(failstats::mean(&[]), None);
/// ```
pub fn mean(data: &[f64]) -> Option<f64> {
    if data.is_empty() {
        return None;
    }
    Some(data.iter().sum::<f64>() / data.len() as f64)
}

/// Unbiased sample variance (n-1 denominator); `None` for fewer than two
/// observations.
pub fn variance(data: &[f64]) -> Option<f64> {
    if data.len() < 2 {
        return None;
    }
    let m = mean(data)?;
    Some(data.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (data.len() - 1) as f64)
}

/// Sample standard deviation; `None` for fewer than two observations.
pub fn std_dev(data: &[f64]) -> Option<f64> {
    variance(data).map(f64::sqrt)
}

/// Coefficient of variation `σ / μ`; `None` when undefined (fewer than two
/// observations or zero mean).
///
/// The paper's temporal-clustering analysis (Fig. 8) uses the CV of
/// inter-arrival times: CV > 1 indicates burstier-than-Poisson arrivals.
pub fn coefficient_of_variation(data: &[f64]) -> Option<f64> {
    let m = mean(data)?;
    if m == 0.0 {
        return None;
    }
    Some(std_dev(data)? / m)
}

/// Type-7 (linear interpolation) quantile of *sorted* data, `p` in
/// `[0, 1]`.
///
/// This matches the default of NumPy/R, the stacks field studies typically
/// use, so percentile statements in the paper compare directly.
///
/// Returns `None` for empty data.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]` or the data is not sorted ascending
/// (checked with `debug_assert`).
///
/// ```
/// let data = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(failstats::quantile_sorted(&data, 0.5), Some(2.5));
/// assert_eq!(failstats::quantile_sorted(&data, 0.0), Some(1.0));
/// assert_eq!(failstats::quantile_sorted(&data, 1.0), Some(4.0));
/// ```
pub fn quantile_sorted(sorted: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&p), "quantile requires p in [0,1], got {p}");
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "quantile_sorted requires ascending data"
    );
    if sorted.is_empty() {
        return None;
    }
    let n = sorted.len();
    if n == 1 {
        return Some(sorted[0]);
    }
    let h = p * (n - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    let frac = h - lo as f64;
    Some(sorted[lo] + frac * (sorted[hi] - sorted[lo]))
}

/// Sorts a copy of the data and evaluates [`quantile_sorted`].
pub fn quantile(data: &[f64], p: f64) -> Option<f64> {
    let mut v = data.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("quantile data must not contain NaN"));
    quantile_sorted(&v, p)
}

/// Median (50th percentile).
pub fn median(data: &[f64]) -> Option<f64> {
    quantile(data, 0.5)
}

/// A five-number-plus summary of a sample: the box-plot statistics used by
/// Figs. 7 and 10 plus mean and standard deviation.
///
/// # Examples
///
/// ```
/// use failstats::Summary;
///
/// let s = Summary::from_data(&[1.0, 2.0, 3.0, 4.0, 100.0]).unwrap();
/// assert_eq!(s.n(), 5);
/// assert_eq!(s.median(), 3.0);
/// assert_eq!(s.max(), 100.0);
/// assert!(s.iqr() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    n: usize,
    mean: f64,
    std_dev: f64,
    min: f64,
    q1: f64,
    median: f64,
    q3: f64,
    max: f64,
}

impl Summary {
    /// Computes the summary; `None` for empty data.
    ///
    /// A single observation yields zero standard deviation.
    pub fn from_data(data: &[f64]) -> Option<Self> {
        if data.is_empty() {
            return None;
        }
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("summary data must not contain NaN"));
        Some(Summary {
            n: data.len(),
            mean: mean(data)?,
            std_dev: std_dev(data).unwrap_or(0.0),
            min: sorted[0],
            q1: quantile_sorted(&sorted, 0.25)?,
            median: quantile_sorted(&sorted, 0.5)?,
            q3: quantile_sorted(&sorted, 0.75)?,
            max: sorted[sorted.len() - 1],
        })
    }

    /// Number of observations.
    pub const fn n(&self) -> usize {
        self.n
    }

    /// Arithmetic mean.
    pub const fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample standard deviation (zero for a single observation).
    pub const fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Minimum.
    pub const fn min(&self) -> f64 {
        self.min
    }

    /// First quartile (25th percentile).
    pub const fn q1(&self) -> f64 {
        self.q1
    }

    /// Median.
    pub const fn median(&self) -> f64 {
        self.median
    }

    /// Third quartile (75th percentile).
    pub const fn q3(&self) -> f64 {
        self.q3
    }

    /// Maximum.
    pub const fn max(&self) -> f64 {
        self.max
    }

    /// Interquartile range `q3 - q1`, the "spread" measure the paper uses
    /// when comparing failure types.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.2} sd={:.2} min={:.2} q1={:.2} med={:.2} q3={:.2} max={:.2}",
            self.n, self.mean, self.std_dev, self.min, self.q1, self.median, self.q3, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basics() {
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        assert_eq!(variance(&[1.0]), None);
        assert_eq!(variance(&[2.0, 4.0]), Some(2.0));
        assert_eq!(std_dev(&[2.0, 4.0]), Some(2.0f64.sqrt()));
        assert_eq!(mean(&[]), None);
        assert_eq!(std_dev(&[]), None);
    }

    #[test]
    fn variance_is_translation_invariant() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b: Vec<f64> = a.iter().map(|x| x + 1000.0).collect();
        assert!((variance(&a).unwrap() - variance(&b).unwrap()).abs() < 1e-9);
    }

    #[test]
    fn cv_of_exponential_like_data_is_one_ish() {
        // For a constant sample CV = 0.
        assert_eq!(coefficient_of_variation(&[5.0, 5.0, 5.0]), Some(0.0));
        assert_eq!(coefficient_of_variation(&[0.0, 0.0]), None);
        assert_eq!(coefficient_of_variation(&[1.0]), None);
        let cv = coefficient_of_variation(&[1.0, 3.0]).unwrap();
        assert!((cv - 2.0f64.sqrt() / 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_type7_matches_reference() {
        // Reference values from R's quantile(type = 7).
        let data = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(quantile(&data, 0.25), Some(20.0));
        assert_eq!(quantile(&data, 0.5), Some(30.0));
        assert_eq!(quantile(&data, 0.1), Some(14.0));
        assert_eq!(quantile(&data, 0.9), Some(46.0));
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&data, 0.25), Some(1.75));
        assert_eq!(quantile(&data, 0.75), Some(3.25));
    }

    #[test]
    fn quantile_edge_cases() {
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(quantile(&[7.0], 0.99), Some(7.0));
        // Unsorted input is handled by `quantile`.
        assert_eq!(quantile(&[3.0, 1.0, 2.0], 0.5), Some(2.0));
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "p in [0,1]")]
    fn quantile_rejects_bad_p() {
        let _ = quantile(&[1.0], 1.5);
    }

    #[test]
    fn summary_computes_all_fields() {
        let s = Summary::from_data(&[4.0, 1.0, 3.0, 2.0]).unwrap();
        assert_eq!(s.n(), 4);
        assert_eq!(s.mean(), 2.5);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
        assert_eq!(s.median(), 2.5);
        assert_eq!(s.q1(), 1.75);
        assert_eq!(s.q3(), 3.25);
        assert!((s.iqr() - 1.5).abs() < 1e-12);
        assert!(s.std_dev() > 0.0);
    }

    #[test]
    fn summary_single_observation() {
        let s = Summary::from_data(&[42.0]).unwrap();
        assert_eq!(s.n(), 1);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
        assert_eq!(s.median(), 42.0);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(Summary::from_data(&[]).is_none());
    }

    #[test]
    fn summary_display() {
        let s = Summary::from_data(&[1.0, 2.0]).unwrap();
        let text = s.to_string();
        assert!(text.contains("n=2"));
        assert!(text.contains("med=1.50"));
    }
}
