//! Correlation measures.
//!
//! RQ5 asks whether months with more failures also have longer recovery
//! times; the paper answers with "no correlation". These functions quantify
//! that claim on the regenerated data.

/// Pearson product-moment correlation of two equal-length samples.
///
/// Returns `None` when the samples differ in length, have fewer than two
/// points, or either side has zero variance.
///
/// ```
/// let x = [1.0, 2.0, 3.0];
/// let y = [2.0, 4.0, 6.0];
/// assert!((failstats::pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
/// ```
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        sxy += (a - mx) * (b - my);
        sxx += (a - mx) * (a - mx);
        syy += (b - my) * (b - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Mid-ranks of a sample (ties share the average rank).
fn ranks(x: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..x.len()).collect();
    idx.sort_by(|&a, &b| x[a].partial_cmp(&x[b]).expect("rank data must not contain NaN"));
    let mut out = vec![0.0; x.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && x[idx[j + 1]] == x[idx[i]] {
            j += 1;
        }
        // Average 1-based rank of the tie group [i, j].
        let rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = rank;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation (Pearson on mid-ranks; tie-aware).
///
/// Returns `None` under the same conditions as [`pearson`].
///
/// ```
/// // A monotone but non-linear relationship is perfect for Spearman.
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [1.0, 8.0, 27.0, 64.0];
/// assert!((failstats::spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
/// ```
pub fn spearman(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    pearson(&ranks(x), &ranks(y))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive_and_negative() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let up: Vec<f64> = x.iter().map(|v| 2.0 * v + 1.0).collect();
        let down: Vec<f64> = x.iter().map(|v| -3.0 * v).collect();
        assert!((pearson(&x, &up).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &down).unwrap() + 1.0).abs() < 1e-12);
        assert!((spearman(&x, &up).unwrap() - 1.0).abs() < 1e-12);
        assert!((spearman(&x, &down).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncorrelated_is_near_zero() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let y = [1.0, -1.0, -1.0, 1.0, 1.0, -1.0, -1.0, 1.0];
        assert!(pearson(&x, &y).unwrap().abs() < 1e-12);
        assert!(spearman(&x, &y).unwrap().abs() < 0.2);
    }

    #[test]
    fn degenerate_inputs_are_none() {
        assert!(pearson(&[1.0], &[2.0]).is_none());
        assert!(pearson(&[1.0, 2.0], &[2.0]).is_none());
        assert!(pearson(&[1.0, 1.0], &[2.0, 3.0]).is_none());
        assert!(spearman(&[], &[]).is_none());
        assert!(spearman(&[1.0, 1.0], &[2.0, 3.0]).is_none());
    }

    #[test]
    fn ranks_handle_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
        let r = ranks(&[5.0, 5.0, 5.0]);
        assert_eq!(r, vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn spearman_is_scale_invariant() {
        let x = [1.0, 5.0, 2.0, 8.0, 3.0];
        let y = [2.0, 11.0, 5.0, 90.0, 7.0];
        let a = spearman(&x, &y).unwrap();
        let xs: Vec<f64> = x.iter().map(|v| v * 1000.0).collect();
        let ys: Vec<f64> = y.iter().map(|v| v.powi(3)).collect();
        let b = spearman(&xs, &ys).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn pearson_symmetry() {
        let x = [1.0, 4.0, 2.0, 7.0];
        let y = [3.0, 1.0, 9.0, 2.0];
        assert!((pearson(&x, &y).unwrap() - pearson(&y, &x).unwrap()).abs() < 1e-12);
    }
}
