//! From-scratch statistics substrate for the `failscope` workspace.
//!
//! The DSN 2021 Tsubame field study this workspace reproduces derives all of
//! its results from a small set of statistical primitives: empirical CDFs
//! and quantiles (Figs. 6, 9), box-plot summaries (Figs. 7, 10), count
//! histograms (Fig. 4), correlation (the RQ5 failure-density vs. TTR
//! question), and point-process burstiness measures (Fig. 8). This crate
//! implements those primitives, plus the distribution toolbox (samplers and
//! maximum-likelihood fitters) the calibrated simulator is built on.
//!
//! Nothing here depends on an external statistics library: special
//! functions, distributions, fitters, and tests are implemented and
//! verified in-crate.
//!
//! # Examples
//!
//! Characterize a sample of inter-failure times:
//!
//! ```
//! use failstats::{fit::select_best_family, ContinuousDist, Ecdf, Exponential, Summary};
//! use rand::SeedableRng;
//!
//! let truth = Exponential::with_mean(15.0).unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let tbf: Vec<f64> = (0..1000).map(|_| truth.sample(&mut rng)).collect();
//!
//! let summary = Summary::from_data(&tbf).unwrap();
//! assert!((summary.mean() - 15.0).abs() < 2.0);
//!
//! let ecdf = Ecdf::new(tbf.clone()).unwrap();
//! assert!(ecdf.quantile(0.75) > summary.median());
//!
//! let best = &select_best_family(&tbf)[0];
//! assert!(best.log_lik.is_finite());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

mod bootstrap;
mod categorical;
mod corr;
mod counting;
mod desc;
mod dist;
mod ecdf;
pub mod fit;
mod hist;
mod htest;
mod ks;
mod logrank;
mod parallel;
mod rate;
mod survival;
pub mod special;

pub use bootstrap::{bootstrap_ci, bootstrap_ci_parallel, ConfidenceInterval};
pub use categorical::Categorical;
pub use corr::{pearson, spearman};
pub use counting::{burstiness_report, inter_arrival_times, windowed_counts, BurstinessReport};
pub use desc::{
    coefficient_of_variation, mean, median, quantile, quantile_sorted, std_dev, variance, Summary,
};
pub use dist::{
    sample_poisson, sample_std_gamma, sample_std_normal, ContinuousDist, Exponential, Gamma,
    LogNormal, Weibull,
};
pub use ecdf::Ecdf;
pub use hist::{CountHistogram, Histogram};
pub use htest::{
    autocorrelation, chi_square_gof, mann_whitney, ChiSquareTest, MannWhitneyTest,
};
pub use ks::{ks_test_dist, ks_test_two_sample, KsTest};
pub use logrank::{log_rank, LogRankTest};
pub use parallel::{available_threads, line_chunks, par_map_ordered};
pub use rate::{chi_square_quantile, poisson_rate_ci, RateInterval};
pub use survival::{HazardStep, KaplanMeier, Lifetime, NelsonAalen, SurvivalStep};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Ecdf>();
        assert_send_sync::<Summary>();
        assert_send_sync::<Categorical>();
        assert_send_sync::<Exponential>();
        assert_send_sync::<Histogram>();
        assert_send_sync::<CountHistogram>();
        assert_send_sync::<ConfidenceInterval>();
    }

    #[test]
    fn end_to_end_fit_and_test() {
        use rand::SeedableRng;
        let truth = Weibull::new(1.4, 70.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let data: Vec<f64> = (0..3000).map(|_| truth.sample(&mut rng)).collect();
        let fitted = fit::fit_weibull(&data).unwrap();
        let test = ks_test_dist(&data, &fitted).unwrap();
        assert!(!test.rejects_at(0.01), "p = {}", test.p_value);
    }
}
