//! Exact confidence intervals for Poisson event rates (and therefore for
//! MTBF estimates).
//!
//! A field study quoting "MTBF ≈ 15 h" from 897 events should also say
//! how tight that estimate is; the chi-square (Garwood) interval is the
//! standard exact answer.

use serde::{Deserialize, Serialize};

use crate::special::gamma_p_inv;

/// Chi-square quantile with `dof` degrees of freedom (via the regularized
/// incomplete gamma inverse).
///
/// # Panics
///
/// Panics if `dof <= 0` or `p` is outside `[0, 1)`.
pub fn chi_square_quantile(dof: f64, p: f64) -> f64 {
    assert!(dof > 0.0, "degrees of freedom must be positive");
    2.0 * gamma_p_inv(dof / 2.0, p)
}

/// An exact (Garwood) confidence interval for a Poisson rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateInterval {
    /// Point estimate: events / exposure.
    pub rate: f64,
    /// Lower bound of the rate.
    pub lower: f64,
    /// Upper bound of the rate.
    pub upper: f64,
    /// Confidence level.
    pub level: f64,
}

impl RateInterval {
    /// The interval for the *mean time between events* implied by the
    /// rate interval: `(1/upper, 1/lower)`; the upper MTBF bound is
    /// infinite when zero events were observed.
    pub fn mtbf_interval(&self) -> (f64, f64) {
        let hi = if self.lower > 0.0 {
            1.0 / self.lower
        } else {
            f64::INFINITY
        };
        (1.0 / self.upper, hi)
    }

    /// The MTBF point estimate `1/rate` (infinite for zero events).
    pub fn mtbf(&self) -> f64 {
        if self.rate > 0.0 {
            1.0 / self.rate
        } else {
            f64::INFINITY
        }
    }
}

/// Exact two-sided confidence interval for a Poisson rate from `events`
/// observed over `exposure` (e.g. hours, node-hours).
///
/// Returns `None` when `exposure` is not positive or `level` is outside
/// `(0, 1)`. Zero events yield a zero lower bound.
///
/// # Examples
///
/// ```
/// use failstats::poisson_rate_ci;
///
/// // 897 failures over 13728 hours: the rate is tightly determined.
/// let ci = poisson_rate_ci(897, 13728.0, 0.95).unwrap();
/// assert!(ci.lower < ci.rate && ci.rate < ci.upper);
/// let (mtbf_lo, mtbf_hi) = ci.mtbf_interval();
/// assert!(mtbf_lo > 14.0 && mtbf_hi < 17.0);
/// ```
pub fn poisson_rate_ci(events: u64, exposure: f64, level: f64) -> Option<RateInterval> {
    if exposure <= 0.0 || !exposure.is_finite() || !(level > 0.0 && level < 1.0) {
        return None;
    }
    let alpha = 1.0 - level;
    let n = events as f64;
    let lower = if events == 0 {
        0.0
    } else {
        chi_square_quantile(2.0 * n, alpha / 2.0) / 2.0 / exposure
    };
    let upper = chi_square_quantile(2.0 * n + 2.0, 1.0 - alpha / 2.0) / 2.0 / exposure;
    Some(RateInterval {
        rate: n / exposure,
        lower,
        upper,
        level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chi_square_quantiles_match_tables() {
        // Standard table values.
        assert!((chi_square_quantile(1.0, 0.95) - 3.841).abs() < 0.01);
        assert!((chi_square_quantile(2.0, 0.95) - 5.991).abs() < 0.01);
        assert!((chi_square_quantile(10.0, 0.5) - 9.342).abs() < 0.01);
    }

    #[test]
    fn interval_brackets_point_estimate() {
        let ci = poisson_rate_ci(338, 24_456.0, 0.95).unwrap();
        assert!(ci.lower < ci.rate);
        assert!(ci.rate < ci.upper);
        assert!((ci.rate - 338.0 / 24_456.0).abs() < 1e-12);
        // MTBF point estimate ≈ 72.4 h with a tight band.
        assert!((ci.mtbf() - 72.35).abs() < 0.1);
        let (lo, hi) = ci.mtbf_interval();
        assert!(lo > 64.0 && lo < ci.mtbf());
        assert!(hi > ci.mtbf() && hi < 82.0);
    }

    #[test]
    fn more_events_tighten_the_interval() {
        let small = poisson_rate_ci(10, 1000.0, 0.95).unwrap();
        let large = poisson_rate_ci(1000, 100_000.0, 0.95).unwrap();
        // Same rate, different widths (relative).
        let rel = |ci: &RateInterval| (ci.upper - ci.lower) / ci.rate;
        assert!(rel(&large) < rel(&small));
    }

    #[test]
    fn zero_events_has_zero_lower_and_finite_upper() {
        let ci = poisson_rate_ci(0, 1000.0, 0.95).unwrap();
        assert_eq!(ci.lower, 0.0);
        assert!(ci.upper > 0.0);
        assert_eq!(ci.rate, 0.0);
        assert_eq!(ci.mtbf(), f64::INFINITY);
        let (lo, hi) = ci.mtbf_interval();
        assert!(lo.is_finite());
        assert_eq!(hi, f64::INFINITY);
        // Classic "rule of three": upper ≈ 3/T at 95%.
        assert!((ci.upper * 1000.0 - 3.0).abs() < 0.7);
    }

    #[test]
    fn degenerate_inputs_are_none() {
        assert!(poisson_rate_ci(5, 0.0, 0.95).is_none());
        assert!(poisson_rate_ci(5, -1.0, 0.95).is_none());
        assert!(poisson_rate_ci(5, f64::NAN, 0.95).is_none());
        assert!(poisson_rate_ci(5, 10.0, 0.0).is_none());
        assert!(poisson_rate_ci(5, 10.0, 1.0).is_none());
    }

    #[test]
    fn coverage_sanity_via_duality() {
        // For n events, the lower bound L satisfies
        // P(Poisson(L·T) >= n) = α/2: check via the gamma identity.
        let ci = poisson_rate_ci(20, 100.0, 0.9).unwrap();
        let lt = ci.lower * 100.0;
        // P(X >= 20 | λ = lt) = P(20, lt) regularized gamma.
        let p = crate::special::gamma_p(20.0, lt);
        assert!((p - 0.05).abs() < 1e-6, "duality p = {p}");
    }
}
