//! Point-process statistics for arrival-time sequences.
//!
//! The temporal-clustering analysis of multi-GPU failures (Fig. 8) needs
//! measures of how "bursty" an event sequence is relative to a Poisson
//! process: the coefficient of variation of inter-arrival times, the
//! dispersion (Fano) index of windowed counts, and the burstiness index.

use serde::{Deserialize, Serialize};

use crate::desc::{coefficient_of_variation, mean, variance};

/// Inter-arrival times of a strictly or weakly increasing event-time
/// sequence.
///
/// Returns an empty vector for sequences with fewer than two events.
///
/// # Panics
///
/// Panics if the sequence is not non-decreasing.
///
/// ```
/// let gaps = failstats::inter_arrival_times(&[1.0, 3.0, 6.0]);
/// assert_eq!(gaps, vec![2.0, 3.0]);
/// ```
pub fn inter_arrival_times(times: &[f64]) -> Vec<f64> {
    assert!(
        times.windows(2).all(|w| w[1] >= w[0]),
        "event times must be non-decreasing"
    );
    times.windows(2).map(|w| w[1] - w[0]).collect()
}

/// Counts events per consecutive window of length `window` over `[0,
/// horizon)`.
///
/// # Panics
///
/// Panics if `window <= 0` or `horizon <= 0`.
pub fn windowed_counts(times: &[f64], window: f64, horizon: f64) -> Vec<u64> {
    assert!(window > 0.0, "window must be positive");
    assert!(horizon > 0.0, "horizon must be positive");
    let n_windows = (horizon / window).ceil() as usize;
    let mut counts = vec![0u64; n_windows];
    for &t in times {
        if t >= 0.0 && t < horizon {
            let idx = ((t / window) as usize).min(n_windows - 1);
            counts[idx] += 1;
        }
    }
    counts
}

/// A bundle of burstiness measures for one event sequence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstinessReport {
    /// Number of events.
    pub events: usize,
    /// Coefficient of variation of inter-arrival times (1 for Poisson,
    /// > 1 for clustered arrivals).
    pub cv: f64,
    /// Dispersion (Fano) index of windowed counts: variance/mean (1 for
    /// Poisson, > 1 for clustered arrivals).
    pub dispersion_index: f64,
    /// Goh–Barabási burstiness `B = (σ - μ)/(σ + μ)` of inter-arrival
    /// times (0 for Poisson, → 1 for extreme bursts, < 0 for regular).
    pub burstiness: f64,
    /// Fraction of inter-arrival gaps shorter than `follow_up_window`.
    pub short_gap_fraction: f64,
    /// The follow-up window used for `short_gap_fraction`, in the same
    /// time unit as the input.
    pub follow_up_window: f64,
}

/// Computes burstiness measures for an event sequence over `[0, horizon)`.
///
/// `count_window` sizes the windows for the dispersion index;
/// `follow_up_window` is the "another failure soon after" threshold used in
/// the Fig. 8 discussion.
///
/// Returns `None` with fewer than three events (the measures are
/// meaningless below that).
///
/// # Panics
///
/// Panics if windows or horizon are non-positive, or times are not
/// non-decreasing.
pub fn burstiness_report(
    times: &[f64],
    horizon: f64,
    count_window: f64,
    follow_up_window: f64,
) -> Option<BurstinessReport> {
    assert!(follow_up_window > 0.0, "follow-up window must be positive");
    if times.len() < 3 {
        return None;
    }
    let gaps = inter_arrival_times(times);
    let cv = coefficient_of_variation(&gaps)?;
    let counts: Vec<f64> = windowed_counts(times, count_window, horizon)
        .into_iter()
        .map(|c| c as f64)
        .collect();
    let cm = mean(&counts)?;
    let cvr = variance(&counts)?;
    let dispersion_index = if cm > 0.0 { cvr / cm } else { 0.0 };
    let gm = mean(&gaps)?;
    let gs = crate::desc::std_dev(&gaps)?;
    let burstiness = if gs + gm > 0.0 { (gs - gm) / (gs + gm) } else { 0.0 };
    let short = gaps.iter().filter(|&&g| g < follow_up_window).count() as f64;
    Some(BurstinessReport {
        events: times.len(),
        cv,
        dispersion_index,
        burstiness,
        short_gap_fraction: short / gaps.len() as f64,
        follow_up_window,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{ContinuousDist, Exponential};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn poisson_times(rate: f64, horizon: f64, seed: u64) -> Vec<f64> {
        let d = Exponential::new(rate).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = 0.0;
        let mut out = Vec::new();
        loop {
            t += d.sample(&mut rng);
            if t >= horizon {
                return out;
            }
            out.push(t);
        }
    }

    #[test]
    fn inter_arrival_basics() {
        assert!(inter_arrival_times(&[]).is_empty());
        assert!(inter_arrival_times(&[5.0]).is_empty());
        assert_eq!(inter_arrival_times(&[1.0, 1.0, 4.0]), vec![0.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn inter_arrival_rejects_unsorted() {
        inter_arrival_times(&[2.0, 1.0]);
    }

    #[test]
    fn windowed_counts_bucketing() {
        let counts = windowed_counts(&[0.5, 1.5, 1.9, 9.99], 1.0, 10.0);
        assert_eq!(counts.len(), 10);
        assert_eq!(counts[0], 1);
        assert_eq!(counts[1], 2);
        assert_eq!(counts[9], 1);
        assert_eq!(counts.iter().sum::<u64>(), 4);
        // Out-of-horizon events are dropped.
        let counts = windowed_counts(&[-1.0, 10.0, 11.0], 1.0, 10.0);
        assert_eq!(counts.iter().sum::<u64>(), 0);
    }

    #[test]
    fn poisson_process_is_not_bursty() {
        let times = poisson_times(1.0, 5000.0, 21);
        let r = burstiness_report(&times, 5000.0, 10.0, 1.0).unwrap();
        assert!((r.cv - 1.0).abs() < 0.1, "cv {}", r.cv);
        assert!((r.dispersion_index - 1.0).abs() < 0.15, "D {}", r.dispersion_index);
        assert!(r.burstiness.abs() < 0.06, "B {}", r.burstiness);
    }

    #[test]
    fn clustered_process_is_bursty() {
        // Bursts of 5 events 0.01 apart, bursts separated by ~100.
        let mut times = Vec::new();
        let mut t = 0.0;
        for _ in 0..200 {
            for k in 0..5 {
                times.push(t + k as f64 * 0.01);
            }
            t += 100.0;
        }
        let horizon = t + 1.0;
        let r = burstiness_report(&times, horizon, 10.0, 1.0).unwrap();
        assert!(r.cv > 1.5, "cv {}", r.cv);
        assert!(r.dispersion_index > 2.0, "D {}", r.dispersion_index);
        assert!(r.burstiness > 0.3, "B {}", r.burstiness);
        assert!(r.short_gap_fraction > 0.7, "frac {}", r.short_gap_fraction);
    }

    #[test]
    fn regular_process_has_negative_burstiness() {
        let times: Vec<f64> = (0..500).map(|i| i as f64 * 10.0).collect();
        let r = burstiness_report(&times, 5000.0, 50.0, 1.0).unwrap();
        assert!(r.cv < 0.01);
        assert!(r.burstiness < -0.9);
        assert_eq!(r.short_gap_fraction, 0.0);
    }

    #[test]
    fn too_few_events_is_none() {
        assert!(burstiness_report(&[1.0, 2.0], 10.0, 1.0, 1.0).is_none());
    }
}
