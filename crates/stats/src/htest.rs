//! Additional hypothesis tests: chi-square goodness of fit and the
//! Mann–Whitney U (Wilcoxon rank-sum) test.
//!
//! Used by the analyses to compare category mixes between generated and
//! expected distributions, and to compare TTR samples across groups
//! (generations, half-years) without normality assumptions.

use serde::{Deserialize, Serialize};

use crate::special::{gamma_q, std_normal_cdf};

/// The result of a chi-square goodness-of-fit test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChiSquareTest {
    /// The chi-square statistic.
    pub statistic: f64,
    /// Degrees of freedom.
    pub dof: usize,
    /// Upper-tail p-value.
    pub p_value: f64,
}

impl ChiSquareTest {
    /// Returns `true` when the observed counts are inconsistent with the
    /// expected distribution at significance `alpha`.
    pub fn rejects_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Chi-square goodness of fit of observed counts against expected
/// *proportions* (normalized internally).
///
/// Returns `None` when the slices differ in length, have fewer than two
/// cells, contain a non-positive expected proportion, or the observed
/// total is zero.
///
/// # Examples
///
/// ```
/// use failstats::chi_square_gof;
///
/// // A fair die, 600 rolls, roughly uniform counts.
/// let observed = [95u64, 105, 99, 101, 102, 98];
/// let test = chi_square_gof(&observed, &[1.0; 6]).unwrap();
/// assert!(!test.rejects_at(0.05));
/// ```
pub fn chi_square_gof(observed: &[u64], expected_weights: &[f64]) -> Option<ChiSquareTest> {
    if observed.len() != expected_weights.len() || observed.len() < 2 {
        return None;
    }
    if expected_weights.iter().any(|&w| w <= 0.0 || !w.is_finite()) {
        return None;
    }
    let total: u64 = observed.iter().sum();
    if total == 0 {
        return None;
    }
    let weight_sum: f64 = expected_weights.iter().sum();
    let mut stat = 0.0;
    for (&o, &w) in observed.iter().zip(expected_weights) {
        let e = total as f64 * w / weight_sum;
        stat += (o as f64 - e).powi(2) / e;
    }
    let dof = observed.len() - 1;
    Some(ChiSquareTest {
        statistic: stat,
        dof,
        // Upper tail of chi-square(k) = Q(k/2, x/2).
        p_value: gamma_q(dof as f64 / 2.0, stat / 2.0),
    })
}

/// The result of a Mann–Whitney U test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MannWhitneyTest {
    /// The U statistic of the first sample.
    pub u: f64,
    /// Normal-approximation z-score (tie-corrected).
    pub z: f64,
    /// Two-sided p-value (normal approximation).
    pub p_value: f64,
    /// The common-language effect size `P(X > Y) + ½P(X = Y)`.
    pub effect_size: f64,
}

impl MannWhitneyTest {
    /// Returns `true` when the two samples' distributions differ at
    /// significance `alpha`.
    pub fn rejects_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Two-sided Mann–Whitney U test with tie correction and normal
/// approximation (adequate for the sample sizes in failure logs).
///
/// Returns `None` when either sample is empty or the joint sample is
/// constant.
///
/// # Examples
///
/// ```
/// use failstats::mann_whitney;
///
/// let a = [1.0, 2.0, 3.0, 4.0, 5.0];
/// let b = [10.0, 11.0, 12.0, 13.0, 14.0];
/// let test = mann_whitney(&a, &b).unwrap();
/// assert!(test.rejects_at(0.05));
/// assert!(test.effect_size < 0.1); // a is almost always below b
/// ```
pub fn mann_whitney(a: &[f64], b: &[f64]) -> Option<MannWhitneyTest> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    let na = a.len() as f64;
    let nb = b.len() as f64;
    // Rank the pooled sample with mid-ranks for ties.
    let mut pooled: Vec<(f64, usize)> = a
        .iter()
        .map(|&x| (x, 0usize))
        .chain(b.iter().map(|&x| (x, 1usize)))
        .collect();
    pooled.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("no NaN in test data"));
    let n = pooled.len();
    let mut ranks = vec![0.0; n];
    let mut tie_term = 0.0;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && pooled[j + 1].0 == pooled[i].0 {
            j += 1;
        }
        let rank = (i + j) as f64 / 2.0 + 1.0;
        let t = (j - i + 1) as f64;
        tie_term += t * t * t - t;
        for r in ranks.iter_mut().take(j + 1).skip(i) {
            *r = rank;
        }
        i = j + 1;
    }
    let ra: f64 = pooled
        .iter()
        .zip(&ranks)
        .filter(|((_, g), _)| *g == 0)
        .map(|(_, &r)| r)
        .sum();
    let u = ra - na * (na + 1.0) / 2.0;
    let mean_u = na * nb / 2.0;
    let nn = na + nb;
    let var_u = na * nb / 12.0 * ((nn + 1.0) - tie_term / (nn * (nn - 1.0)));
    if var_u <= 0.0 {
        return None; // constant joint sample
    }
    // Continuity-corrected z.
    let z = (u - mean_u - 0.5 * (u - mean_u).signum()) / var_u.sqrt();
    let p = 2.0 * (1.0 - std_normal_cdf(z.abs()));
    Some(MannWhitneyTest {
        u,
        z,
        p_value: p.clamp(0.0, 1.0),
        effect_size: u / (na * nb),
    })
}

/// Lag-`k` sample autocorrelation of a series.
///
/// Returns `None` when the series is shorter than `k + 2` or has zero
/// variance.
///
/// ```
/// // A strongly periodic series has high lag-2 autocorrelation.
/// let series: Vec<f64> = (0..100).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
/// assert!(failstats::autocorrelation(&series, 2).unwrap() > 0.9);
/// assert!(failstats::autocorrelation(&series, 1).unwrap() < -0.9);
/// ```
pub fn autocorrelation(series: &[f64], k: usize) -> Option<f64> {
    if series.len() < k + 2 {
        return None;
    }
    let n = series.len();
    let mean = series.iter().sum::<f64>() / n as f64;
    let denom: f64 = series.iter().map(|x| (x - mean).powi(2)).sum();
    if denom == 0.0 {
        return None;
    }
    let num: f64 = (0..n - k)
        .map(|i| (series[i] - mean) * (series[i + k] - mean))
        .sum();
    Some(num / denom)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chi_square_accepts_matching_counts() {
        let observed = [100u64, 200, 300];
        let test = chi_square_gof(&observed, &[1.0, 2.0, 3.0]).unwrap();
        assert!(test.statistic < 1e-9);
        assert!(test.p_value > 0.99);
        assert_eq!(test.dof, 2);
    }

    #[test]
    fn chi_square_rejects_skewed_counts() {
        let observed = [300u64, 200, 100];
        let test = chi_square_gof(&observed, &[1.0, 2.0, 3.0]).unwrap();
        assert!(test.rejects_at(0.001), "p = {}", test.p_value);
    }

    #[test]
    fn chi_square_degenerate_inputs() {
        assert!(chi_square_gof(&[1, 2], &[1.0]).is_none());
        assert!(chi_square_gof(&[1], &[1.0]).is_none());
        assert!(chi_square_gof(&[1, 2], &[1.0, 0.0]).is_none());
        assert!(chi_square_gof(&[0, 0], &[1.0, 1.0]).is_none());
    }

    #[test]
    fn chi_square_p_value_calibration() {
        // The 95th percentile of chi-square(1) is 3.841.
        let p_at_crit = gamma_q(0.5, 3.841 / 2.0);
        assert!((p_at_crit - 0.05).abs() < 1e-3);
    }

    #[test]
    fn mann_whitney_identical_samples() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let test = mann_whitney(&a, &a).unwrap();
        assert!(!test.rejects_at(0.05));
        assert!((test.effect_size - 0.5).abs() < 0.01);
    }

    #[test]
    fn mann_whitney_shifted_samples() {
        let a: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..30).map(|i| i as f64 + 20.0).collect();
        let test = mann_whitney(&a, &b).unwrap();
        assert!(test.rejects_at(0.001), "p = {}", test.p_value);
        assert!(test.effect_size < 0.3);
    }

    #[test]
    fn mann_whitney_handles_ties() {
        let a = [1.0, 1.0, 2.0, 2.0, 3.0];
        let b = [2.0, 2.0, 3.0, 3.0, 4.0];
        let test = mann_whitney(&a, &b).unwrap();
        assert!(test.p_value > 0.0 && test.p_value <= 1.0);
        assert!(test.effect_size < 0.5);
    }

    #[test]
    fn mann_whitney_degenerate_inputs() {
        assert!(mann_whitney(&[], &[1.0]).is_none());
        assert!(mann_whitney(&[1.0], &[]).is_none());
        assert!(mann_whitney(&[2.0, 2.0], &[2.0, 2.0]).is_none());
    }

    #[test]
    fn autocorrelation_of_iid_noise_is_small() {
        use crate::dist::ContinuousDist;
        use rand::SeedableRng;
        let d = crate::dist::Exponential::with_mean(1.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let series: Vec<f64> = (0..5000).map(|_| d.sample(&mut rng)).collect();
        for k in 1..5 {
            let r = autocorrelation(&series, k).unwrap();
            assert!(r.abs() < 0.05, "lag {k}: {r}");
        }
    }

    #[test]
    fn autocorrelation_degenerate_inputs() {
        assert!(autocorrelation(&[1.0, 2.0], 3).is_none());
        assert!(autocorrelation(&[5.0, 5.0, 5.0, 5.0], 1).is_none());
        // Lag 0 is exactly 1 for any non-constant series.
        assert!((autocorrelation(&[1.0, 2.0, 3.0], 0).unwrap() - 1.0).abs() < 1e-12);
    }
}
