//! The log-rank (Mantel–Cox) test for comparing two survival curves.
//!
//! Companion to [`crate::KaplanMeier`]: given two groups of possibly
//! censored lifetimes (e.g. Tsubame-2 vs Tsubame-3 node
//! time-to-first-failure), tests whether their survival distributions
//! differ.

use serde::{Deserialize, Serialize};

use crate::special::gamma_q;
use crate::survival::Lifetime;

/// The result of a two-group log-rank test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogRankTest {
    /// The chi-square statistic (1 degree of freedom).
    pub statistic: f64,
    /// Upper-tail p-value.
    pub p_value: f64,
    /// Observed events in group 1.
    pub observed_1: f64,
    /// Expected events in group 1 under the null of equal hazards.
    pub expected_1: f64,
}

impl LogRankTest {
    /// Returns `true` when the survival distributions differ at
    /// significance `alpha`.
    pub fn rejects_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }

    /// Returns `true` when group 1 fails *faster* than the null expects
    /// (more observed than expected events).
    pub fn group1_fails_faster(&self) -> bool {
        self.observed_1 > self.expected_1
    }
}

/// Two-group log-rank test.
///
/// Returns `None` when either group is empty, any duration is invalid,
/// or no events occur at all (nothing to compare).
///
/// # Examples
///
/// ```
/// use failstats::{log_rank, Lifetime};
///
/// let fast: Vec<Lifetime> = (1..40).map(|i| Lifetime::observed(i as f64)).collect();
/// let slow: Vec<Lifetime> = (1..40).map(|i| Lifetime::observed(i as f64 * 10.0)).collect();
/// let test = log_rank(&fast, &slow).unwrap();
/// assert!(test.rejects_at(0.01));
/// assert!(test.group1_fails_faster());
/// ```
pub fn log_rank(group1: &[Lifetime], group2: &[Lifetime]) -> Option<LogRankTest> {
    if group1.is_empty() || group2.is_empty() {
        return None;
    }
    let valid = |l: &Lifetime| l.duration >= 0.0 && l.duration.is_finite();
    if !group1.iter().all(valid) || !group2.iter().all(valid) {
        return None;
    }
    // Merge all observations, tagging the group.
    let mut all: Vec<(f64, bool, usize)> = group1
        .iter()
        .map(|l| (l.duration, l.observed, 0usize))
        .chain(group2.iter().map(|l| (l.duration, l.observed, 1usize)))
        .collect();
    all.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("validated finite"));

    let mut at_risk = [group1.len() as f64, group2.len() as f64];
    let mut observed_1 = 0.0;
    let mut expected_1 = 0.0;
    let mut variance = 0.0;

    let n = all.len();
    let mut i = 0;
    while i < n {
        let t = all[i].0;
        // Gather all observations at time t.
        let mut events = [0.0, 0.0];
        let mut removals = [0.0, 0.0];
        let mut j = i;
        while j < n && all[j].0 == t {
            let (_, observed, group) = all[j];
            if observed {
                events[group] += 1.0;
            }
            removals[group] += 1.0;
            j += 1;
        }
        let d = events[0] + events[1];
        let r = at_risk[0] + at_risk[1];
        if d > 0.0 && r > 1.0 {
            let e1 = d * at_risk[0] / r;
            expected_1 += e1;
            observed_1 += events[0];
            // Hypergeometric variance with tie correction.
            variance += d * (at_risk[0] / r) * (at_risk[1] / r) * (r - d) / (r - 1.0);
        }
        at_risk[0] -= removals[0];
        at_risk[1] -= removals[1];
        i = j;
    }

    if variance <= 0.0 {
        return None;
    }
    let statistic = (observed_1 - expected_1).powi(2) / variance;
    Some(LogRankTest {
        statistic,
        // Chi-square(1) upper tail.
        p_value: gamma_q(0.5, statistic / 2.0),
        observed_1,
        expected_1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{ContinuousDist, Exponential};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn exp_sample(mean: f64, n: usize, seed: u64) -> Vec<Lifetime> {
        let d = Exponential::with_mean(mean).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| Lifetime::observed(d.sample(&mut rng))).collect()
    }

    #[test]
    fn identical_distributions_are_not_rejected() {
        let a = exp_sample(10.0, 300, 1);
        let b = exp_sample(10.0, 300, 2);
        let t = log_rank(&a, &b).unwrap();
        assert!(!t.rejects_at(0.01), "p = {}", t.p_value);
    }

    #[test]
    fn different_hazards_are_rejected() {
        let a = exp_sample(5.0, 300, 3);
        let b = exp_sample(20.0, 300, 4);
        let t = log_rank(&a, &b).unwrap();
        assert!(t.rejects_at(0.001), "p = {}", t.p_value);
        assert!(t.group1_fails_faster());
    }

    #[test]
    fn censoring_is_respected() {
        // Group 2 has the same event times but heavy censoring beyond
        // t = 5: the test must still run and not blow up.
        let a = exp_sample(10.0, 200, 5);
        let b: Vec<Lifetime> = exp_sample(10.0, 200, 6)
            .into_iter()
            .map(|l| {
                if l.duration > 5.0 {
                    Lifetime::censored(5.0)
                } else {
                    l
                }
            })
            .collect();
        let t = log_rank(&a, &b).unwrap();
        assert!(t.p_value > 0.0 && t.p_value <= 1.0);
    }

    #[test]
    fn degenerate_inputs_are_none() {
        let a = exp_sample(10.0, 10, 7);
        assert!(log_rank(&a, &[]).is_none());
        assert!(log_rank(&[], &a).is_none());
        assert!(log_rank(&a, &[Lifetime::observed(f64::NAN)]).is_none());
        // All censored: no events to compare.
        let c1 = vec![Lifetime::censored(5.0); 10];
        let c2 = vec![Lifetime::censored(7.0); 10];
        assert!(log_rank(&c1, &c2).is_none());
    }

    #[test]
    fn statistic_is_symmetric_in_groups() {
        let a = exp_sample(5.0, 100, 8);
        let b = exp_sample(15.0, 100, 9);
        let t1 = log_rank(&a, &b).unwrap();
        let t2 = log_rank(&b, &a).unwrap();
        assert!((t1.statistic - t2.statistic).abs() < 1e-9);
        assert!(t1.group1_fails_faster());
        assert!(!t2.group1_fails_faster());
    }
}
