//! Histograms: continuous equal-width bins and discrete count histograms.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An equal-width histogram over `[lo, hi)` with values outside the range
/// clamped into the edge bins.
///
/// # Examples
///
/// ```
/// use failstats::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
/// h.extend([1.0, 1.5, 7.0, 9.9, 100.0]); // 100.0 clamps into the last bin
/// assert_eq!(h.count(0), 2);
/// assert_eq!(h.count(4), 2);
/// assert_eq!(h.total(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// Returns `None` when `bins == 0`, the bounds are not finite, or
    /// `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Option<Self> {
        if bins == 0 || !lo.is_finite() || !hi.is_finite() || hi <= lo {
            return None;
        }
        Some(Histogram {
            lo,
            hi,
            counts: vec![0; bins],
        })
    }

    /// Adds one observation (clamped into the edge bins when outside the
    /// range; NaN is ignored).
    pub fn add(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        let nbins = self.counts.len();
        let raw = ((x - self.lo) / (self.hi - self.lo) * nbins as f64).floor();
        let idx = raw.clamp(0.0, (nbins - 1) as f64) as usize;
        self.counts[idx] += 1;
    }

    /// Adds many observations.
    pub fn extend(&mut self, values: impl IntoIterator<Item = f64>) {
        for v in values {
            self.add(v);
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// All bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The `[left, right)` edges of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        assert!(i < self.counts.len(), "bin {i} out of range");
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Relative frequency of bin `i` (zero when the histogram is empty).
    pub fn fraction(&self, i: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count(i) as f64 / total as f64
        }
    }
}

/// A histogram over non-negative integer values (e.g. failures per node).
///
/// Backed by a sorted map so iteration yields ascending keys — the order
/// Fig. 4 tabulates "nodes with exactly k failures".
///
/// # Examples
///
/// ```
/// use failstats::CountHistogram;
///
/// let mut h = CountHistogram::new();
/// h.extend([1u64, 1, 2, 5]);
/// assert_eq!(h.count_of(1), 2);
/// assert_eq!(h.fraction_of(1), 0.5);
/// assert_eq!(h.total(), 4);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CountHistogram {
    counts: BTreeMap<u64, u64>,
}

impl CountHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation of `value`.
    pub fn add(&mut self, value: u64) {
        *self.counts.entry(value).or_insert(0) += 1;
    }

    /// Records many observations.
    pub fn extend(&mut self, values: impl IntoIterator<Item = u64>) {
        for v in values {
            self.add(v);
        }
    }

    /// Number of observations equal to `value`.
    pub fn count_of(&self, value: u64) -> u64 {
        self.counts.get(&value).copied().unwrap_or(0)
    }

    /// Fraction of observations equal to `value` (zero when empty).
    pub fn fraction_of(&self, value: u64) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count_of(value) as f64 / total as f64
        }
    }

    /// Fraction of observations strictly greater than `value`.
    pub fn fraction_above(&self, value: u64) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let above: u64 = self
            .counts
            .range(value + 1..)
            .map(|(_, &c)| c)
            .sum();
        above as f64 / total as f64
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Largest observed value (`None` when empty).
    pub fn max_value(&self) -> Option<u64> {
        self.counts.keys().next_back().copied()
    }

    /// Iterates `(value, count)` pairs in ascending value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&v, &c)| (v, c))
    }

    /// Returns `true` when no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

impl FromIterator<u64> for CountHistogram {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut h = CountHistogram::new();
        h.extend(iter);
        h
    }
}

impl Extend<u64> for CountHistogram {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        for v in iter {
            self.add(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_rejects_bad_config() {
        assert!(Histogram::new(0.0, 1.0, 0).is_none());
        assert!(Histogram::new(1.0, 1.0, 4).is_none());
        assert!(Histogram::new(2.0, 1.0, 4).is_none());
        assert!(Histogram::new(f64::NAN, 1.0, 4).is_none());
    }

    #[test]
    fn histogram_bins_and_edges() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        h.add(0.0);
        h.add(0.999);
        h.add(9.999);
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(9), 1);
        assert_eq!(h.bins(), 10);
        assert_eq!(h.bin_edges(0), (0.0, 1.0));
        assert_eq!(h.bin_edges(9), (9.0, 10.0));
        assert!((h.fraction(0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_clamps_out_of_range() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        h.add(-100.0);
        h.add(1e9);
        h.add(f64::NAN); // ignored
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(4), 1);
        assert_eq!(h.total(), 2);
        assert_eq!(h.counts(), &[1, 0, 0, 0, 1]);
    }

    #[test]
    fn histogram_empty_fraction_is_zero() {
        let h = Histogram::new(0.0, 1.0, 2).unwrap();
        assert_eq!(h.fraction(0), 0.0);
    }

    #[test]
    fn count_histogram_basics() {
        let h: CountHistogram = [1u64, 1, 1, 2, 3, 3].into_iter().collect();
        assert_eq!(h.count_of(1), 3);
        assert_eq!(h.count_of(2), 1);
        assert_eq!(h.count_of(99), 0);
        assert_eq!(h.total(), 6);
        assert_eq!(h.max_value(), Some(3));
        assert!((h.fraction_of(1) - 0.5).abs() < 1e-12);
        assert!((h.fraction_above(1) - 0.5).abs() < 1e-12);
        assert_eq!(h.fraction_above(3), 0.0);
        assert!(!h.is_empty());
    }

    #[test]
    fn count_histogram_iteration_is_sorted() {
        let h: CountHistogram = [5u64, 1, 3, 1].into_iter().collect();
        let items: Vec<_> = h.iter().collect();
        assert_eq!(items, vec![(1, 2), (3, 1), (5, 1)]);
    }

    #[test]
    fn count_histogram_empty() {
        let h = CountHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.total(), 0);
        assert_eq!(h.max_value(), None);
        assert_eq!(h.fraction_of(1), 0.0);
        assert_eq!(h.fraction_above(0), 0.0);
    }

    #[test]
    fn extend_trait_impl() {
        let mut h = CountHistogram::new();
        Extend::extend(&mut h, vec![2u64, 2]);
        assert_eq!(h.count_of(2), 2);
    }
}
