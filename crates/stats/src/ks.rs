//! Kolmogorov–Smirnov goodness-of-fit tests.

use serde::{Deserialize, Serialize};

use crate::dist::ContinuousDist;
use crate::ecdf::Ecdf;
use crate::special::kolmogorov_q;

/// The result of a KS test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KsTest {
    /// The KS statistic `D = sup |F_n(x) - F(x)|`.
    pub statistic: f64,
    /// Asymptotic p-value (Kolmogorov distribution with the Stephens
    /// small-sample correction).
    pub p_value: f64,
    /// Effective sample size used for the p-value.
    pub n_effective: f64,
}

impl KsTest {
    /// Returns `true` when the fit is rejected at the given significance
    /// level (e.g. `0.05`).
    pub fn rejects_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// One-sample KS test of a sample against a hypothesized continuous
/// distribution.
///
/// Returns `None` for an empty sample.
///
/// # Examples
///
/// ```
/// use failstats::{ks_test_dist, ContinuousDist, Exponential};
/// use rand::SeedableRng;
///
/// let d = Exponential::with_mean(10.0).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let data: Vec<f64> = (0..500).map(|_| d.sample(&mut rng)).collect();
/// let test = ks_test_dist(&data, &d).unwrap();
/// assert!(!test.rejects_at(0.01)); // correct model: not rejected
/// ```
pub fn ks_test_dist(data: &[f64], dist: &dyn ContinuousDist) -> Option<KsTest> {
    if data.is_empty() {
        return None;
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("KS data must not contain NaN"));
    let n = sorted.len() as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in sorted.iter().enumerate() {
        let f = dist.cdf(x);
        let lo = i as f64 / n;
        let hi = (i + 1) as f64 / n;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    let lambda = (n.sqrt() + 0.12 + 0.11 / n.sqrt()) * d;
    Some(KsTest {
        statistic: d,
        p_value: kolmogorov_q(lambda),
        n_effective: n,
    })
}

/// Two-sample KS test.
///
/// Returns `None` when either sample is empty.
pub fn ks_test_two_sample(a: &[f64], b: &[f64]) -> Option<KsTest> {
    let ea = Ecdf::new(a.to_vec())?;
    let eb = Ecdf::new(b.to_vec())?;
    let d = ea.ks_distance(&eb);
    let na = a.len() as f64;
    let nb = b.len() as f64;
    let ne = na * nb / (na + nb);
    let lambda = (ne.sqrt() + 0.12 + 0.11 / ne.sqrt()) * d;
    Some(KsTest {
        statistic: d,
        p_value: kolmogorov_q(lambda),
        n_effective: ne,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Exponential, LogNormal};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn draw(d: &dyn ContinuousDist, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    #[test]
    fn correct_model_is_not_rejected() {
        let d = Exponential::with_mean(15.0).unwrap();
        let data = draw(&d, 1000, 11);
        let t = ks_test_dist(&data, &d).unwrap();
        assert!(t.statistic < 0.05, "D = {}", t.statistic);
        assert!(t.p_value > 0.05, "p = {}", t.p_value);
    }

    #[test]
    fn wrong_model_is_rejected() {
        let truth = LogNormal::with_mean(15.0, 1.5).unwrap();
        let data = draw(&truth, 1000, 12);
        let wrong = Exponential::with_mean(15.0).unwrap();
        let t = ks_test_dist(&data, &wrong).unwrap();
        assert!(t.rejects_at(0.01), "p = {}", t.p_value);
    }

    #[test]
    fn empty_sample_is_none() {
        let d = Exponential::with_mean(1.0).unwrap();
        assert!(ks_test_dist(&[], &d).is_none());
        assert!(ks_test_two_sample(&[], &[1.0]).is_none());
        assert!(ks_test_two_sample(&[1.0], &[]).is_none());
    }

    #[test]
    fn two_sample_same_distribution() {
        let d = Exponential::with_mean(15.0).unwrap();
        let a = draw(&d, 800, 13);
        let b = draw(&d, 800, 14);
        let t = ks_test_two_sample(&a, &b).unwrap();
        assert!(t.p_value > 0.05, "p = {}", t.p_value);
    }

    #[test]
    fn two_sample_different_distributions() {
        let a = draw(&Exponential::with_mean(15.0).unwrap(), 800, 15);
        let b = draw(&Exponential::with_mean(60.0).unwrap(), 800, 16);
        let t = ks_test_two_sample(&a, &b).unwrap();
        assert!(t.rejects_at(0.001), "p = {}", t.p_value);
        assert!(t.statistic > 0.2);
    }

    #[test]
    fn statistic_is_exact_on_tiny_sample() {
        // Single observation at the median: D = 0.5.
        let d = Exponential::with_mean(1.0).unwrap();
        let x = d.quantile(0.5);
        let t = ks_test_dist(&[x], &d).unwrap();
        assert!((t.statistic - 0.5).abs() < 1e-12);
    }
}
