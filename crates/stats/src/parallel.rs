//! Deterministic ordered parallel map.
//!
//! The execution engine's one concurrency primitive: apply a function to
//! the indices `0..count` on a crossbeam scoped worker pool and return
//! the results **in index order**, so callers that previously ran a
//! serial `for` loop get byte-identical results at any thread count.
//! Workers pull indices from a shared atomic counter (work stealing), so
//! heterogeneous item costs balance automatically; ordering is restored
//! by writing each result into its index slot.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads the host offers (at least 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Maps `f` over `0..count` with up to `threads` workers, returning the
/// results in index order.
///
/// The output is identical to `(0..count).map(f).collect()` for every
/// `threads` value; `threads <= 1` (or `count <= 1`) short-circuits to
/// exactly that serial loop, spawning nothing.
///
/// # Panics
///
/// Panics if a worker panics (the panic is propagated).
///
/// # Examples
///
/// ```
/// use failstats::par_map_ordered;
///
/// let serial: Vec<usize> = (0..100).map(|i| i * i).collect();
/// let parallel = par_map_ordered(100, 4, |i| i * i);
/// assert_eq!(serial, parallel);
/// ```
pub fn par_map_ordered<T, F>(count: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.max(1).min(count);
    if workers <= 1 {
        return (0..count).map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Mutex<Option<T>>> = Vec::with_capacity(count);
    slots.resize_with(count, || Mutex::new(None));

    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let (f, next, slots) = (&f, &next, &slots);
                scope.spawn(move |_| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    let value = f(i);
                    *slots[i].lock().expect("slot lock is never poisoned") = Some(value);
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("parallel map worker panicked");
        }
    })
    .expect("crossbeam scope failed");

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock is never poisoned")
                .expect("every index was claimed by exactly one worker")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_for_every_thread_count() {
        let serial: Vec<usize> = (0..57usize).map(|i| i.wrapping_mul(31)).collect();
        for threads in [0, 1, 2, 3, 4, 8, 64] {
            let parallel = par_map_ordered(57, threads, |i| i.wrapping_mul(31));
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        assert_eq!(par_map_ordered(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_ordered(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    fn floating_point_reduction_is_order_stable() {
        // Summing the ordered outputs reproduces the serial sum bit for
        // bit — the property the seed-sweep sharding relies on.
        let f = |i: usize| ((i as f64) * 0.1).sin();
        let serial: f64 = (0..1000).map(f).sum();
        let parallel: f64 = par_map_ordered(1000, 8, f).iter().sum();
        assert_eq!(serial.to_bits(), parallel.to_bits());
    }

    #[test]
    fn borrows_captured_state() {
        let data: Vec<u64> = (0..64).collect();
        let doubled = par_map_ordered(data.len(), 4, |i| data[i] * 2);
        assert_eq!(doubled[63], 126);
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panics_propagate() {
        let _ = par_map_ordered(8, 2, |i| {
            assert!(i != 5, "boom");
            i
        });
    }
}
