//! Deterministic ordered parallel map.
//!
//! The execution engine's one concurrency primitive: apply a function to
//! the indices `0..count` on a crossbeam scoped worker pool and return
//! the results **in index order**, so callers that previously ran a
//! serial `for` loop get byte-identical results at any thread count.
//! Workers pull indices from a shared atomic counter (work stealing), so
//! heterogeneous item costs balance automatically; ordering is restored
//! by writing each result into its index slot.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads the host offers (at least 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Splits `data` into contiguous byte ranges of roughly `chunk_bytes`
/// each, snapped forward to line boundaries: every range except
/// possibly the last ends immediately after a `\n`, so no line is ever
/// split across two chunks.
///
/// Boundaries depend only on the input bytes and `chunk_bytes` — never
/// on thread count — so a chunked parallel pass over the ranges is
/// deterministic. The ranges partition `0..data.len()` exactly;
/// `chunk_bytes` is clamped to at least 1 (a 1-byte request yields one
/// chunk per line).
///
/// # Examples
///
/// ```
/// let text = b"alpha\nbeta\ngamma\n";
/// let chunks = failstats::line_chunks(text, 7);
/// assert_eq!(chunks, vec![0..11, 11..17]);
/// let rebuilt: Vec<u8> = chunks
///     .into_iter()
///     .flat_map(|r| text[r].to_vec())
///     .collect();
/// assert_eq!(rebuilt, text);
/// ```
pub fn line_chunks(data: &[u8], chunk_bytes: usize) -> Vec<std::ops::Range<usize>> {
    let step = chunk_bytes.max(1);
    let mut chunks = Vec::new();
    let mut start = 0;
    while start < data.len() {
        let mut end = start.saturating_add(step).min(data.len());
        if end < data.len() {
            // Snap forward so the chunk ends just after a newline. When
            // `end` already sits on one (previous byte is `\n`), the
            // search matches at offset 0 and the boundary stays put.
            end = match data[end - 1..].iter().position(|&b| b == b'\n') {
                Some(offset) => end + offset,
                None => data.len(),
            };
        }
        chunks.push(start..end);
        start = end;
    }
    chunks
}

/// Maps `f` over `0..count` with up to `threads` workers, returning the
/// results in index order.
///
/// The output is identical to `(0..count).map(f).collect()` for every
/// `threads` value; `threads <= 1` (or `count <= 1`) short-circuits to
/// exactly that serial loop, spawning nothing.
///
/// # Panics
///
/// Panics if a worker panics (the panic is propagated).
///
/// # Examples
///
/// ```
/// use failstats::par_map_ordered;
///
/// let serial: Vec<usize> = (0..100).map(|i| i * i).collect();
/// let parallel = par_map_ordered(100, 4, |i| i * i);
/// assert_eq!(serial, parallel);
/// ```
pub fn par_map_ordered<T, F>(count: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.max(1).min(count);
    if workers <= 1 {
        return (0..count).map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Mutex<Option<T>>> = Vec::with_capacity(count);
    slots.resize_with(count, || Mutex::new(None));

    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let (f, next, slots) = (&f, &next, &slots);
                scope.spawn(move |_| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    let value = f(i);
                    *slots[i].lock().expect("slot lock is never poisoned") = Some(value);
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("parallel map worker panicked");
        }
    })
    .expect("crossbeam scope failed");

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock is never poisoned")
                .expect("every index was claimed by exactly one worker")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_chunks_partition_and_respect_newlines() {
        let text = b"a\nbb\nccc\ndddd\neeeee\nno-trailing-newline";
        for chunk_bytes in [1, 2, 3, 5, 8, 100, usize::MAX] {
            let chunks = line_chunks(text, chunk_bytes);
            // Exact partition of the input.
            let mut expected_start = 0;
            for r in &chunks {
                assert_eq!(r.start, expected_start, "chunk_bytes = {chunk_bytes}");
                assert!(r.end > r.start);
                expected_start = r.end;
            }
            assert_eq!(expected_start, text.len());
            // Every boundary except the final one follows a newline.
            for r in &chunks[..chunks.len() - 1] {
                assert_eq!(text[r.end - 1], b'\n', "chunk_bytes = {chunk_bytes}");
            }
        }
        // One chunk per line at the smallest size.
        assert_eq!(line_chunks(text, 1).len(), 6);
        assert_eq!(line_chunks(b"", 4), Vec::<std::ops::Range<usize>>::new());
        // A boundary landing exactly on a newline stays put.
        assert_eq!(line_chunks(b"ab\ncd\n", 3), vec![0..3, 3..6]);
    }

    #[test]
    fn matches_serial_for_every_thread_count() {
        let serial: Vec<usize> = (0..57usize).map(|i| i.wrapping_mul(31)).collect();
        for threads in [0, 1, 2, 3, 4, 8, 64] {
            let parallel = par_map_ordered(57, threads, |i| i.wrapping_mul(31));
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        assert_eq!(par_map_ordered(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_ordered(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    fn floating_point_reduction_is_order_stable() {
        // Summing the ordered outputs reproduces the serial sum bit for
        // bit — the property the seed-sweep sharding relies on.
        let f = |i: usize| ((i as f64) * 0.1).sin();
        let serial: f64 = (0..1000).map(f).sum();
        let parallel: f64 = par_map_ordered(1000, 8, f).iter().sum();
        assert_eq!(serial.to_bits(), parallel.to_bits());
    }

    #[test]
    fn borrows_captured_state() {
        let data: Vec<u64> = (0..64).collect();
        let doubled = par_map_ordered(data.len(), 4, |i| data[i] * 2);
        assert_eq!(doubled[63], 126);
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panics_propagate() {
        let _ = par_map_ordered(8, 2, |i| {
            assert!(i != 5, "boom");
            i
        });
    }
}
