//! Maximum-likelihood fitting of the continuous distributions and
//! AIC-based model selection.
//!
//! The ablation study `ablate_tbf_dist` uses these fitters to ask which
//! family best explains the generated inter-arrival data, mirroring how a
//! field study would characterize its measured TBF/TTR samples.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::dist::{ContinuousDist, Exponential, Gamma, LogNormal, Weibull};
use crate::special::digamma;

/// Error returned when a fit cannot be computed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// The sample has too few observations for the requested family.
    TooFewObservations {
        /// Observations provided.
        got: usize,
        /// Observations required.
        need: usize,
    },
    /// The sample contains values outside the support (non-positive or
    /// non-finite).
    InvalidObservation,
    /// The iterative solver failed to converge.
    NoConvergence,
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::TooFewObservations { got, need } => {
                write!(f, "need at least {need} observations, got {got}")
            }
            FitError::InvalidObservation => {
                write!(f, "sample contains non-positive or non-finite values")
            }
            FitError::NoConvergence => write!(f, "maximum-likelihood solver did not converge"),
        }
    }
}

impl std::error::Error for FitError {}

fn check_sample(data: &[f64], need: usize) -> Result<(), FitError> {
    if data.len() < need {
        return Err(FitError::TooFewObservations {
            got: data.len(),
            need,
        });
    }
    if data.iter().any(|&x| x <= 0.0 || !x.is_finite()) {
        return Err(FitError::InvalidObservation);
    }
    Ok(())
}

/// Log-likelihood of a sample under a distribution.
pub fn log_likelihood(dist: &dyn ContinuousDist, data: &[f64]) -> f64 {
    data.iter().map(|&x| dist.ln_pdf(x)).sum()
}

/// Akaike information criterion `2k - 2 ln L`.
pub fn aic(log_lik: f64, params: usize) -> f64 {
    2.0 * params as f64 - 2.0 * log_lik
}

/// Fits an exponential by MLE (`rate = 1 / mean`).
///
/// # Errors
///
/// Fails on empty samples or non-positive observations.
pub fn fit_exponential(data: &[f64]) -> Result<Exponential, FitError> {
    check_sample(data, 1)?;
    let mean = data.iter().sum::<f64>() / data.len() as f64;
    Exponential::with_mean(mean).ok_or(FitError::NoConvergence)
}

/// Fits a log-normal by MLE (moments of `ln x`).
///
/// # Errors
///
/// Fails with fewer than two observations or non-positive values; also
/// fails when the sample is degenerate (all values equal), since `σ = 0`
/// is outside the family.
pub fn fit_lognormal(data: &[f64]) -> Result<LogNormal, FitError> {
    check_sample(data, 2)?;
    let logs: Vec<f64> = data.iter().map(|&x| x.ln()).collect();
    let mu = logs.iter().sum::<f64>() / logs.len() as f64;
    // MLE uses the n denominator.
    let sigma2 = logs.iter().map(|l| (l - mu).powi(2)).sum::<f64>() / logs.len() as f64;
    LogNormal::new(mu, sigma2.sqrt()).ok_or(FitError::NoConvergence)
}

/// Fits a Weibull by MLE.
///
/// Solves the profile-likelihood shape equation
/// `1/k = Σ xᵢᵏ ln xᵢ / Σ xᵢᵏ - mean(ln x)` by Newton iteration with
/// bisection fallback.
///
/// # Errors
///
/// Fails with fewer than two observations, non-positive values, degenerate
/// samples, or non-convergence.
pub fn fit_weibull(data: &[f64]) -> Result<Weibull, FitError> {
    check_sample(data, 2)?;
    let n = data.len() as f64;
    let mean_ln = data.iter().map(|&x| x.ln()).sum::<f64>() / n;
    if data.iter().all(|&x| (x - data[0]).abs() < 1e-12) {
        return Err(FitError::NoConvergence);
    }

    // g(k) = Σ x^k ln x / Σ x^k - 1/k - mean_ln; root is the MLE shape.
    let g = |k: f64| -> f64 {
        let mut sx = 0.0;
        let mut sxl = 0.0;
        for &x in data {
            let xk = x.powf(k);
            sx += xk;
            sxl += xk * x.ln();
        }
        sxl / sx - 1.0 / k - mean_ln
    };

    // Bracket the root. g is increasing in k; g(k→0⁺) → -∞.
    let mut lo = 1e-3;
    let mut hi = 1.0;
    let mut iter = 0;
    while g(hi) < 0.0 {
        lo = hi;
        hi *= 2.0;
        iter += 1;
        if iter > 60 {
            return Err(FitError::NoConvergence);
        }
    }
    while g(lo) > 0.0 {
        hi = lo;
        lo /= 2.0;
        iter += 1;
        if iter > 120 {
            return Err(FitError::NoConvergence);
        }
    }
    // Bisection: robust and plenty fast for the sample sizes involved.
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if g(mid) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-10 * hi {
            break;
        }
    }
    let shape = 0.5 * (lo + hi);
    let scale = (data.iter().map(|&x| x.powf(shape)).sum::<f64>() / n).powf(1.0 / shape);
    Weibull::new(shape, scale).ok_or(FitError::NoConvergence)
}

/// Fits a gamma by MLE.
///
/// Uses the Minka/Choi–Wette Newton iteration on the shape equation
/// `ln k - ψ(k) = ln(mean) - mean(ln x)`.
///
/// # Errors
///
/// Fails with fewer than two observations, non-positive values, or
/// degenerate samples.
pub fn fit_gamma(data: &[f64]) -> Result<Gamma, FitError> {
    check_sample(data, 2)?;
    let n = data.len() as f64;
    let mean = data.iter().sum::<f64>() / n;
    let mean_ln = data.iter().map(|&x| x.ln()).sum::<f64>() / n;
    let s = mean.ln() - mean_ln;
    if s <= 0.0 {
        // Happens only for degenerate (constant) samples.
        return Err(FitError::NoConvergence);
    }
    // Initial guess (Minka 2002).
    let mut k = (3.0 - s + ((s - 3.0).powi(2) + 24.0 * s).sqrt()) / (12.0 * s);
    for _ in 0..100 {
        let f = k.ln() - digamma(k) - s;
        let fp = 1.0 / k - crate::special::trigamma(k);
        let next = k - f / fp;
        let next = if next <= 0.0 { k / 2.0 } else { next };
        if (next - k).abs() < 1e-12 * k {
            k = next;
            break;
        }
        k = next;
    }
    Gamma::new(k, mean / k).ok_or(FitError::NoConvergence)
}

/// A distribution family for model selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Family {
    /// Exponential (1 parameter).
    Exponential,
    /// Weibull (2 parameters).
    Weibull,
    /// Log-normal (2 parameters).
    LogNormal,
    /// Gamma (2 parameters).
    Gamma,
}

impl Family {
    /// All supported families.
    pub const ALL: [Family; 4] = [
        Family::Exponential,
        Family::Weibull,
        Family::LogNormal,
        Family::Gamma,
    ];

    /// Number of free parameters.
    pub const fn params(self) -> usize {
        match self {
            Family::Exponential => 1,
            _ => 2,
        }
    }

    /// Display name.
    pub const fn name(self) -> &'static str {
        match self {
            Family::Exponential => "exponential",
            Family::Weibull => "Weibull",
            Family::LogNormal => "log-normal",
            Family::Gamma => "gamma",
        }
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The outcome of fitting one family to a sample.
pub struct FittedModel {
    /// The family that was fitted.
    pub family: Family,
    /// The fitted distribution.
    pub dist: Box<dyn ContinuousDist + Send + Sync>,
    /// Log-likelihood at the MLE.
    pub log_lik: f64,
    /// Akaike information criterion (lower is better).
    pub aic: f64,
}

impl fmt::Debug for FittedModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FittedModel")
            .field("family", &self.family)
            .field("mean", &self.dist.mean())
            .field("log_lik", &self.log_lik)
            .field("aic", &self.aic)
            .finish()
    }
}

/// Fits a single family to the sample.
///
/// # Errors
///
/// Propagates the underlying fitter's error.
pub fn fit_family(family: Family, data: &[f64]) -> Result<FittedModel, FitError> {
    let dist: Box<dyn ContinuousDist + Send + Sync> = match family {
        Family::Exponential => Box::new(fit_exponential(data)?),
        Family::Weibull => Box::new(fit_weibull(data)?),
        Family::LogNormal => Box::new(fit_lognormal(data)?),
        Family::Gamma => Box::new(fit_gamma(data)?),
    };
    let log_lik = log_likelihood(dist.as_ref(), data);
    Ok(FittedModel {
        family,
        aic: aic(log_lik, family.params()),
        dist,
        log_lik,
    })
}

/// Fits every family that converges and returns them sorted by ascending
/// AIC (best first). Families that fail to fit are skipped.
///
/// ```
/// use failstats::fit::select_best_family;
/// use failstats::{ContinuousDist, Exponential};
/// use rand::SeedableRng;
///
/// let d = Exponential::with_mean(10.0).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let data: Vec<f64> = (0..2000).map(|_| d.sample(&mut rng)).collect();
/// let ranked = select_best_family(&data);
/// assert!(!ranked.is_empty());
/// // Exponential data: the 1-parameter family should be competitive.
/// assert!(ranked[0].aic <= ranked.last().unwrap().aic);
/// ```
pub fn select_best_family(data: &[f64]) -> Vec<FittedModel> {
    let mut fits: Vec<FittedModel> = Family::ALL
        .iter()
        .filter_map(|&f| fit_family(f, data).ok())
        .collect();
    fits.sort_by(|a, b| a.aic.partial_cmp(&b.aic).expect("AIC is finite"));
    fits
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn draw(d: &dyn ContinuousDist, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    #[test]
    fn exponential_mle_recovers_rate() {
        let truth = Exponential::with_mean(15.0).unwrap();
        let data = draw(&truth, 20_000, 1);
        let fit = fit_exponential(&data).unwrap();
        assert!((fit.mean() - 15.0).abs() < 0.4, "mean {}", fit.mean());
    }

    #[test]
    fn lognormal_mle_recovers_params() {
        let truth = LogNormal::new(3.2, 1.1).unwrap();
        let data = draw(&truth, 20_000, 2);
        let fit = fit_lognormal(&data).unwrap();
        assert!((fit.mu() - 3.2).abs() < 0.05, "mu {}", fit.mu());
        assert!((fit.sigma() - 1.1).abs() < 0.05, "sigma {}", fit.sigma());
    }

    #[test]
    fn weibull_mle_recovers_params() {
        for &(shape, scale) in &[(0.7, 20.0), (1.0, 15.0), (2.3, 80.0)] {
            let truth = Weibull::new(shape, scale).unwrap();
            let data = draw(&truth, 20_000, 3);
            let fit = fit_weibull(&data).unwrap();
            assert!(
                (fit.shape() - shape).abs() < 0.06 * shape.max(1.0),
                "shape {} want {shape}",
                fit.shape()
            );
            assert!(
                (fit.scale() - scale).abs() < 0.05 * scale,
                "scale {} want {scale}",
                fit.scale()
            );
        }
    }

    #[test]
    fn gamma_mle_recovers_params() {
        for &(shape, scale) in &[(0.8, 10.0), (2.0, 36.0), (5.0, 3.0)] {
            let truth = Gamma::new(shape, scale).unwrap();
            let data = draw(&truth, 30_000, 4);
            let fit = fit_gamma(&data).unwrap();
            assert!(
                (fit.shape() - shape).abs() < 0.08 * shape.max(1.0),
                "shape {} want {shape}",
                fit.shape()
            );
            assert!(
                (fit.mean() - shape * scale).abs() < 0.05 * shape * scale,
                "mean {} want {}",
                fit.mean(),
                shape * scale
            );
        }
    }

    #[test]
    fn fitters_reject_bad_samples() {
        assert!(matches!(
            fit_exponential(&[]),
            Err(FitError::TooFewObservations { .. })
        ));
        assert!(matches!(
            fit_lognormal(&[1.0]),
            Err(FitError::TooFewObservations { .. })
        ));
        assert_eq!(
            fit_weibull(&[1.0, -2.0]).unwrap_err(),
            FitError::InvalidObservation
        );
        assert_eq!(
            fit_gamma(&[1.0, 0.0]).unwrap_err(),
            FitError::InvalidObservation
        );
        assert_eq!(
            fit_gamma(&[1.0, f64::NAN]).unwrap_err(),
            FitError::InvalidObservation
        );
        // Degenerate (constant) samples have no 2-parameter MLE.
        assert_eq!(
            fit_gamma(&[5.0, 5.0, 5.0]).unwrap_err(),
            FitError::NoConvergence
        );
        assert_eq!(
            fit_weibull(&[5.0, 5.0, 5.0]).unwrap_err(),
            FitError::NoConvergence
        );
        assert_eq!(
            fit_lognormal(&[5.0, 5.0, 5.0]).unwrap_err(),
            FitError::NoConvergence
        );
    }

    #[test]
    fn model_selection_prefers_true_family() {
        // Strongly non-exponential gamma data.
        let truth = Gamma::new(4.0, 5.0).unwrap();
        let data = draw(&truth, 5_000, 5);
        let ranked = select_best_family(&data);
        assert!(ranked.len() >= 3);
        // The best family should be gamma or its close cousin Weibull —
        // and definitely not exponential.
        assert_ne!(ranked[0].family, Family::Exponential);
        // AICs ascend.
        for w in ranked.windows(2) {
            assert!(w[0].aic <= w[1].aic);
        }
    }

    #[test]
    fn exponential_data_keeps_exponential_competitive() {
        let truth = Exponential::with_mean(20.0).unwrap();
        let data = draw(&truth, 5_000, 6);
        let ranked = select_best_family(&data);
        let best_aic = ranked[0].aic;
        let exp_fit = ranked.iter().find(|m| m.family == Family::Exponential).unwrap();
        // On exponential data the exponential AIC is within a few units of
        // the best 2-parameter family.
        assert!(exp_fit.aic - best_aic < 6.0);
    }

    #[test]
    fn aic_formula() {
        assert_eq!(aic(-100.0, 2), 204.0);
        assert_eq!(Family::Exponential.params(), 1);
        assert_eq!(Family::Gamma.params(), 2);
        assert_eq!(Family::Weibull.to_string(), "Weibull");
    }

    #[test]
    fn fit_error_display() {
        assert!(FitError::TooFewObservations { got: 1, need: 2 }
            .to_string()
            .contains("at least 2"));
        assert!(FitError::InvalidObservation.to_string().contains("non-positive"));
        assert!(FitError::NoConvergence.to_string().contains("converge"));
    }
}
