//! The log generator: turns a [`SystemModel`] into a validated
//! [`FailureLog`].

use failtrace::Collector;
use failtypes::{FailureLog, FailureRecord, Hours, SoftwareLocus};
use failstats::ContinuousDist;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::arrivals;
use crate::model::SystemModel;
use crate::multigpu::{self, Involvement};
use crate::spatial::NodeAssigner;

/// Deterministic failure-log generator.
///
/// # Examples
///
/// ```
/// use failsim::{Simulator, SystemModel};
///
/// let log = Simulator::new(SystemModel::tsubame3(), 42).generate()?;
/// assert_eq!(log.len(), 338);
/// assert_eq!(log.gpu_records().count(), 94);
/// # Ok::<(), failtypes::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    model: SystemModel,
    seed: u64,
}

impl Simulator {
    /// Creates a simulator for the model with an explicit seed.
    ///
    /// The same `(model, seed)` pair always yields the same log.
    pub fn new(model: SystemModel, seed: u64) -> Self {
        Simulator { model, seed }
    }

    /// The model being simulated.
    pub fn model(&self) -> &SystemModel {
        &self.model
    }

    /// The seed in use.
    pub const fn seed(&self) -> u64 {
        self.seed
    }

    /// Generates the failure log.
    ///
    /// # Errors
    ///
    /// Returns [`failtypes::Error::Invalid`] if the generated records
    /// violate a log invariant — this indicates an inconsistent custom
    /// [`SystemModel`] (the calibrated models cannot fail).
    pub fn generate(&self) -> failtypes::Result<FailureLog> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let model = &self.model;
        let n = model.total_failures() as usize;

        // 1. Event times from the calibrated arrival process.
        let times = arrivals::generate_times(model, n, &mut rng);

        // 2. Exact category multiset, randomly interleaved over the
        //    timeline (equivalent to thinning, so per-category TBF shapes
        //    emerge correctly).
        let mut categories = model.category_mix.to_multiset();
        shuffle(&mut categories, &mut rng);

        // 3. Node placement.
        let mut nodes = Vec::with_capacity(n);
        let mut assigner = NodeAssigner::new(model, &mut rng);
        for &cat in &categories {
            nodes.push(assigner.assign(cat, &mut rng));
        }

        // 4. GPU involvement for the GPU failures, conserving Table III.
        let gpu_indices: Vec<usize> = (0..n).filter(|&i| categories[i].is_gpu()).collect();
        let gpu_times: Vec<Hours> = gpu_indices.iter().map(|&i| times[i]).collect();
        let involvement = multigpu::assign_involvement(model, &gpu_times, &mut rng);

        // 5. Software root loci for software-category failures, conserving
        //    the Fig. 3 multiset.
        let software_indices: Vec<usize> = (0..n)
            .filter(|&i| is_locus_bearing(model, categories[i]))
            .collect();
        let mut loci: Vec<SoftwareLocus> = model
            .software_loci
            .iter()
            .flat_map(|&(l, c)| std::iter::repeat_n(l, c as usize))
            .collect();
        shuffle(&mut loci, &mut rng);

        // 6. Repair times: per-category log-normal, modulated monthly.
        let mut records = Vec::with_capacity(n);
        let mut gpu_cursor = 0usize;
        let mut sw_cursor = 0usize;
        for i in 0..n {
            let cat = categories[i];
            let t = times[i];
            let month = model.window.date_of(t).month();
            let ttr_mult = model.monthly_ttr[month.index()];
            let ttr = model.ttr.distribution(cat).sample(&mut rng) * ttr_mult;
            let mut rec = FailureRecord::new(i as u32, t, Hours::new(ttr), cat, nodes[i]);
            if cat.is_gpu() {
                if let Involvement::Slots(slots) = &involvement[gpu_cursor] {
                    rec = rec.with_gpus(slots.iter().copied());
                }
                gpu_cursor += 1;
            }
            if is_locus_bearing(model, cat) {
                if let Some(&locus) = loci.get(sw_cursor) {
                    rec = rec.with_locus(locus);
                }
                sw_cursor += 1;
            }
            records.push(rec);
        }
        debug_assert_eq!(gpu_cursor, gpu_indices.len());
        debug_assert_eq!(sw_cursor, software_indices.len());

        Ok(FailureLog::with_spec(
            model.generation,
            model.spec.clone(),
            model.window,
            records,
        )?)
    }

    /// [`Simulator::generate`] with optional tracing: records a
    /// `sim.generate` span and a `sim.records_generated` counter into
    /// `trace`.
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::generate`].
    pub fn generate_traced(&self, trace: Option<&Collector>) -> failtypes::Result<FailureLog> {
        let Some(trace) = trace else {
            return self.generate();
        };
        let mut span = trace.span("sim.generate");
        let log = self.generate()?;
        span.add_items(log.len() as u64);
        trace.incr("sim.records_generated", log.len() as u64);
        Ok(log)
    }
}

/// Whether records of this category carry a Fig. 3 root locus.
fn is_locus_bearing(model: &SystemModel, cat: failtypes::Category) -> bool {
    !model.software_loci.is_empty()
        && matches!(
            cat,
            failtypes::Category::T3(failtypes::T3Category::Software)
        )
}

/// Fisher–Yates shuffle (kept local to avoid a rand feature dependency).
fn shuffle<T>(items: &mut [T], rng: &mut dyn RngCore) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ScenarioBuilder;
    use failtypes::{Category, T2Category, T3Category};

    #[test]
    fn tsubame2_log_headline_numbers() {
        let log = Simulator::new(SystemModel::tsubame2(), 42).generate().unwrap();
        assert_eq!(log.len(), 897);
        let gpu = log
            .iter()
            .filter(|r| r.category() == Category::T2(T2Category::Gpu))
            .count();
        assert_eq!(gpu, 398);
        let cpu = log
            .iter()
            .filter(|r| r.category() == Category::T2(T2Category::Cpu))
            .count();
        assert_eq!(cpu, 16);
    }

    #[test]
    fn tsubame3_log_headline_numbers() {
        let log = Simulator::new(SystemModel::tsubame3(), 43).generate().unwrap();
        assert_eq!(log.len(), 338);
        let sw = log
            .iter()
            .filter(|r| r.category() == Category::T3(T3Category::Software))
            .count();
        assert_eq!(sw, 171);
        // Every Software record carries a root locus; nothing else does.
        for r in log.iter() {
            if r.category() == Category::T3(T3Category::Software) {
                assert!(r.locus().is_some());
            } else {
                assert!(r.locus().is_none());
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Simulator::new(SystemModel::tsubame3(), 7).generate().unwrap();
        let b = Simulator::new(SystemModel::tsubame3(), 7).generate().unwrap();
        assert_eq!(a, b);
        let c = Simulator::new(SystemModel::tsubame3(), 8).generate().unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn involvement_totals_match_table3() {
        let log = Simulator::new(SystemModel::tsubame2(), 1).generate().unwrap();
        let mut by_count = [0u32; 4];
        for r in log.gpu_records() {
            let k = r.gpus().len();
            by_count[k.min(3)] += 1;
        }
        assert_eq!(by_count, [30, 112, 128, 128]);
    }

    #[test]
    fn non_gpu_records_have_no_involvement() {
        let log = Simulator::new(SystemModel::tsubame3(), 2).generate().unwrap();
        for r in log.iter() {
            if !r.category().is_gpu() {
                assert!(r.gpus().is_empty());
            }
        }
    }

    #[test]
    fn ttrs_are_positive_and_plausible() {
        let log = Simulator::new(SystemModel::tsubame3(), 3).generate().unwrap();
        let ttrs: Vec<f64> = log.iter().map(|r| r.ttr().get()).collect();
        assert!(ttrs.iter().all(|&t| t > 0.0));
        let mean = failstats::mean(&ttrs).unwrap();
        // Fig. 9 anchor: MTTR ≈ 55 h (sampling noise band).
        assert!((mean - 55.0).abs() < 12.0, "MTTR {mean}");
    }

    #[test]
    fn scenario_model_generates() {
        let model = ScenarioBuilder::new("hypo")
            .nodes(64)
            .gpus_per_node(8)
            .system_mtbf_hours(20.0)
            .window_days(120)
            .build()
            .unwrap();
        let expected = model.total_failures();
        let log = Simulator::new(model, 5).generate().unwrap();
        assert_eq!(log.len() as u32, expected);
        // All slots within the 8-GPU node.
        for r in log.gpu_records() {
            for s in r.gpus() {
                assert!(s.index() < 8);
            }
        }
    }

    #[test]
    fn seed_accessors() {
        let sim = Simulator::new(SystemModel::tsubame2(), 99);
        assert_eq!(sim.seed(), 99);
        assert_eq!(sim.model().total_failures(), 897);
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..100).collect();
        shuffle(&mut v, &mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
