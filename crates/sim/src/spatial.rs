//! Node placement of failures.
//!
//! Fig. 4 shows a distinctive per-node occupancy: most failing nodes see a
//! single failure, a small share see exactly two, and a heavy tail of
//! repeat offenders absorbs the rest. The calibrated models reproduce it
//! with a *defective pool*: a random subset of nodes (manufacturing
//! variability, hot spots) receives a fixed share of the failures, the
//! remainder falls uniformly. A Polya urn and a uniform baseline are kept
//! as alternative hypotheses for the ablation benches. Tsubame-2
//! additionally places software failures on previously failure-free nodes,
//! reflecting the paper's observation that multi-failure Tsubame-2 nodes
//! saw 352 hardware failures but only a single software failure.

use failtypes::{Category, NodeId, RackId, SystemSpec};
use rand::{Rng, RngCore};

use crate::calib;
use crate::model::{NodeSelection, SystemModel};

/// Stateful node selector implementing the model's placement policy.
#[derive(Debug)]
pub struct NodeAssigner {
    nodes: u32,
    selection: NodeSelection,
    software_fresh: bool,
    /// One entry per past failure, naming its node — the urn's "balls".
    history: Vec<NodeId>,
    /// Per-node failure counts.
    counts: Vec<u32>,
    /// Nodes that have never failed (for the fresh-node rule); swap-removed
    /// as they get used.
    fresh: Vec<NodeId>,
    /// The defective pool, when the policy uses one.
    pool: Vec<NodeId>,
}

impl NodeAssigner {
    /// Creates an assigner for the model's system, drawing the defective
    /// pool (if the policy has one) from `rng`.
    pub fn new(model: &SystemModel, rng: &mut dyn RngCore) -> Self {
        let nodes = model.spec.nodes();
        let pool = match model.node_selection {
            NodeSelection::DefectivePool { pool_size, .. } => {
                sample_rack_biased_pool(&model.spec, pool_size.min(nodes), rng)
            }
            _ => Vec::new(),
        };
        NodeAssigner {
            nodes,
            selection: model.node_selection,
            software_fresh: model.software_prefers_fresh_nodes,
            history: Vec::new(),
            counts: vec![0; nodes as usize],
            fresh: (0..nodes).map(NodeId::new).collect(),
            pool,
        }
    }

    /// Picks the node for the next failure of the given category and
    /// records the outcome.
    pub fn assign(&mut self, category: Category, rng: &mut dyn RngCore) -> NodeId {
        let node = if self.software_fresh && category.is_software() {
            self.pick_fresh(rng)
        } else {
            match self.selection {
                NodeSelection::Uniform => NodeId::new(rng.gen_range(0..self.nodes)),
                NodeSelection::DefectivePool { pool_share, .. } => {
                    if !self.pool.is_empty() && rng.gen::<f64>() < pool_share {
                        self.pool[rng.gen_range(0..self.pool.len())]
                    } else {
                        NodeId::new(rng.gen_range(0..self.nodes))
                    }
                }
                NodeSelection::PolyaUrn {
                    base,
                    reinforcement,
                } => self.pick_urn(base, reinforcement, rng),
            }
        };
        self.record(node);
        node
    }

    fn pick_fresh(&mut self, rng: &mut dyn RngCore) -> NodeId {
        if self.fresh.is_empty() {
            // Every node has failed already; fall back to uniform.
            return NodeId::new(rng.gen_range(0..self.nodes));
        }
        let idx = rng.gen_range(0..self.fresh.len());
        self.fresh[idx]
    }

    fn pick_urn(&mut self, base: f64, reinforcement: f64, rng: &mut dyn RngCore) -> NodeId {
        let base_total = base * self.nodes as f64;
        let reinf_total = reinforcement * self.history.len() as f64;
        let u: f64 = rng.gen::<f64>() * (base_total + reinf_total);
        if u < base_total || self.history.is_empty() {
            // Base mass: uniform over all nodes.
            NodeId::new(rng.gen_range(0..self.nodes))
        } else {
            // Reinforcement mass: proportional to past failures — pick a
            // uniformly random past ball.
            self.history[rng.gen_range(0..self.history.len())]
        }
    }

    fn record(&mut self, node: NodeId) {
        let idx = node.index() as usize;
        if self.counts[idx] == 0 {
            // Swap-remove the node from the fresh list.
            if let Some(pos) = self.fresh.iter().position(|&n| n == node) {
                self.fresh.swap_remove(pos);
            }
        }
        self.counts[idx] += 1;
        self.history.push(node);
    }

    /// Per-node failure counts so far.
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// The defective pool in use (empty for other policies).
    pub fn pool(&self) -> &[NodeId] {
        &self.pool
    }
}

/// Draws `k` distinct node ids uniformly from `0..nodes` (partial
/// Fisher–Yates). Retained as the unbiased baseline the tests compare
/// the rack-biased sampler against.
#[cfg_attr(not(test), allow(dead_code))]
fn sample_distinct_nodes(nodes: u32, k: u32, rng: &mut dyn RngCore) -> Vec<NodeId> {
    let mut ids: Vec<u32> = (0..nodes).collect();
    let k = k.min(nodes) as usize;
    for i in 0..k {
        let j = rng.gen_range(i..ids.len());
        ids.swap(i, j);
    }
    ids.truncate(k);
    ids.into_iter().map(NodeId::new).collect()
}

/// Draws `k` distinct defective nodes, preferentially from a random
/// subset of "hot" racks (see `calib::rack`), producing the rack-level
/// non-uniformity field studies report.
fn sample_rack_biased_pool(spec: &SystemSpec, k: u32, rng: &mut dyn RngCore) -> Vec<NodeId> {
    let racks = spec.racks();
    let hot_count = ((racks as f64 * calib::rack::HOT_FRACTION).round() as u32)
        .clamp(1, racks);
    // Choose the hot racks.
    let mut rack_ids: Vec<u32> = (0..racks).collect();
    for i in 0..hot_count as usize {
        let j = rng.gen_range(i..rack_ids.len());
        rack_ids.swap(i, j);
    }
    let hot: Vec<RackId> = rack_ids[..hot_count as usize]
        .iter()
        .map(|&r| RackId::new(r))
        .collect();
    let hot_nodes: Vec<NodeId> = hot.iter().flat_map(|&r| spec.rack_nodes(r)).collect();

    let mut pool = Vec::with_capacity(k as usize);
    let mut in_pool = vec![false; spec.nodes() as usize];
    let mut guard = 0u32;
    while (pool.len() as u32) < k {
        // Bail out to uniform filling if the hot racks are exhausted.
        guard += 1;
        let node = if rng.gen::<f64>() < calib::rack::HOT_POOL_SHARE
            && guard < 50 * k
            && !hot_nodes.is_empty()
        {
            hot_nodes[rng.gen_range(0..hot_nodes.len())]
        } else {
            NodeId::new(rng.gen_range(0..spec.nodes()))
        };
        let idx = node.index() as usize;
        if !in_pool[idx] {
            in_pool[idx] = true;
            pool.push(node);
        }
    }
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SystemModel;
    use failtypes::{T2Category, T3Category};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn node_count_histogram(counts: &[u32]) -> failstats::CountHistogram {
        counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| c as u64)
            .collect()
    }

    #[test]
    fn uniform_selection_spreads_failures() {
        let mut model = SystemModel::tsubame2();
        model.node_selection = NodeSelection::Uniform;
        model.software_prefers_fresh_nodes = false;
        let mut rng = StdRng::seed_from_u64(1);
        let mut assigner = NodeAssigner::new(&model, &mut rng);
        for _ in 0..897 {
            assigner.assign(Category::T2(T2Category::Gpu), &mut rng);
        }
        let hist = node_count_histogram(assigner.counts());
        // With 897 failures on 1408 nodes uniformly, nodes with exactly
        // one failure dominate heavily (~75%+) and deep repeats are rare.
        assert!(hist.fraction_of(1) > 0.70);
        assert!(hist.max_value().unwrap() <= 5);
        assert!(assigner.pool().is_empty());
    }

    #[test]
    fn defective_pool_creates_dip_then_tail() {
        let model = SystemModel::tsubame2();
        let mut rng = StdRng::seed_from_u64(2);
        let mut assigner = NodeAssigner::new(&model, &mut rng);
        assert_eq!(assigner.pool().len(), 165);
        for _ in 0..777 {
            assigner.assign(Category::T2(T2Category::Gpu), &mut rng);
        }
        let hist = node_count_histogram(assigner.counts());
        // Deep repeat offenders exist (uniform placement caps around 4-5).
        assert!(hist.max_value().unwrap() > 5);
        // And exactly-one nodes still dominate.
        assert!(hist.fraction_of(1) > hist.fraction_of(2) * 3.0);
    }

    #[test]
    fn urn_selection_creates_repeat_offenders() {
        let mut model = SystemModel::tsubame2();
        model.node_selection = NodeSelection::PolyaUrn {
            base: 1.0,
            reinforcement: 4.0,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let mut assigner = NodeAssigner::new(&model, &mut rng);
        for _ in 0..777 {
            assigner.assign(Category::T2(T2Category::Gpu), &mut rng);
        }
        let hist = node_count_histogram(assigner.counts());
        assert!(hist.max_value().unwrap() > 5);
    }

    #[test]
    fn fresh_rule_sends_software_to_untouched_nodes() {
        let model = SystemModel::tsubame2();
        let mut rng = StdRng::seed_from_u64(3);
        let mut assigner = NodeAssigner::new(&model, &mut rng);
        // Seed hardware failures to create hot nodes.
        for _ in 0..300 {
            assigner.assign(Category::T2(T2Category::Gpu), &mut rng);
        }
        let before = assigner.counts().to_vec();
        // Now software failures: all must land on previously untouched
        // nodes.
        for _ in 0..50 {
            let node = assigner.assign(Category::T2(T2Category::OtherSw), &mut rng);
            assert_eq!(before[node.index() as usize], 0, "landed on a hot node");
        }
    }

    #[test]
    fn fresh_rule_falls_back_when_exhausted() {
        let mut model = SystemModel::tsubame2();
        // Shrink the system so fresh nodes run out quickly.
        model.spec = failtypes::SystemSpec::builder("tiny")
            .nodes(4)
            .gpus_per_node(3)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut assigner = NodeAssigner::new(&model, &mut rng);
        for _ in 0..40 {
            let node = assigner.assign(Category::T2(T2Category::OtherSw), &mut rng);
            assert!(node.index() < 4);
        }
        assert_eq!(assigner.counts().iter().sum::<u32>(), 40);
    }

    #[test]
    fn t3_software_repeats_on_nodes() {
        // Tsubame-3 has no fresh-node rule: software failures also land on
        // the defective pool and repeat.
        let model = SystemModel::tsubame3();
        assert!(!model.software_prefers_fresh_nodes);
        let mut rng = StdRng::seed_from_u64(5);
        let mut assigner = NodeAssigner::new(&model, &mut rng);
        for _ in 0..171 {
            assigner.assign(Category::T3(T3Category::Software), &mut rng);
        }
        let hist = node_count_histogram(assigner.counts());
        assert!(hist.fraction_above(1) > 0.2);
    }

    #[test]
    fn assignments_are_deterministic() {
        let model = SystemModel::tsubame3();
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut assigner = NodeAssigner::new(&model, &mut rng);
            (0..100)
                .map(|_| assigner.assign(Category::T3(T3Category::Gpu), &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn rack_biased_pool_concentrates_in_hot_racks() {
        let spec = failtypes::SystemSpec::tsubame2();
        let mut rng = StdRng::seed_from_u64(11);
        let pool = sample_rack_biased_pool(&spec, 165, &mut rng);
        assert_eq!(pool.len(), 165);
        let mut seen = std::collections::HashSet::new();
        for n in &pool {
            assert!(seen.insert(*n), "duplicate node {n}");
        }
        // Count pool nodes per rack: the busiest ~30% of racks should
        // hold well over their uniform share.
        let mut per_rack = vec![0usize; spec.racks() as usize];
        for n in &pool {
            per_rack[spec.rack_of(*n).index() as usize] += 1;
        }
        per_rack.sort_unstable_by(|a, b| b.cmp(a));
        let hot_racks = (spec.racks() as f64 * 0.3).round() as usize;
        let top: usize = per_rack[..hot_racks].iter().sum();
        assert!(
            top as f64 > 0.55 * pool.len() as f64,
            "top racks hold {top} of {}",
            pool.len()
        );
    }

    #[test]
    fn distinct_node_sampling() {
        let mut rng = StdRng::seed_from_u64(6);
        let sample = sample_distinct_nodes(100, 40, &mut rng);
        assert_eq!(sample.len(), 40);
        let mut seen = std::collections::HashSet::new();
        for n in &sample {
            assert!(n.index() < 100);
            assert!(seen.insert(*n), "duplicate node in pool");
        }
        // Requesting more than available clamps.
        assert_eq!(sample_distinct_nodes(5, 10, &mut rng).len(), 5);
    }
}
