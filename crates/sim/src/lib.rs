//! Calibrated discrete-event failure/repair simulator for multi-GPU
//! supercomputer fleets.
//!
//! The Tsubame failure logs the DSN 2021 field study analyzed are closed
//! data. This crate substitutes them with a generative model calibrated
//! against every aggregate the paper publishes: the category mix (Fig. 2),
//! software root loci (Fig. 3), per-node repeat behaviour (Fig. 4), GPU
//! slot skew (Fig. 5), multi-GPU involvement (Table III), TBF and TTR
//! distributions (Figs. 6-7, 9-10), multi-GPU temporal clustering
//! (Fig. 8), and monthly modulation (Figs. 11-12). See [`calib`] for
//! the per-number provenance.
//!
//! The output is an ordinary [`failtypes::FailureLog`], so the analysis
//! toolkit cannot tell a generated log from a parsed one — which is the
//! point: the round trip *generate → analyze → compare to the paper*
//! validates the analysis code end to end.
//!
//! # Examples
//!
//! Generate both systems' logs and a hypothetical 8-GPU-per-node machine:
//!
//! ```
//! use failsim::{ScenarioBuilder, Simulator, SystemModel};
//!
//! let t2 = Simulator::new(SystemModel::tsubame2(), 42).generate()?;
//! let t3 = Simulator::new(SystemModel::tsubame3(), 43).generate()?;
//! assert_eq!((t2.len(), t3.len()), (897, 338));
//!
//! let hypo = ScenarioBuilder::new("8-gpu-node")
//!     .gpus_per_node(8)
//!     .window_days(365)
//!     .build()
//!     .expect("valid scenario");
//! let log = Simulator::new(hypo, 44).generate()?;
//! assert!(!log.is_empty());
//! # Ok::<(), failtypes::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

pub mod arrivals;
pub mod calib;
mod generator;
mod model;
mod multigpu;
mod replay;
mod spatial;

pub use generator::Simulator;
pub use replay::ReplayClock;
pub use model::{
    CategoryMix, ClusteringMode, InvolvementModel, NodeSelection, ScenarioBuilder, SlotSkew,
    SystemModel, TbfModel, TtrModel,
};
pub use multigpu::{assign_involvement, Involvement};
pub use spatial::NodeAssigner;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Simulator>();
        assert_send_sync::<SystemModel>();
        assert_send_sync::<ScenarioBuilder>();
    }
}
