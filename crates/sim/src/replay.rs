//! A pacing clock for replaying simulated logs as live streams.
//!
//! A field log spans months of wall time; a monitor demo or test cannot.
//! [`ReplayClock`] maps simulated hours onto wall-clock time at a
//! configurable acceleration: `hours_per_second` simulated hours elapse
//! per real second, and [`ReplayClock::unpaced`] removes pacing entirely
//! (every sleep is zero) so the same replay loop drives both a
//! real-time-scaled demo and a flat-out equivalence test.
//!
//! The clock is deliberately *not* an event source — `failwatch` decides
//! what to emit; the clock only answers "how long until this simulated
//! timestamp is due?", keyed off a start instant captured at
//! construction so pacing drift does not accumulate across events.

use std::time::{Duration, Instant};

/// Maps simulated hours to wall-clock delays at a fixed acceleration.
#[derive(Debug, Clone)]
pub struct ReplayClock {
    start: Instant,
    /// Simulated hours per wall second; `None` disables pacing.
    hours_per_second: Option<f64>,
}

impl ReplayClock {
    /// A clock replaying `hours_per_second` simulated hours per real
    /// second, anchored at the current instant. Values that are not
    /// finite and positive disable pacing (same as [`unpaced`]).
    ///
    /// [`unpaced`]: ReplayClock::unpaced
    pub fn new(hours_per_second: f64) -> Self {
        let rate = (hours_per_second.is_finite() && hours_per_second > 0.0)
            .then_some(hours_per_second);
        ReplayClock {
            start: Instant::now(),
            hours_per_second: rate,
        }
    }

    /// A clock that never waits: every simulated timestamp is already
    /// due. This is the `--accel max` mode.
    pub fn unpaced() -> Self {
        ReplayClock {
            start: Instant::now(),
            hours_per_second: None,
        }
    }

    /// Whether this clock paces at all.
    pub fn is_paced(&self) -> bool {
        self.hours_per_second.is_some()
    }

    /// How much longer to wait before the event at `sim_hours` is due;
    /// zero when it is already due (or the clock is unpaced).
    pub fn delay_until(&self, sim_hours: f64) -> Duration {
        let Some(rate) = self.hours_per_second else {
            return Duration::ZERO;
        };
        let due = Duration::from_secs_f64((sim_hours / rate).max(0.0));
        due.saturating_sub(self.start.elapsed())
    }

    /// Sleeps until the event at `sim_hours` is due (no-op if already
    /// due or unpaced).
    pub fn sleep_until(&self, sim_hours: f64) {
        let delay = self.delay_until(sim_hours);
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
    }

    /// The simulated time corresponding to "now", in hours. Unpaced
    /// clocks report `f64::INFINITY` (everything is due).
    pub fn now_hours(&self) -> f64 {
        match self.hours_per_second {
            Some(rate) => self.start.elapsed().as_secs_f64() * rate,
            None => f64::INFINITY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unpaced_never_waits() {
        let clock = ReplayClock::unpaced();
        assert!(!clock.is_paced());
        assert_eq!(clock.delay_until(1.0e9), Duration::ZERO);
        assert_eq!(clock.now_hours(), f64::INFINITY);
    }

    #[test]
    fn degenerate_rates_disable_pacing() {
        assert!(!ReplayClock::new(0.0).is_paced());
        assert!(!ReplayClock::new(-3.0).is_paced());
        assert!(!ReplayClock::new(f64::NAN).is_paced());
        assert!(ReplayClock::new(100.0).is_paced());
    }

    #[test]
    fn paced_delay_scales_with_rate() {
        // 3600 sim-hours per second: 1 sim-hour is due after ~1 ms.
        let clock = ReplayClock::new(3600.0);
        let d = clock.delay_until(3600.0);
        assert!(d <= Duration::from_secs(1));
        assert!(clock.delay_until(0.0) == Duration::ZERO);
        // A far-future event needs a long wait.
        assert!(clock.delay_until(36_000.0) > Duration::from_secs(5));
    }

    #[test]
    fn sleep_until_returns_promptly_for_due_events() {
        let clock = ReplayClock::new(1.0e9);
        let t0 = Instant::now();
        clock.sleep_until(1.0);
        assert!(t0.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn now_advances_monotonically() {
        let clock = ReplayClock::new(1000.0);
        let a = clock.now_hours();
        let b = clock.now_hours();
        assert!(b >= a);
        assert!(a >= 0.0);
    }
}
