//! System-wide failure arrival times.
//!
//! The generator draws the exact number of inter-arrival gaps from the
//! calibrated TBF family, normalizes them to the observation window (a
//! pure rescale, which preserves the family since all four families are
//! scale families in their scale parameter), and then applies a
//! piecewise-constant monthly intensity via the time-rescaling theorem so
//! that months with a higher multiplier receive proportionally more
//! events (Fig. 12) without changing the TBF distribution's shape beyond
//! the mild local stretch.

use failtypes::{Hours, Month, ObservationWindow};
use rand::RngCore;

use crate::model::SystemModel;

/// A piecewise-constant monthly intensity over an observation window.
///
/// Maps "operational time" (in which arrivals are a stationary renewal
/// process) to calendar time, compressing high-intensity months.
#[derive(Debug, Clone)]
pub struct MonthlyIntensity {
    /// Segment boundaries in calendar hours from window start; one entry
    /// per month the window touches, plus the final boundary.
    boundaries: Vec<f64>,
    /// Intensity multiplier per segment.
    multipliers: Vec<f64>,
}

impl MonthlyIntensity {
    /// Builds the intensity profile for a window from per-calendar-month
    /// multipliers (January..December).
    pub fn new(window: ObservationWindow, monthly: &[f64; 12]) -> Self {
        Self::with_trend(window, monthly, (1.0, 1.0))
    }

    /// Like [`MonthlyIntensity::new`], with a linear rate trend layered on
    /// top: the multiplier ramps from `trend.0` at the window start to
    /// `trend.1` at the end, evaluated at each month's midpoint
    /// (piecewise-constant approximation).
    pub fn with_trend(
        window: ObservationWindow,
        monthly: &[f64; 12],
        trend: (f64, f64),
    ) -> Self {
        let months = window.months();
        let total = window.duration().get();
        let mut boundaries = vec![0.0];
        let mut multipliers = Vec::with_capacity(months.len());
        for (i, &(year, month)) in months.iter().enumerate() {
            let seg_end = if i + 1 == months.len() {
                total
            } else {
                // Hours from window start to the first day of the next
                // month.
                let (ny, nm) = next_month(year, month);
                let next_first = failtypes::Date::new(ny, nm.number(), 1).expect("valid date");
                window.start().hours_until(next_first).get()
            };
            let seg_start = *boundaries.last().expect("seeded with 0.0");
            let midpoint = 0.5 * (seg_start + seg_end) / total;
            let trend_factor = trend.0 + (trend.1 - trend.0) * midpoint;
            boundaries.push(seg_end);
            multipliers.push(monthly[month.index()] * trend_factor);
        }
        MonthlyIntensity {
            boundaries,
            multipliers,
        }
    }

    /// Total operational time of the window (`∫ λ dt`).
    pub fn total_operational(&self) -> f64 {
        self.boundaries
            .windows(2)
            .zip(&self.multipliers)
            .map(|(b, &m)| (b[1] - b[0]) * m)
            .sum()
    }

    /// Maps an operational-time coordinate to calendar hours from window
    /// start. Clamps to the window end.
    pub fn to_calendar(&self, tau: f64) -> f64 {
        let mut remaining = tau.max(0.0);
        for (seg, &m) in self.boundaries.windows(2).zip(&self.multipliers) {
            let (lo, hi) = (seg[0], seg[1]);
            let op_len = (hi - lo) * m;
            if remaining <= op_len {
                return lo + remaining / m;
            }
            remaining -= op_len;
        }
        *self.boundaries.last().expect("at least one boundary")
    }

    /// The multiplier in effect at a calendar hour offset.
    pub fn multiplier_at(&self, t: f64) -> f64 {
        for (seg, &m) in self.boundaries.windows(2).zip(&self.multipliers) {
            if t < seg[1] {
                return m;
            }
        }
        *self.multipliers.last().expect("at least one segment")
    }
}

fn next_month(year: i32, month: Month) -> (i32, Month) {
    if month.number() == 12 {
        (year + 1, Month::new(1).expect("valid month"))
    } else {
        (year, Month::new(month.number() + 1).expect("valid month"))
    }
}

/// Generates exactly `n` event times (hours from window start, strictly
/// inside the window, ascending) according to the model's TBF family and
/// monthly rate profile.
pub fn generate_times(model: &SystemModel, n: usize, rng: &mut dyn RngCore) -> Vec<Hours> {
    if n == 0 {
        return Vec::new();
    }
    let window_hours = model.window.duration().get();
    let mean = window_hours / n as f64;
    let dist = model.tbf.distribution(mean);
    // Draw n + 1 gaps; the (n+1)-th pins the distance from the last event
    // to the window end so the rescale does not bias the last gap short.
    let mut gaps: Vec<f64> = (0..=n).map(|_| dist.sample(rng)).collect();
    let total: f64 = gaps.iter().sum();
    let intensity =
        MonthlyIntensity::with_trend(model.window, &model.monthly_rate, model.rate_trend);
    let op_total = intensity.total_operational();
    // Rescale operational time so the n-th event lands strictly inside.
    let scale = op_total / total;
    for g in &mut gaps {
        *g *= scale;
    }
    let mut out = Vec::with_capacity(n);
    let mut tau = 0.0;
    for &g in gaps.iter().take(n) {
        tau += g;
        let t = intensity.to_calendar(tau).min(window_hours * (1.0 - 1e-12));
        out.push(Hours::new(t));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SystemModel;
    use failtypes::Date;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn flat_window() -> ObservationWindow {
        ObservationWindow::new(
            Date::new(2019, 1, 1).unwrap(),
            Date::new(2020, 1, 1).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn flat_intensity_is_identity() {
        let intensity = MonthlyIntensity::new(flat_window(), &[1.0; 12]);
        let total = flat_window().duration().get();
        assert!((intensity.total_operational() - total).abs() < 1e-6);
        for &tau in &[0.0, 100.0, 4000.0, total - 1.0] {
            assert!((intensity.to_calendar(tau) - tau).abs() < 1e-6, "tau {tau}");
        }
        assert_eq!(intensity.multiplier_at(10.0), 1.0);
    }

    #[test]
    fn intensity_compresses_hot_months() {
        // Double intensity in January only.
        let mut monthly = [1.0; 12];
        monthly[0] = 2.0;
        let intensity = MonthlyIntensity::new(flat_window(), &monthly);
        // January contributes 31·24·2 operational hours.
        let jan_op = 31.0 * 24.0 * 2.0;
        assert!((intensity.to_calendar(jan_op) - 31.0 * 24.0).abs() < 1e-6);
        // Halfway through January's operational time is halfway through
        // January's calendar time.
        assert!((intensity.to_calendar(jan_op / 2.0) - 31.0 * 12.0).abs() < 1e-6);
        assert_eq!(intensity.multiplier_at(5.0), 2.0);
        assert_eq!(intensity.multiplier_at(31.0 * 24.0 + 5.0), 1.0);
    }

    #[test]
    fn to_calendar_clamps_beyond_window() {
        let intensity = MonthlyIntensity::new(flat_window(), &[1.0; 12]);
        let total = flat_window().duration().get();
        assert_eq!(intensity.to_calendar(total * 10.0), total);
        assert_eq!(intensity.to_calendar(-5.0), 0.0);
    }

    #[test]
    fn generate_exact_count_sorted_in_window() {
        let model = SystemModel::tsubame3();
        let mut rng = StdRng::seed_from_u64(7);
        let times = generate_times(&model, 338, &mut rng);
        assert_eq!(times.len(), 338);
        let w = model.window.duration().get();
        for pair in times.windows(2) {
            assert!(pair[0] <= pair[1]);
        }
        for t in &times {
            assert!(t.get() >= 0.0 && t.get() < w);
        }
    }

    #[test]
    fn generated_mtbf_matches_target() {
        let model = SystemModel::tsubame2();
        let mut rng = StdRng::seed_from_u64(11);
        let times = generate_times(&model, 897, &mut rng);
        let gaps: Vec<f64> = times.windows(2).map(|p| (p[1] - p[0]).get()).collect();
        let mean = failstats::mean(&gaps).unwrap();
        assert!((mean - 15.3).abs() < 1.5, "mean gap {mean}");
    }

    #[test]
    fn zero_events_is_empty() {
        let model = SystemModel::tsubame3();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(generate_times(&model, 0, &mut rng).is_empty());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let model = SystemModel::tsubame3();
        let a = generate_times(&model, 100, &mut StdRng::seed_from_u64(5));
        let b = generate_times(&model, 100, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
        let c = generate_times(&model, 100, &mut StdRng::seed_from_u64(6));
        assert_ne!(a, c);
    }

    #[test]
    fn wear_out_trend_concentrates_events_late() {
        let mut model = SystemModel::tsubame3();
        model.rate_trend = (0.3, 3.0);
        let mut rng = StdRng::seed_from_u64(17);
        let times = generate_times(&model, 1000, &mut rng);
        let horizon = model.window.duration().get();
        let late = times.iter().filter(|t| t.get() > horizon / 2.0).count();
        assert!(late > 650, "late events {late}");
    }

    #[test]
    fn burn_in_trend_concentrates_events_early() {
        let mut model = SystemModel::tsubame3();
        model.rate_trend = (3.0, 0.3);
        let mut rng = StdRng::seed_from_u64(18);
        let times = generate_times(&model, 1000, &mut rng);
        let horizon = model.window.duration().get();
        let early = times.iter().filter(|t| t.get() < horizon / 2.0).count();
        assert!(early > 650, "early events {early}");
    }

    #[test]
    fn hot_months_receive_more_events() {
        // An extreme profile to make the effect unmistakable.
        let mut model = SystemModel::tsubame3();
        let mut monthly = [0.5; 12];
        monthly[6] = 6.0; // July
        model.monthly_rate = monthly;
        let mut rng = StdRng::seed_from_u64(13);
        let times = generate_times(&model, 2000, &mut rng);
        let mut july = 0;
        for t in &times {
            let date = model.window.date_of(*t);
            if date.month().number() == 7 {
                july += 1;
            }
        }
        // July holds ~3 of ~33.5 months but ~6/0.5 = 12x the weight; it
        // should clearly exceed its uniform share of ~180.
        assert!(july > 500, "july events {july}");
    }
}
