//! Calibration constants, each traced to the statement of the paper it
//! comes from.
//!
//! The raw Tsubame logs are closed; every number below is either reported
//! directly by the paper (marked *exact*) or chosen to be consistent with a
//! qualitative statement (marked *assumed*, with the statement quoted).
//! The unit tests at the bottom pin the aggregate identities (totals,
//! headline percentages) so calibration edits cannot silently drift.

use failtypes::{SoftwareLocus, T2Category, T3Category};

/// Total failures in the Tsubame-2 log (*exact*: "Tsubame-2 failure log
/// with 897 failures").
pub const T2_TOTAL_FAILURES: u32 = 897;

/// Total failures in the Tsubame-3 log (*exact*: "Tsubame-3 failure log
/// with 338 failures").
pub const T3_TOTAL_FAILURES: u32 = 338;

/// Tsubame-2 failure counts per category, summing to
/// [`T2_TOTAL_FAILURES`].
///
/// Anchors: GPU = 44.37% (*exact*, Fig. 2a), CPU = 1.78% (*exact*,
/// Fig. 2a), SSD ≈ 4% (*exact*, Fig. 10 discussion). The paper names fan,
/// network, and software among the dominant remaining types (*assumed*
/// split consistent with "a few failure types dominate ... GPU, fan,
/// network, software").
pub const T2_CATEGORY_COUNTS: &[(T2Category, u32)] = &[
    (T2Category::Gpu, 398),         // 44.37% of 897 (exact)
    (T2Category::Cpu, 16),          // 1.78% of 897 (exact)
    (T2Category::Fan, 100),         // dominant type (assumed)
    (T2Category::Network, 72),      // dominant type (assumed)
    (T2Category::OtherSw, 56),      // dominant software share (assumed)
    (T2Category::Infiniband, 42),   // (assumed)
    (T2Category::Ssd, 36),          // ~4% of all failures (exact)
    (T2Category::Pbs, 30),          // (assumed)
    (T2Category::Boot, 24),         // (assumed)
    (T2Category::Down, 22),         // (assumed)
    (T2Category::Memory, 20),       // (assumed)
    (T2Category::Disk, 18),         // (assumed)
    (T2Category::SystemBoard, 17),  // (assumed)
    (T2Category::Psu, 14),          // (assumed)
    (T2Category::OtherHw, 14),      // (assumed)
    (T2Category::Vm, 10),           // (assumed)
    (T2Category::Rack, 8),          // (assumed)
];

/// Tsubame-3 failure counts per category, summing to
/// [`T3_TOTAL_FAILURES`].
///
/// Anchors: Software = 50.59% → 171 events, the "171 reported root loci"
/// of Fig. 3 (*exact*); GPU = 27.81% (*exact*); CPU = 3.25% (*exact*);
/// power board ≈ 1% (*exact*, Fig. 10 discussion). Remaining categories
/// are split plausibly (*assumed*).
pub const T3_CATEGORY_COUNTS: &[(T3Category, u32)] = &[
    (T3Category::Software, 171),      // 50.59% of 338 (exact)
    (T3Category::Gpu, 94),            // 27.81% of 338 (exact)
    (T3Category::Cpu, 11),            // 3.25% of 338 (exact)
    (T3Category::GpuDriver, 10),      // (assumed)
    (T3Category::OmniPath, 9),        // (assumed)
    (T3Category::Memory, 7),          // (assumed)
    (T3Category::Disk, 6),            // (assumed)
    (T3Category::Unknown, 6),         // (assumed)
    (T3Category::Lustre, 4),          // "lustre bugs are relatively low"
    (T3Category::Crc, 4),             // (assumed)
    (T3Category::Sxm2Cable, 3),       // (assumed)
    (T3Category::Sxm2Board, 3),       // (assumed)
    (T3Category::PowerBoard, 3),      // ~1% of failures (exact)
    (T3Category::IpMotherboard, 3),   // (assumed)
    (T3Category::RibbonCable, 2),     // (assumed)
    (T3Category::LedFrontPanel, 2),   // (assumed)
];

/// Root-locus counts for the 171 Tsubame-3 software failures (Fig. 3).
///
/// Anchors: GPU-driver problems ≈ 43% → 74 (*exact*), unknown cause ≈ 20%
/// → 34 (*exact*), "kernel panics and lustre bugs are relatively low"
/// (*exact*, small counts). Sixteen loci, matching the number of causes
/// Fig. 3 plots; the remaining split is *assumed*.
pub const T3_SOFTWARE_LOCUS_COUNTS: &[(SoftwareLocus, u32)] = &[
    (SoftwareLocus::GpuDriverProblem, 74),   // ~43% (exact)
    (SoftwareLocus::UnknownCause, 34),       // ~20% (exact)
    (SoftwareLocus::CudaVersionMismatch, 9), // named cause (assumed count)
    (SoftwareLocus::OmniPathDriver, 8),      // named cause (assumed count)
    (SoftwareLocus::MpiLibrary, 6),          // (assumed)
    (SoftwareLocus::GpuDirect, 7),           // named cause (assumed count)
    (SoftwareLocus::FilesystemClient, 5),    // (assumed)
    (SoftwareLocus::JobScheduler, 5),        // (assumed)
    (SoftwareLocus::OsService, 4),           // (assumed)
    (SoftwareLocus::NodeHealthCheck, 3),     // (assumed)
    (SoftwareLocus::ContainerRuntime, 3),    // (assumed)
    (SoftwareLocus::MlFrameworkStack, 3),    // (assumed)
    (SoftwareLocus::FirmwareMismatch, 3),    // (assumed)
    (SoftwareLocus::KernelPanic, 3),         // "relatively low" (exact)
    (SoftwareLocus::LustreClientBug, 2),     // "relatively low" (exact)
    (SoftwareLocus::AuthLdap, 2),            // (assumed)
];

/// Tsubame-2 system-wide TBF model: exponential.
///
/// *Exact*: MTBF ≈ 15 h and "75% of the failures on Tsubame-2 occur within
/// 20 hours of each other" — an exponential with mean 15.3 h has p75 =
/// 15.3·ln 4 ≈ 21 h, so the memoryless family fits the two published
/// anchors simultaneously. The mean itself is window/897 by construction.
pub mod t2_tbf {
    /// The family is exponential; no extra shape parameter.
    pub const FAMILY: &str = "exponential";
}

/// Tsubame-3 system-wide TBF model: gamma with shape 4.
///
/// *Exact anchors*: MTBF = window/338 ≈ 72 h ("more than 70 hours") and
/// p75 = 93 h. An exponential with that mean would put p75 at ≈ 100 h and
/// a log-normal cannot reach p75/mean = 1.29 at any σ; a gamma with shape
/// 4 puts the p75 of the full generation pipeline (including the monthly
/// intensity modulation) at ≈ 93 h.
pub mod t3_tbf {
    /// Gamma shape parameter `k`.
    pub const SHAPE: f64 = 4.0;
}

/// Per-category repair-time models: `(mean hours, log-normal sigma)`.
///
/// *Exact anchors*: MTTR ≈ 55 h on both systems with similar distribution
/// shapes (Fig. 9); hardware categories have higher spread than software
/// (Fig. 10); SSD repairs on Tsubame-2 reach ≈ 290 h; power-board repairs
/// on Tsubame-3 reach ≈ 230 h. Individual means are *assumed* subject to
/// those constraints; the weighted means are pinned by unit test.
pub const T2_TTR_PARAMS: &[(T2Category, f64, f64)] = &[
    (T2Category::Gpu, 63.0, 1.0),
    (T2Category::Cpu, 70.0, 0.9),
    (T2Category::Fan, 45.0, 0.8),
    (T2Category::Network, 45.0, 0.9),
    (T2Category::Infiniband, 50.0, 0.9),
    (T2Category::OtherSw, 30.0, 0.7),
    (T2Category::Pbs, 25.0, 0.6),
    (T2Category::Boot, 20.0, 0.6),
    (T2Category::Down, 35.0, 0.8),
    (T2Category::Ssd, 75.0, 0.8),
    (T2Category::Memory, 55.0, 0.9),
    (T2Category::Disk, 60.0, 1.0),
    (T2Category::SystemBoard, 85.0, 1.1),
    (T2Category::Psu, 75.0, 1.0),
    (T2Category::OtherHw, 65.0, 1.0),
    (T2Category::Vm, 25.0, 0.6),
    (T2Category::Rack, 70.0, 1.0),
];

/// See [`T2_TTR_PARAMS`].
pub const T3_TTR_PARAMS: &[(T3Category, f64, f64)] = &[
    (T3Category::Software, 35.0, 0.8),
    (T3Category::Gpu, 80.0, 1.0),
    (T3Category::Cpu, 90.0, 0.9),
    (T3Category::GpuDriver, 30.0, 0.7),
    (T3Category::OmniPath, 60.0, 0.9),
    (T3Category::Memory, 70.0, 0.9),
    (T3Category::Disk, 65.0, 1.0),
    (T3Category::Unknown, 50.0, 1.0),
    (T3Category::Lustre, 40.0, 0.8),
    (T3Category::Crc, 45.0, 0.9),
    (T3Category::Sxm2Cable, 100.0, 1.0),
    (T3Category::Sxm2Board, 110.0, 1.0),
    (T3Category::PowerBoard, 120.0, 1.1),
    (T3Category::IpMotherboard, 95.0, 1.0),
    (T3Category::RibbonCable, 85.0, 1.0),
    (T3Category::LedFrontPanel, 30.0, 0.8),
];

/// Per-slot GPU failure weights.
///
/// *Exact*: Fig. 5a — Tsubame-2's GPU 1 sees ≈ 20% more failures than
/// GPU 0 / GPU 2; Fig. 5b — Tsubame-3's GPU 0 and GPU 3 see considerably
/// more than GPU 1 / GPU 2. The Tsubame-2 weight is larger than 1.2
/// because double- and triple-GPU failures flatten the measured skew
/// (a triple involves every slot); 1.7 yields the observed ≈ 20% excess
/// after that flattening.
pub const T2_SLOT_WEIGHTS: &[f64] = &[1.0, 1.7, 1.0];
/// See [`T2_SLOT_WEIGHTS`].
pub const T3_SLOT_WEIGHTS: &[f64] = &[1.9, 1.0, 1.05, 2.0];

/// GPU involvement of Tsubame-2 GPU failures (Table III, *exact*):
/// `(gpus involved, count)`. Events beyond the 368 with known involvement
/// carry no involvement data.
pub const T2_INVOLVEMENT_COUNTS: &[(u8, u32)] = &[(1, 112), (2, 128), (3, 128)];
/// GPU failures in the Tsubame-2 log with unknown involvement
/// (398 GPU events − 368 tabulated in Table III).
pub const T2_INVOLVEMENT_UNKNOWN: u32 = 30;

/// GPU involvement of Tsubame-3 GPU failures (Table III, *exact*).
pub const T3_INVOLVEMENT_COUNTS: &[(u8, u32)] = &[(1, 75), (2, 4), (3, 2), (4, 0)];
/// GPU failures in the Tsubame-3 log with unknown involvement
/// (94 GPU events − 81 tabulated in Table III).
pub const T3_INVOLVEMENT_UNKNOWN: u32 = 13;

/// Defective-pool node-selection parameters.
///
/// A random pool of defective nodes absorbs a fixed share of placed
/// failures; the remainder falls uniformly. Tuned so the generated logs
/// land on the *exact* Fig. 4 anchors: Tsubame-2 — "~60% of the nodes
/// experienced only one failure"; Tsubame-3 — "~60% of the nodes
/// experienced more than one failure"; both — "~10% of nodes experienced
/// two failures"; Tsubame-3's three-failure share ≈ 1.5× Tsubame-2's.
pub mod defective {
    /// Tsubame-2 defective nodes (of 1408).
    pub const T2_POOL_SIZE: u32 = 165;
    /// Share of placed Tsubame-2 failures routed into the pool.
    pub const T2_POOL_SHARE: f64 = 0.74;
    /// Tsubame-3 defective nodes (of 540).
    pub const T3_POOL_SIZE: u32 = 68;
    /// Share of placed Tsubame-3 failures routed into the pool.
    pub const T3_POOL_SHARE: f64 = 0.86;
}

/// Rack bias of the defective pool.
///
/// *Exact (qualitative)*: the paper's generalizability discussion notes
/// that "the non-uniform distribution of failures among racks is also
/// present in multi-GPU-per-node systems". The defective pool is drawn
/// preferentially from a random subset of "hot" racks, so rack-level
/// failure counts reject uniformity (verified by chi-square in the
/// analyses); the magnitudes are *assumed*.
pub mod rack {
    /// Fraction of racks designated hot.
    pub const HOT_FRACTION: f64 = 0.3;
    /// Share of defective-pool nodes drawn from hot racks.
    pub const HOT_POOL_SHARE: f64 = 0.75;
}

/// Polya-urn parameters kept as the alternative spatial hypothesis for
/// the `ablate_node_selection` bench (preferential attachment produces a
/// monotone repeat tail, unlike Fig. 4's dip-then-tail shape).
pub mod urn {
    /// Base weight per node.
    pub const BASE: f64 = 1.0;
    /// Reinforcement per prior failure on the node.
    pub const REINFORCEMENT: f64 = 4.0;
}

/// Self-excitation parameters for simultaneous multi-GPU failures.
///
/// *Exact*: Fig. 8 — "a failure where multiple GPUs within a node failed
/// at the same time is likely to be followed by another such failure in
/// close-by time". Window and boost are *assumed* magnitudes that produce
/// clearly super-Poisson clustering without distorting Table III counts
/// (the label-assignment scheme conserves them exactly).
pub mod clustering {
    /// Hours after a multi-GPU failure during which the next GPU failure
    /// is more likely to also be multi-GPU.
    pub const WINDOW_HOURS: f64 = 96.0;
    /// Odds multiplier applied inside the window.
    pub const BOOST: f64 = 6.0;
}

/// Monthly failure-rate multipliers (January..December), mean 1.0.
///
/// Fig. 12 shows month-to-month variation in failure counts without a
/// strong seasonal law; these mild multipliers (*assumed*) reproduce that
/// irregular variation.
pub const T2_MONTHLY_RATE: [f64; 12] = [
    1.10, 0.90, 1.00, 0.95, 1.05, 0.85, 1.15, 1.20, 0.95, 1.00, 0.90, 0.95,
];
/// See [`T2_MONTHLY_RATE`].
pub const T3_MONTHLY_RATE: [f64; 12] = [
    0.95, 1.05, 0.90, 1.10, 1.00, 1.15, 0.85, 1.05, 0.95, 1.10, 0.90, 1.00,
];

/// Monthly TTR multipliers (January..December), applied on top of the
/// per-category repair model.
///
/// *Exact*: "in the second half of the year, time to recovery seems to be
/// higher — this is only true for Tsubame-2. For Tsubame-3, this trend is
/// not true." Tsubame-2 gets a mild second-half uplift; Tsubame-3 gets
/// patternless variation.
pub const T2_MONTHLY_TTR: [f64; 12] = [
    0.90, 0.95, 0.90, 0.95, 1.00, 0.95, 1.10, 1.15, 1.10, 1.05, 1.10, 1.05,
];
/// See [`T2_MONTHLY_TTR`].
pub const T3_MONTHLY_TTR: [f64; 12] = [
    1.05, 0.90, 1.10, 0.95, 1.05, 1.00, 0.95, 1.10, 0.90, 1.00, 1.05, 0.95,
];

#[cfg(test)]
mod tests {
    use super::*;
    use failtypes::{Category, ComponentClass};

    #[test]
    fn category_counts_sum_to_totals() {
        let t2: u32 = T2_CATEGORY_COUNTS.iter().map(|&(_, c)| c).sum();
        assert_eq!(t2, T2_TOTAL_FAILURES);
        let t3: u32 = T3_CATEGORY_COUNTS.iter().map(|&(_, c)| c).sum();
        assert_eq!(t3, T3_TOTAL_FAILURES);
    }

    #[test]
    fn every_category_appears_exactly_once() {
        assert_eq!(T2_CATEGORY_COUNTS.len(), T2Category::ALL.len());
        assert_eq!(T3_CATEGORY_COUNTS.len(), T3Category::ALL.len());
        for &cat in T2Category::ALL {
            assert_eq!(
                T2_CATEGORY_COUNTS.iter().filter(|&&(c, _)| c == cat).count(),
                1
            );
        }
        for &cat in T3Category::ALL {
            assert_eq!(
                T3_CATEGORY_COUNTS.iter().filter(|&&(c, _)| c == cat).count(),
                1
            );
        }
    }

    #[test]
    fn headline_percentages_match_fig2() {
        let count = |cat: T2Category| -> f64 {
            T2_CATEGORY_COUNTS
                .iter()
                .find(|&&(c, _)| c == cat)
                .unwrap()
                .1 as f64
        };
        let total = T2_TOTAL_FAILURES as f64;
        assert!((count(T2Category::Gpu) / total - 0.4437).abs() < 0.002);
        assert!((count(T2Category::Cpu) / total - 0.0178).abs() < 0.002);
        assert!((count(T2Category::Ssd) / total - 0.04).abs() < 0.002);

        let count3 = |cat: T3Category| -> f64 {
            T3_CATEGORY_COUNTS
                .iter()
                .find(|&&(c, _)| c == cat)
                .unwrap()
                .1 as f64
        };
        let total3 = T3_TOTAL_FAILURES as f64;
        assert!((count3(T3Category::Software) / total3 - 0.5059).abs() < 0.002);
        assert!((count3(T3Category::Gpu) / total3 - 0.2781).abs() < 0.002);
        assert!((count3(T3Category::Cpu) / total3 - 0.0325).abs() < 0.002);
        assert!((count3(T3Category::PowerBoard) / total3 - 0.01).abs() < 0.003);
    }

    #[test]
    fn software_loci_match_fig3() {
        let total: u32 = T3_SOFTWARE_LOCUS_COUNTS.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 171); // "171 reported root loci"
        assert_eq!(T3_SOFTWARE_LOCUS_COUNTS.len(), 16); // top 16 causes
        let driver = T3_SOFTWARE_LOCUS_COUNTS
            .iter()
            .find(|&&(l, _)| l == SoftwareLocus::GpuDriverProblem)
            .unwrap()
            .1 as f64;
        assert!((driver / 171.0 - 0.43).abs() < 0.01, "driver share {}", driver / 171.0);
        let unknown = T3_SOFTWARE_LOCUS_COUNTS
            .iter()
            .find(|&&(l, _)| l == SoftwareLocus::UnknownCause)
            .unwrap()
            .1 as f64;
        assert!((unknown / 171.0 - 0.20).abs() < 0.01);
    }

    #[test]
    fn involvement_matches_table3() {
        let t2: u32 = T2_INVOLVEMENT_COUNTS.iter().map(|&(_, c)| c).sum();
        assert_eq!(t2, 368);
        let t3: u32 = T3_INVOLVEMENT_COUNTS.iter().map(|&(_, c)| c).sum();
        assert_eq!(t3, 81);
        // Involvement + unknown equals the GPU category count.
        assert_eq!(t2 + T2_INVOLVEMENT_UNKNOWN, 398);
        assert_eq!(t3 + T3_INVOLVEMENT_UNKNOWN, 94);
        // No four-GPU failures on Tsubame-3.
        assert_eq!(T3_INVOLVEMENT_COUNTS.last(), Some(&(4, 0)));
        // Multi-GPU share: ~70% on T2, ~7.4% on T3.
        assert!((256.0_f64 / 368.0 - 0.6956).abs() < 0.01);
        assert!(((4.0_f64 + 2.0) / 81.0 - 0.074).abs() < 0.01);
    }

    #[test]
    fn ttr_tables_cover_all_categories() {
        assert_eq!(T2_TTR_PARAMS.len(), T2Category::ALL.len());
        assert_eq!(T3_TTR_PARAMS.len(), T3Category::ALL.len());
        for &(_, mean, sigma) in T2_TTR_PARAMS.iter() {
            assert!(mean > 0.0 && sigma > 0.0);
        }
        for &(_, mean, sigma) in T3_TTR_PARAMS.iter() {
            assert!(mean > 0.0 && sigma > 0.0);
        }
    }

    #[test]
    fn weighted_mttr_is_about_55h_on_both_systems() {
        // Fig. 9: "the mean time to recovery (MTTR) is very similar
        // (approx. 55 hours) for both systems".
        let t2: f64 = T2_CATEGORY_COUNTS
            .iter()
            .map(|&(cat, n)| {
                let (_, mean, _) = T2_TTR_PARAMS.iter().find(|&&(c, _, _)| c == cat).unwrap();
                n as f64 * mean
            })
            .sum::<f64>()
            / T2_TOTAL_FAILURES as f64;
        assert!((t2 - 55.0).abs() < 3.0, "T2 weighted MTTR {t2}");

        let t3: f64 = T3_CATEGORY_COUNTS
            .iter()
            .map(|&(cat, n)| {
                let (_, mean, _) = T3_TTR_PARAMS.iter().find(|&&(c, _, _)| c == cat).unwrap();
                n as f64 * mean
            })
            .sum::<f64>()
            / T3_TOTAL_FAILURES as f64;
        assert!((t3 - 55.0).abs() < 3.0, "T3 weighted MTTR {t3}");
        // And the two systems agree with each other.
        assert!((t2 - t3).abs() < 3.0);
    }

    #[test]
    fn hardware_ttr_spread_exceeds_software() {
        // Fig. 10: hardware-related failures have higher recovery-time
        // spread than software failures. Compare count-weighted sigmas.
        let mut hw = (0.0, 0.0);
        let mut sw = (0.0, 0.0);
        for &(cat, n) in T2_CATEGORY_COUNTS {
            let (_, _, sigma) = T2_TTR_PARAMS.iter().find(|&&(c, _, _)| c == cat).unwrap();
            let bucket = if Category::from(cat).is_software() {
                &mut sw
            } else {
                &mut hw
            };
            bucket.0 += n as f64 * sigma;
            bucket.1 += n as f64;
        }
        assert!(hw.0 / hw.1 > sw.0 / sw.1);
    }

    #[test]
    fn slot_weights_match_fig5_shape() {
        // T2: middle slot ~20% above the others.
        assert_eq!(T2_SLOT_WEIGHTS.len(), 3);
        assert!((T2_SLOT_WEIGHTS[1] / T2_SLOT_WEIGHTS[0] - 1.7).abs() < 1e-12);
        // T3: outer slots well above inner slots.
        assert_eq!(T3_SLOT_WEIGHTS.len(), 4);
        assert!(T3_SLOT_WEIGHTS[0] > 1.5 * T3_SLOT_WEIGHTS[1]);
        assert!(T3_SLOT_WEIGHTS[3] > 1.5 * T3_SLOT_WEIGHTS[2]);
    }

    #[test]
    fn monthly_multipliers_average_to_one() {
        for table in [
            &T2_MONTHLY_RATE,
            &T3_MONTHLY_RATE,
            &T2_MONTHLY_TTR,
            &T3_MONTHLY_TTR,
        ] {
            let mean: f64 = table.iter().sum::<f64>() / 12.0;
            assert!((mean - 1.0).abs() < 0.02, "mean multiplier {mean}");
        }
        // T2 TTR uplift is concentrated in the second half of the year.
        let h1: f64 = T2_MONTHLY_TTR[..6].iter().sum();
        let h2: f64 = T2_MONTHLY_TTR[6..].iter().sum();
        assert!(h2 > h1 + 0.5);
        // T3 has no half-year trend.
        let h1: f64 = T3_MONTHLY_TTR[..6].iter().sum();
        let h2: f64 = T3_MONTHLY_TTR[6..].iter().sum();
        assert!((h2 - h1).abs() < 0.3);
    }

    #[test]
    fn gpu_category_is_hardware_gpu_class() {
        // Guard against taxonomy edits breaking the calibration's intent.
        for &(cat, _) in T2_CATEGORY_COUNTS {
            if cat == T2Category::Gpu {
                assert_eq!(Category::from(cat).component_class(), ComponentClass::Gpu);
            }
        }
    }
}
