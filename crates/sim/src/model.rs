//! Generative models of a system's failure behaviour.
//!
//! A [`SystemModel`] bundles everything the generator needs: the system
//! specification and observation window, the exact category mix, the
//! inter-arrival (TBF) family, per-category repair models, spatial skew
//! (node selection and GPU-slot weights), the multi-GPU involvement table,
//! temporal clustering, and monthly modulation. The two canonical models
//! ([`SystemModel::tsubame2`] / [`SystemModel::tsubame3`]) are calibrated
//! from the paper (see [`crate::calib`]); [`ScenarioBuilder`] derives
//! hypothetical systems for what-if studies.

use failtypes::{
    Category, Date, Generation, ObservationWindow, SoftwareLocus, SystemSpec, T3Category,
};
use failstats::{ContinuousDist, Exponential, Gamma, LogNormal, Weibull};
use serde::{Deserialize, Serialize};

use crate::calib;

/// The family of the system-wide time-between-failures distribution.
///
/// The mean is always `window / total_failures`; the family controls the
/// shape around that mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TbfModel {
    /// Memoryless arrivals (Tsubame-2's calibrated family).
    Exponential,
    /// Gamma arrivals with the given shape (Tsubame-3 uses shape 4).
    Gamma {
        /// Gamma shape parameter.
        shape: f64,
    },
    /// Weibull arrivals with the given shape (ablation alternative).
    Weibull {
        /// Weibull shape parameter.
        shape: f64,
    },
    /// Log-normal arrivals with the given log-std (ablation alternative).
    LogNormal {
        /// Log-std `σ`.
        sigma: f64,
    },
}

impl TbfModel {
    /// Instantiates the distribution with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive or a shape parameter is invalid —
    /// model construction validates these, so reaching the panic indicates
    /// a corrupted model.
    pub fn distribution(&self, mean: f64) -> Box<dyn ContinuousDist + Send + Sync> {
        assert!(mean > 0.0, "TBF mean must be positive");
        match *self {
            TbfModel::Exponential => {
                Box::new(Exponential::with_mean(mean).expect("validated mean"))
            }
            TbfModel::Gamma { shape } => {
                Box::new(Gamma::with_mean(mean, shape).expect("validated shape"))
            }
            TbfModel::Weibull { shape } => {
                let scale = mean / failstats::special::ln_gamma(1.0 + 1.0 / shape).exp();
                Box::new(Weibull::new(shape, scale).expect("validated shape"))
            }
            TbfModel::LogNormal { sigma } => {
                Box::new(LogNormal::with_mean(mean, sigma).expect("validated sigma"))
            }
        }
    }
}

/// How failures are placed onto nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NodeSelection {
    /// A small pool of "defective" nodes absorbs a fixed share of the
    /// failures; the rest fall uniformly. This bimodal occupancy (many
    /// one-off nodes plus a heavy repeat-offender tail with a dip at 2-3
    /// failures) is the shape Fig. 4 reports, and matches the paper's
    /// explanation via manufacturing variability and uneven utilization.
    DefectivePool {
        /// Number of defective nodes (drawn uniformly at simulation
        /// start).
        pool_size: u32,
        /// Fraction of placed failures routed into the pool.
        pool_share: f64,
    },
    /// Polya-urn preferential attachment: weight `base + reinforcement ·
    /// prior_failures`. Produces a monotone repeat tail; kept as an
    /// alternative hypothesis for the ablation benches.
    PolyaUrn {
        /// Base weight of every node.
        base: f64,
        /// Additional weight per failure already seen on the node.
        reinforcement: f64,
    },
    /// Uniform placement (ablation baseline; cannot reproduce Fig. 4).
    Uniform,
}

/// How GPU failures are placed onto the GPU slots of a node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SlotSkew {
    /// Calibrated non-uniform weights per slot (Fig. 5).
    Weighted(Vec<f64>),
    /// Uniform slots (ablation baseline).
    Uniform,
}

/// Whether simultaneous multi-GPU failures cluster in time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ClusteringMode {
    /// Self-exciting assignment: within `window_hours` of a multi-GPU
    /// failure, the odds that the next GPU failure is also multi-GPU are
    /// multiplied by `boost` (Fig. 8).
    SelfExciting {
        /// Excitation window in hours.
        window_hours: f64,
        /// Odds multiplier inside the window.
        boost: f64,
    },
    /// Independent assignment (ablation baseline).
    Independent,
}

/// The exact per-category event counts a generated log must contain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CategoryMix {
    entries: Vec<(Category, u32)>,
}

impl CategoryMix {
    /// Creates a mix from `(category, count)` pairs; zero-count entries
    /// are retained (they simply contribute no events).
    ///
    /// Returns `None` when empty or when a category repeats.
    pub fn new(entries: Vec<(Category, u32)>) -> Option<Self> {
        if entries.is_empty() {
            return None;
        }
        for (i, &(c, _)) in entries.iter().enumerate() {
            if entries[i + 1..].iter().any(|&(d, _)| d == c) {
                return None;
            }
        }
        Some(CategoryMix { entries })
    }

    /// Total number of events.
    pub fn total(&self) -> u32 {
        self.entries.iter().map(|&(_, c)| c).sum()
    }

    /// The `(category, count)` entries.
    pub fn entries(&self) -> &[(Category, u32)] {
        &self.entries
    }

    /// Count for one category (zero when absent).
    pub fn count(&self, category: Category) -> u32 {
        self.entries
            .iter()
            .find(|&&(c, _)| c == category)
            .map_or(0, |&(_, n)| n)
    }

    /// Expands the mix into the exact multiset of category labels.
    pub fn to_multiset(&self) -> Vec<Category> {
        let mut out = Vec::with_capacity(self.total() as usize);
        for &(cat, n) in &self.entries {
            out.extend(std::iter::repeat_n(cat, n as usize));
        }
        out
    }

    /// Rescales the mix to a new total using largest-remainder rounding,
    /// preserving proportions as closely as integers allow.
    pub fn scaled_to(&self, new_total: u32) -> CategoryMix {
        let old_total = self.total().max(1) as f64;
        let mut items: Vec<(Category, u32, f64)> = self
            .entries
            .iter()
            .map(|&(c, n)| {
                let exact = n as f64 * new_total as f64 / old_total;
                (c, exact.floor() as u32, exact - exact.floor())
            })
            .collect();
        let assigned: u32 = items.iter().map(|&(_, n, _)| n).sum();
        let mut leftover = new_total.saturating_sub(assigned);
        // Hand the leftover units to the largest remainders.
        let mut order: Vec<usize> = (0..items.len()).collect();
        order.sort_by(|&a, &b| {
            items[b]
                .2
                .partial_cmp(&items[a].2)
                .expect("remainders are finite")
        });
        for &i in &order {
            if leftover == 0 {
                break;
            }
            items[i].1 += 1;
            leftover -= 1;
        }
        CategoryMix {
            entries: items.into_iter().map(|(c, n, _)| (c, n)).collect(),
        }
    }
}

/// Per-category log-normal repair model plus the exact Fig. 3 root-locus
/// mix for software failures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TtrModel {
    /// `(category, mean hours, log-normal sigma)`.
    params: Vec<(Category, f64, f64)>,
}

impl TtrModel {
    /// Creates the model; returns `None` when empty or when any mean or
    /// sigma is non-positive.
    pub fn new(params: Vec<(Category, f64, f64)>) -> Option<Self> {
        if params.is_empty() || params.iter().any(|&(_, m, s)| m <= 0.0 || s <= 0.0 || m.is_nan() || s.is_nan()) {
            return None;
        }
        Some(TtrModel { params })
    }

    /// The repair-time distribution for a category.
    ///
    /// Categories without an explicit entry fall back to the average of
    /// all entries, so a what-if mix never lacks a repair model.
    pub fn distribution(&self, category: Category) -> LogNormal {
        if let Some(&(_, mean, sigma)) = self.params.iter().find(|&&(c, _, _)| c == category) {
            return LogNormal::with_mean(mean, sigma).expect("validated params");
        }
        let n = self.params.len() as f64;
        let mean = self.params.iter().map(|&(_, m, _)| m).sum::<f64>() / n;
        let sigma = self.params.iter().map(|&(_, _, s)| s).sum::<f64>() / n;
        LogNormal::with_mean(mean, sigma).expect("validated params")
    }

    /// The `(category, mean, sigma)` entries.
    pub fn params(&self) -> &[(Category, f64, f64)] {
        &self.params
    }
}

/// The multi-GPU involvement table (Table III) as exact label counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InvolvementModel {
    /// `(gpus involved, count)` with known involvement.
    counts: Vec<(u8, u32)>,
    /// GPU failures with unknown involvement (no slot data recorded).
    unknown: u32,
}

impl InvolvementModel {
    /// Creates the model; returns `None` when a multiplicity is zero or
    /// repeats.
    pub fn new(counts: Vec<(u8, u32)>, unknown: u32) -> Option<Self> {
        for (i, &(k, _)) in counts.iter().enumerate() {
            if k == 0 || counts[i + 1..].iter().any(|&(j, _)| j == k) {
                return None;
            }
        }
        Some(InvolvementModel { counts, unknown })
    }

    /// Total GPU failure events the table describes (known + unknown).
    pub fn total(&self) -> u32 {
        self.known() + self.unknown
    }

    /// GPU failure events with known involvement.
    pub fn known(&self) -> u32 {
        self.counts.iter().map(|&(_, c)| c).sum()
    }

    /// Events with unknown involvement.
    pub fn unknown(&self) -> u32 {
        self.unknown
    }

    /// The `(multiplicity, count)` entries.
    pub fn counts(&self) -> &[(u8, u32)] {
        &self.counts
    }

    /// Number of multi-GPU (≥ 2 involved) events.
    pub fn multi_count(&self) -> u32 {
        self.counts
            .iter()
            .filter(|&&(k, _)| k >= 2)
            .map(|&(_, c)| c)
            .sum()
    }

    /// Rescales all counts to a new total number of GPU events, keeping
    /// proportions (largest-remainder).
    pub fn scaled_to(&self, new_total: u32) -> InvolvementModel {
        let old_total = self.total().max(1) as f64;
        let scale = new_total as f64 / old_total;
        let mut items: Vec<(u8, u32, f64)> = self
            .counts
            .iter()
            .map(|&(k, c)| {
                let exact = c as f64 * scale;
                (k, exact.floor() as u32, exact - exact.floor())
            })
            .collect();
        let unknown_exact = self.unknown as f64 * scale;
        let mut unknown = unknown_exact.floor() as u32;
        let unknown_rem = unknown_exact - unknown_exact.floor();
        let assigned: u32 = items.iter().map(|&(_, n, _)| n).sum::<u32>() + unknown;
        let mut leftover = new_total.saturating_sub(assigned);
        let mut order: Vec<(usize, f64)> = items
            .iter()
            .enumerate()
            .map(|(i, &(_, _, r))| (i, r))
            .chain(std::iter::once((usize::MAX, unknown_rem)))
            .collect();
        order.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("remainders are finite"));
        for &(i, _) in &order {
            if leftover == 0 {
                break;
            }
            if i == usize::MAX {
                unknown += 1;
            } else {
                items[i].1 += 1;
            }
            leftover -= 1;
        }
        InvolvementModel {
            counts: items.into_iter().map(|(k, n, _)| (k, n)).collect(),
            unknown,
        }
    }
}

/// A complete generative model for one system's failure log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemModel {
    /// Category vocabulary of the generated records.
    pub generation: Generation,
    /// System topology the records refer to.
    pub spec: SystemSpec,
    /// Observation window of the generated log.
    pub window: ObservationWindow,
    /// Exact per-category event counts.
    pub category_mix: CategoryMix,
    /// System-wide inter-arrival family.
    pub tbf: TbfModel,
    /// Per-category repair models.
    pub ttr: TtrModel,
    /// Monthly TTR multipliers (January..December).
    pub monthly_ttr: [f64; 12],
    /// Monthly failure-rate multipliers (January..December).
    pub monthly_rate: [f64; 12],
    /// Linear failure-rate trend over the window: the rate is multiplied
    /// by `trend.0` at the window start, ramping to `trend.1` at the end
    /// (`(1.0, 1.0)` = stationary). Models burn-in (`start > end`) and
    /// wear-out (`start < end`) what-if scenarios.
    pub rate_trend: (f64, f64),
    /// Node placement policy.
    pub node_selection: NodeSelection,
    /// Tsubame-2 operational quirk: software failures land on previously
    /// failure-free nodes (supported by the paper's observation that
    /// multi-failure Tsubame-2 nodes saw 352 hardware failures but only 1
    /// software failure).
    pub software_prefers_fresh_nodes: bool,
    /// GPU slot skew (Fig. 5).
    pub slot_skew: SlotSkew,
    /// Multi-GPU involvement table (Table III).
    pub involvement: InvolvementModel,
    /// Temporal clustering of multi-GPU failures (Fig. 8).
    pub clustering: ClusteringMode,
    /// Exact root-locus counts for software failures (Fig. 3); empty for
    /// systems that do not record loci.
    pub software_loci: Vec<(SoftwareLocus, u32)>,
}

impl SystemModel {
    /// The calibrated Tsubame-2 model.
    pub fn tsubame2() -> Self {
        let window = ObservationWindow::new(
            Date::new(2012, 1, 7).expect("valid date"),
            Date::new(2013, 8, 1).expect("valid date"),
        )
        .expect("valid window");
        SystemModel {
            generation: Generation::Tsubame2,
            spec: SystemSpec::tsubame2(),
            window,
            category_mix: CategoryMix::new(
                calib::T2_CATEGORY_COUNTS
                    .iter()
                    .map(|&(c, n)| (Category::T2(c), n))
                    .collect(),
            )
            .expect("calibration is valid"),
            tbf: TbfModel::Exponential,
            ttr: TtrModel::new(
                calib::T2_TTR_PARAMS
                    .iter()
                    .map(|&(c, m, s)| (Category::T2(c), m, s))
                    .collect(),
            )
            .expect("calibration is valid"),
            monthly_ttr: calib::T2_MONTHLY_TTR,
            monthly_rate: calib::T2_MONTHLY_RATE,
            rate_trend: (1.0, 1.0),
            node_selection: NodeSelection::DefectivePool {
                pool_size: calib::defective::T2_POOL_SIZE,
                pool_share: calib::defective::T2_POOL_SHARE,
            },
            software_prefers_fresh_nodes: true,
            slot_skew: SlotSkew::Weighted(calib::T2_SLOT_WEIGHTS.to_vec()),
            involvement: InvolvementModel::new(
                calib::T2_INVOLVEMENT_COUNTS.to_vec(),
                calib::T2_INVOLVEMENT_UNKNOWN,
            )
            .expect("calibration is valid"),
            clustering: ClusteringMode::SelfExciting {
                window_hours: calib::clustering::WINDOW_HOURS,
                boost: calib::clustering::BOOST,
            },
            software_loci: Vec::new(),
        }
    }

    /// The calibrated Tsubame-3 model.
    pub fn tsubame3() -> Self {
        let window = ObservationWindow::new(
            Date::new(2017, 5, 9).expect("valid date"),
            Date::new(2020, 2, 22).expect("valid date"),
        )
        .expect("valid window");
        SystemModel {
            generation: Generation::Tsubame3,
            spec: SystemSpec::tsubame3(),
            window,
            category_mix: CategoryMix::new(
                calib::T3_CATEGORY_COUNTS
                    .iter()
                    .map(|&(c, n)| (Category::T3(c), n))
                    .collect(),
            )
            .expect("calibration is valid"),
            tbf: TbfModel::Gamma {
                shape: calib::t3_tbf::SHAPE,
            },
            ttr: TtrModel::new(
                calib::T3_TTR_PARAMS
                    .iter()
                    .map(|&(c, m, s)| (Category::T3(c), m, s))
                    .collect(),
            )
            .expect("calibration is valid"),
            monthly_ttr: calib::T3_MONTHLY_TTR,
            monthly_rate: calib::T3_MONTHLY_RATE,
            rate_trend: (1.0, 1.0),
            node_selection: NodeSelection::DefectivePool {
                pool_size: calib::defective::T3_POOL_SIZE,
                pool_share: calib::defective::T3_POOL_SHARE,
            },
            software_prefers_fresh_nodes: false,
            slot_skew: SlotSkew::Weighted(calib::T3_SLOT_WEIGHTS.to_vec()),
            involvement: InvolvementModel::new(
                calib::T3_INVOLVEMENT_COUNTS.to_vec(),
                calib::T3_INVOLVEMENT_UNKNOWN,
            )
            .expect("calibration is valid"),
            clustering: ClusteringMode::SelfExciting {
                window_hours: calib::clustering::WINDOW_HOURS,
                boost: calib::clustering::BOOST,
            },
            software_loci: calib::T3_SOFTWARE_LOCUS_COUNTS.to_vec(),
        }
    }

    /// The canonical model of a generation.
    pub fn for_generation(generation: Generation) -> Self {
        match generation {
            Generation::Tsubame2 => Self::tsubame2(),
            Generation::Tsubame3 => Self::tsubame3(),
        }
    }

    /// Total failures the model will generate.
    pub fn total_failures(&self) -> u32 {
        self.category_mix.total()
    }

    /// The system-wide MTBF implied by the model
    /// (`window / total_failures`).
    pub fn implied_mtbf_hours(&self) -> f64 {
        self.window.duration().get() / self.total_failures().max(1) as f64
    }
}

/// Builds hypothetical system models for what-if studies (e.g. "what does
/// an 8-GPU-per-node Tsubame-3 successor look like?").
///
/// Starts from the Tsubame-3 calibration and rescales what the scenario
/// varies; uses the Tsubame-3 category vocabulary.
///
/// # Examples
///
/// ```
/// use failsim::ScenarioBuilder;
///
/// let model = ScenarioBuilder::new("Hypo-8GPU")
///     .nodes(256)
///     .gpus_per_node(8)
///     .system_mtbf_hours(40.0)
///     .window_days(365)
///     .build()
///     .unwrap();
/// assert_eq!(model.spec.gpus_per_node(), 8);
/// assert!((model.implied_mtbf_hours() - 40.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    name: String,
    nodes: u32,
    gpus_per_node: u8,
    mtbf_hours: f64,
    window_days: u32,
    multi_gpu_fraction: Option<f64>,
    tbf: TbfModel,
    clustering: ClusteringMode,
    node_selection: NodeSelection,
    rate_trend: (f64, f64),
}

impl ScenarioBuilder {
    /// Starts a scenario with Tsubame-3-like defaults.
    pub fn new(name: impl Into<String>) -> Self {
        let t3 = SystemModel::tsubame3();
        ScenarioBuilder {
            name: name.into(),
            nodes: 540,
            gpus_per_node: 4,
            mtbf_hours: t3.implied_mtbf_hours(),
            window_days: 1019,
            multi_gpu_fraction: None,
            tbf: t3.tbf,
            clustering: t3.clustering,
            node_selection: t3.node_selection,
            rate_trend: (1.0, 1.0),
        }
    }

    /// Sets the node count.
    pub fn nodes(mut self, nodes: u32) -> Self {
        self.nodes = nodes;
        self
    }

    /// Sets the GPUs per node (1..=8 supported by the involvement
    /// rescaling).
    pub fn gpus_per_node(mut self, gpus: u8) -> Self {
        self.gpus_per_node = gpus;
        self
    }

    /// Sets the target system-wide MTBF in hours.
    pub fn system_mtbf_hours(mut self, mtbf: f64) -> Self {
        self.mtbf_hours = mtbf;
        self
    }

    /// Sets the observation-window length in days (starting 2020-01-01).
    pub fn window_days(mut self, days: u32) -> Self {
        self.window_days = days;
        self
    }

    /// Overrides the fraction of GPU failures that involve more than one
    /// GPU (default: keep the Tsubame-3 proportion).
    pub fn multi_gpu_fraction(mut self, fraction: f64) -> Self {
        self.multi_gpu_fraction = Some(fraction);
        self
    }

    /// Overrides the TBF family.
    pub fn tbf(mut self, tbf: TbfModel) -> Self {
        self.tbf = tbf;
        self
    }

    /// Overrides the clustering mode.
    pub fn clustering(mut self, clustering: ClusteringMode) -> Self {
        self.clustering = clustering;
        self
    }

    /// Overrides the node-selection policy.
    pub fn node_selection(mut self, node_selection: NodeSelection) -> Self {
        self.node_selection = node_selection;
        self
    }

    /// Sets a linear reliability trend: the failure rate ramps from
    /// `start_factor` x the base rate at the window start to
    /// `end_factor` x at the end. `start > end` models burn-in
    /// (reliability growth); `start < end` models wear-out.
    pub fn reliability_trend(mut self, start_factor: f64, end_factor: f64) -> Self {
        self.rate_trend = (start_factor, end_factor);
        self
    }

    /// Builds the scenario model.
    ///
    /// Returns `None` for degenerate parameters (zero nodes/GPUs/window,
    /// non-positive MTBF, more than 8 GPUs per node, or a multi-GPU
    /// fraction outside `[0, 1]`).
    pub fn build(self) -> Option<SystemModel> {
        if self.nodes == 0
            || self.gpus_per_node == 0
            || self.gpus_per_node > 8
            || self.mtbf_hours <= 0.0
            || self.mtbf_hours.is_nan()
            || self.window_days == 0
        {
            return None;
        }
        if let Some(f) = self.multi_gpu_fraction {
            if !(0.0..=1.0).contains(&f) {
                return None;
            }
        }
        let (t0, t1) = self.rate_trend;
        if t0 <= 0.0 || t1 <= 0.0 || t0.is_nan() || t1.is_nan() {
            return None;
        }
        let t3 = SystemModel::tsubame3();
        let start = Date::new(2020, 1, 1).expect("valid date");
        let end = Date::from_days_from_epoch(start.days_from_epoch() + self.window_days as i64);
        let window = ObservationWindow::new(start, end)?;
        let total = (window.duration().get() / self.mtbf_hours).round().max(1.0) as u32;
        let category_mix = t3.category_mix.scaled_to(total);
        let gpu_events = category_mix.count(Category::T3(T3Category::Gpu));
        let involvement = scale_involvement(
            &t3.involvement,
            gpu_events,
            self.gpus_per_node,
            self.multi_gpu_fraction,
        );
        let software_total = category_mix.count(Category::T3(T3Category::Software));
        let loci_mix = scale_loci(&t3.software_loci, software_total);
        let spec = SystemSpec::builder(self.name)
            .nodes(self.nodes)
            .gpus_per_node(self.gpus_per_node)
            .build()
            .ok()?;
        Some(SystemModel {
            generation: Generation::Tsubame3,
            spec,
            window,
            category_mix,
            tbf: self.tbf,
            ttr: t3.ttr,
            monthly_ttr: t3.monthly_ttr,
            monthly_rate: t3.monthly_rate,
            node_selection: self.node_selection,
            rate_trend: self.rate_trend,
            software_prefers_fresh_nodes: false,
            slot_skew: SlotSkew::Uniform,
            involvement,
            clustering: self.clustering,
            software_loci: loci_mix,
        })
    }
}

/// Rescales an involvement table to a new GPU-event total, a new maximum
/// multiplicity, and optionally a new multi-GPU fraction.
fn scale_involvement(
    base: &InvolvementModel,
    gpu_events: u32,
    gpus_per_node: u8,
    multi_fraction: Option<f64>,
) -> InvolvementModel {
    let scaled = base.scaled_to(gpu_events);
    let known = scaled.known();
    let unknown = scaled.unknown();
    let max_k = gpus_per_node.max(1);
    let multi = if max_k < 2 {
        // Single-GPU nodes cannot see simultaneous multi-GPU failures.
        0
    } else {
        match multi_fraction {
            Some(f) => ((known as f64) * f).round() as u32,
            None => scaled.multi_count(),
        }
    };
    let single = known.saturating_sub(multi);
    // Distribute multi events over multiplicities 2..=gpus_per_node with a
    // geometric taper (heavier at 2), matching the qualitative shape of
    // Table III.
    let mut counts: Vec<(u8, u32)> = vec![(1, single)];
    if max_k >= 2 && multi > 0 {
        let levels = (max_k - 1) as usize;
        let mut weights: Vec<f64> = (0..levels).map(|i| 0.5f64.powi(i as i32)).collect();
        let wsum: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= wsum;
        }
        let mut assigned = 0u32;
        for (i, &w) in weights.iter().enumerate() {
            let c = if i == levels - 1 {
                multi - assigned
            } else {
                ((multi as f64) * w).round() as u32
            };
            let c = c.min(multi - assigned);
            counts.push((i as u8 + 2, c));
            assigned += c;
        }
    }
    InvolvementModel::new(counts, unknown).expect("multiplicities are unique")
}

/// Rescales the software-locus mix to a new total (largest remainder).
fn scale_loci(base: &[(SoftwareLocus, u32)], total: u32) -> Vec<(SoftwareLocus, u32)> {
    if base.is_empty() || total == 0 {
        return Vec::new();
    }
    let old: u32 = base.iter().map(|&(_, c)| c).sum();
    let mut items: Vec<(SoftwareLocus, u32, f64)> = base
        .iter()
        .map(|&(l, c)| {
            let exact = c as f64 * total as f64 / old.max(1) as f64;
            (l, exact.floor() as u32, exact - exact.floor())
        })
        .collect();
    let assigned: u32 = items.iter().map(|&(_, n, _)| n).sum();
    let mut leftover = total.saturating_sub(assigned);
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by(|&a, &b| items[b].2.partial_cmp(&items[a].2).expect("finite"));
    for &i in &order {
        if leftover == 0 {
            break;
        }
        items[i].1 += 1;
        leftover -= 1;
    }
    items.into_iter().map(|(l, n, _)| (l, n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_models_are_consistent() {
        let t2 = SystemModel::tsubame2();
        assert_eq!(t2.total_failures(), 897);
        assert!((t2.implied_mtbf_hours() - 15.3).abs() < 0.1);
        let t3 = SystemModel::tsubame3();
        assert_eq!(t3.total_failures(), 338);
        assert!((t3.implied_mtbf_hours() - 72.4).abs() < 0.2);
        assert_eq!(
            SystemModel::for_generation(Generation::Tsubame2).generation,
            Generation::Tsubame2
        );
    }

    #[test]
    fn tbf_distributions_hit_their_means() {
        for model in [
            TbfModel::Exponential,
            TbfModel::Gamma { shape: 2.5 },
            TbfModel::Weibull { shape: 1.3 },
            TbfModel::LogNormal { sigma: 0.9 },
        ] {
            let d = model.distribution(50.0);
            assert!((d.mean() - 50.0).abs() < 1e-6, "{model:?}: {}", d.mean());
        }
    }

    #[test]
    fn t3_tbf_hits_p75_anchor() {
        // Fig. 6: p75 of Tsubame-3 TBF ≈ 93 h at MTBF ≈ 72.4 h.
        let t3 = SystemModel::tsubame3();
        let d = t3.tbf.distribution(t3.implied_mtbf_hours());
        let p75 = d.quantile(0.75);
        assert!((p75 - 93.0).abs() < 4.0, "p75 = {p75}");
    }

    #[test]
    fn t2_tbf_hits_p75_anchor() {
        // Fig. 6: 75% of Tsubame-2 failures occur within ~20 h of each
        // other.
        let t2 = SystemModel::tsubame2();
        let d = t2.tbf.distribution(t2.implied_mtbf_hours());
        let p75 = d.quantile(0.75);
        assert!((p75 - 20.0).abs() < 2.5, "p75 = {p75}");
    }

    #[test]
    fn category_mix_invariants() {
        let mix = CategoryMix::new(vec![
            (Category::T3(T3Category::Gpu), 3),
            (Category::T3(T3Category::Software), 2),
        ])
        .unwrap();
        assert_eq!(mix.total(), 5);
        assert_eq!(mix.count(Category::T3(T3Category::Gpu)), 3);
        assert_eq!(mix.count(Category::T3(T3Category::Cpu)), 0);
        assert_eq!(mix.to_multiset().len(), 5);
        // Duplicate categories rejected.
        assert!(CategoryMix::new(vec![
            (Category::T3(T3Category::Gpu), 1),
            (Category::T3(T3Category::Gpu), 2),
        ])
        .is_none());
        assert!(CategoryMix::new(vec![]).is_none());
    }

    #[test]
    fn category_mix_scaling_preserves_total_and_proportions() {
        let t3 = SystemModel::tsubame3();
        let scaled = t3.category_mix.scaled_to(1000);
        assert_eq!(scaled.total(), 1000);
        let gpu = scaled.count(Category::T3(T3Category::Gpu)) as f64 / 1000.0;
        assert!((gpu - 0.2781).abs() < 0.01, "gpu share {gpu}");
        // Scaling to zero yields an empty log's mix.
        assert_eq!(t3.category_mix.scaled_to(0).total(), 0);
    }

    #[test]
    fn ttr_model_fallback() {
        let ttr = TtrModel::new(vec![
            (Category::T3(T3Category::Gpu), 80.0, 1.0),
            (Category::T3(T3Category::Software), 40.0, 0.8),
        ])
        .unwrap();
        let known = ttr.distribution(Category::T3(T3Category::Gpu));
        assert!((known.mean() - 80.0).abs() < 1e-9);
        // Unknown category falls back to averaged parameters.
        let fallback = ttr.distribution(Category::T3(T3Category::Crc));
        assert!((fallback.mean() - 60.0).abs() < 1e-9);
        assert!(TtrModel::new(vec![]).is_none());
        assert!(TtrModel::new(vec![(Category::T3(T3Category::Gpu), 0.0, 1.0)]).is_none());
    }

    #[test]
    fn involvement_model_invariants() {
        let inv = InvolvementModel::new(vec![(1, 75), (2, 4), (3, 2), (4, 0)], 13).unwrap();
        assert_eq!(inv.total(), 94);
        assert_eq!(inv.known(), 81);
        assert_eq!(inv.multi_count(), 6);
        assert!(InvolvementModel::new(vec![(0, 5)], 0).is_none());
        assert!(InvolvementModel::new(vec![(1, 5), (1, 3)], 0).is_none());
    }

    #[test]
    fn involvement_scaling() {
        let inv = InvolvementModel::new(vec![(1, 112), (2, 128), (3, 128)], 30).unwrap();
        let scaled = inv.scaled_to(199);
        assert_eq!(scaled.total(), 199);
        // Proportions roughly preserved.
        let multi_frac = scaled.multi_count() as f64 / scaled.known() as f64;
        assert!((multi_frac - 256.0 / 368.0).abs() < 0.05, "{multi_frac}");
    }

    #[test]
    fn scenario_builder_basics() {
        let model = ScenarioBuilder::new("S")
            .nodes(100)
            .gpus_per_node(6)
            .system_mtbf_hours(30.0)
            .window_days(200)
            .multi_gpu_fraction(0.5)
            .build()
            .unwrap();
        assert_eq!(model.spec.nodes(), 100);
        assert_eq!(model.spec.gpus_per_node(), 6);
        assert_eq!(model.total_failures(), 160); // 200 d · 24 h / 30 h
        // Involvement stays within the GPU event count and the slot count.
        assert_eq!(
            model.involvement.total(),
            model.category_mix.count(Category::T3(T3Category::Gpu))
        );
        for &(k, _) in model.involvement.counts() {
            assert!(k <= 6);
        }
        let multi = model.involvement.multi_count() as f64;
        let known = model.involvement.known() as f64;
        assert!((multi / known - 0.5).abs() < 0.05);
        // Software loci rescale with the Software category.
        let loci_total: u32 = model.software_loci.iter().map(|&(_, c)| c).sum();
        assert_eq!(
            loci_total,
            model.category_mix.count(Category::T3(T3Category::Software))
        );
    }

    #[test]
    fn scenario_builder_rejects_degenerate() {
        assert!(ScenarioBuilder::new("x").nodes(0).build().is_none());
        assert!(ScenarioBuilder::new("x").gpus_per_node(0).build().is_none());
        assert!(ScenarioBuilder::new("x").gpus_per_node(9).build().is_none());
        assert!(ScenarioBuilder::new("x").system_mtbf_hours(0.0).build().is_none());
        assert!(ScenarioBuilder::new("x").window_days(0).build().is_none());
        assert!(ScenarioBuilder::new("x").multi_gpu_fraction(1.5).build().is_none());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            #[test]
            fn category_mix_scaling_preserves_total(total in 0u32..5000) {
                let mix = SystemModel::tsubame3().category_mix.scaled_to(total);
                prop_assert_eq!(mix.total(), total);
            }

            #[test]
            fn category_mix_scaling_preserves_proportions(total in 200u32..5000) {
                let base = SystemModel::tsubame3().category_mix;
                let scaled = base.scaled_to(total);
                for &(cat, n) in base.entries() {
                    let expected = n as f64 * total as f64 / base.total() as f64;
                    let got = scaled.count(cat) as f64;
                    // Largest-remainder rounding is within one unit.
                    prop_assert!((got - expected).abs() <= 1.0, "{cat}: {got} vs {expected}");
                }
            }

            #[test]
            fn involvement_scaling_preserves_total(total in 0u32..2000) {
                let inv = SystemModel::tsubame2().involvement.scaled_to(total);
                prop_assert_eq!(inv.total(), total);
            }

            #[test]
            fn tbf_distributions_are_positive_and_mean_correct(
                mean in 0.5f64..500.0,
                shape in 0.5f64..6.0,
                sigma in 0.1f64..1.5,
            ) {
                for model in [
                    TbfModel::Exponential,
                    TbfModel::Gamma { shape },
                    TbfModel::Weibull { shape },
                    TbfModel::LogNormal { sigma },
                ] {
                    let d = model.distribution(mean);
                    prop_assert!((d.mean() - mean).abs() < 1e-6 * mean.max(1.0));
                    prop_assert!(d.quantile(0.5) > 0.0);
                }
            }

            #[test]
            fn scenario_builder_total_matches_mtbf(
                mtbf in 5.0f64..300.0,
                days in 30u32..600,
            ) {
                let model = ScenarioBuilder::new("prop")
                    .system_mtbf_hours(mtbf)
                    .window_days(days)
                    .build()
                    .expect("valid parameters");
                let expected = (days as f64 * 24.0 / mtbf).round().max(1.0) as u32;
                prop_assert_eq!(model.total_failures(), expected);
                prop_assert_eq!(
                    model.category_mix.total(),
                    model.total_failures()
                );
            }
        }
    }

    #[test]
    fn scenario_single_gpu_node_has_no_multi() {
        let model = ScenarioBuilder::new("single")
            .gpus_per_node(1)
            .build()
            .unwrap();
        assert_eq!(model.involvement.multi_count(), 0);
    }
}
