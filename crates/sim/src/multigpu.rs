//! GPU involvement: which and how many GPU slots a GPU failure touches.
//!
//! Table III's involvement counts are conserved exactly: the generator
//! builds the precise multiset of involvement labels (e.g. Tsubame-2: 112
//! single, 128 double, 128 triple, 30 unknown) and assigns them to the GPU
//! failure events. Temporal clustering (Fig. 8) is produced during the
//! assignment: within the excitation window after a multi-GPU failure, the
//! odds that the next GPU failure also receives a multi-GPU label are
//! boosted — the label multiset, and therefore Table III, is unchanged.

use failtypes::{GpuSlot, Hours};
use failstats::Categorical;
use rand::{Rng, RngCore};

use crate::model::{ClusteringMode, InvolvementModel, SlotSkew, SystemModel};

/// The involvement assigned to one GPU failure event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Involvement {
    /// Involvement was not recorded (no slot data).
    Unknown,
    /// The listed distinct slots failed together.
    Slots(Vec<GpuSlot>),
}

impl Involvement {
    /// Number of GPUs involved (zero for unknown).
    pub fn gpu_count(&self) -> usize {
        match self {
            Involvement::Unknown => 0,
            Involvement::Slots(s) => s.len(),
        }
    }

    /// Whether more than one GPU is involved.
    pub fn is_multi(&self) -> bool {
        self.gpu_count() > 1
    }
}

/// Assigns involvement labels to GPU failure events at the given times.
///
/// `times` must be ascending (the caller passes the GPU events of an
/// already-sorted log). The returned vector is index-aligned with
/// `times`.
///
/// The label multiset comes from `model.involvement`, truncated or padded
/// with `Unknown` if the number of GPU events differs from the table total
/// (the calibrated models always match exactly; what-if models are built
/// to match by construction).
pub fn assign_involvement(
    model: &SystemModel,
    times: &[Hours],
    rng: &mut dyn RngCore,
) -> Vec<Involvement> {
    let mut labels = LabelPool::new(&model.involvement, times.len() as u32);
    let slot_sampler = SlotSampler::new(model);
    let (window, boost) = match model.clustering {
        ClusteringMode::SelfExciting {
            window_hours,
            boost,
        } => (window_hours, boost),
        ClusteringMode::Independent => (0.0, 1.0),
    };

    let mut out = Vec::with_capacity(times.len());
    let mut last_multi: Option<f64> = None;
    for &t in times {
        let excited =
            window > 0.0 && last_multi.is_some_and(|lm| t.get() - lm <= window);
        // Boost inside the excitation window, damp outside it: the label
        // pool conserves the totals, so this purely redistributes the
        // multi-GPU labels into bursts.
        let b = if excited { boost } else { 1.0 / boost };
        let multi = labels.draw_is_multi(b, rng);
        let label = if multi {
            let k = labels.draw_multi_size(rng);
            last_multi = Some(t.get());
            Involvement::Slots(slot_sampler.sample_distinct(k as usize, rng))
        } else {
            match labels.draw_non_multi_kind(rng) {
                NonMulti::Single => Involvement::Slots(slot_sampler.sample_distinct(1, rng)),
                NonMulti::Unknown => Involvement::Unknown,
            }
        };
        out.push(label);
    }
    out
}

/// Remaining involvement labels during assignment.
#[derive(Debug)]
struct LabelPool {
    /// Remaining counts per multi multiplicity (2, 3, ...).
    multi: Vec<(u8, u32)>,
    single: u32,
    unknown: u32,
}

enum NonMulti {
    Single,
    Unknown,
}

impl LabelPool {
    fn new(involvement: &InvolvementModel, events: u32) -> Self {
        let mut pool = LabelPool {
            multi: involvement
                .counts()
                .iter()
                .filter(|&&(k, _)| k >= 2)
                .copied()
                .collect(),
            single: involvement
                .counts()
                .iter()
                .find(|&&(k, _)| k == 1)
                .map_or(0, |&(_, c)| c),
            unknown: involvement.unknown(),
        };
        // Reconcile the pool size with the actual event count: drop or add
        // `unknown`/`single` labels, never multi labels (they are the
        // calibrated quantity).
        let total = pool.total();
        if events > total {
            pool.unknown += events - total;
        } else {
            let mut excess = total - events;
            let drop_unknown = excess.min(pool.unknown);
            pool.unknown -= drop_unknown;
            excess -= drop_unknown;
            let drop_single = excess.min(pool.single);
            pool.single -= drop_single;
            excess -= drop_single;
            // Truly pathological: trim multi labels last.
            for entry in pool.multi.iter_mut() {
                let d = excess.min(entry.1);
                entry.1 -= d;
                excess -= d;
            }
        }
        pool
    }

    fn total(&self) -> u32 {
        self.single + self.unknown + self.multi_total()
    }

    fn multi_total(&self) -> u32 {
        self.multi.iter().map(|&(_, c)| c).sum()
    }

    /// Draws whether the next event is multi-GPU, with odds boosted by
    /// `boost`, and consumes nothing yet (the kind draws consume).
    fn draw_is_multi(&mut self, boost: f64, rng: &mut dyn RngCore) -> bool {
        let multi = self.multi_total() as f64;
        let other = (self.single + self.unknown) as f64;
        if multi == 0.0 {
            return false;
        }
        if other == 0.0 {
            return true;
        }
        let p = multi * boost / (multi * boost + other);
        rng.gen::<f64>() < p
    }

    fn draw_multi_size(&mut self, rng: &mut dyn RngCore) -> u8 {
        let total = self.multi_total();
        debug_assert!(total > 0);
        let mut u = rng.gen_range(0..total);
        for entry in self.multi.iter_mut() {
            if u < entry.1 {
                entry.1 -= 1;
                return entry.0;
            }
            u -= entry.1;
        }
        unreachable!("multi label pool underflow")
    }

    fn draw_non_multi_kind(&mut self, rng: &mut dyn RngCore) -> NonMulti {
        let total = self.single + self.unknown;
        debug_assert!(total > 0);
        if rng.gen_range(0..total) < self.single {
            self.single -= 1;
            NonMulti::Single
        } else {
            self.unknown -= 1;
            NonMulti::Unknown
        }
    }
}

/// Samples distinct GPU slots according to the model's slot skew.
#[derive(Debug)]
struct SlotSampler {
    slots: u8,
    weighted: Option<Categorical>,
}

impl SlotSampler {
    fn new(model: &SystemModel) -> Self {
        let slots = model.spec.gpus_per_node();
        let weighted = match &model.slot_skew {
            SlotSkew::Uniform => None,
            SlotSkew::Weighted(w) => {
                // Tolerate weight vectors shorter/longer than the slot
                // count by resizing with the mean weight.
                let mean = w.iter().sum::<f64>() / w.len().max(1) as f64;
                let mut weights = w.clone();
                weights.resize(slots as usize, mean.max(1e-9));
                Categorical::new(&weights)
            }
        };
        SlotSampler { slots, weighted }
    }

    fn sample_distinct(&self, k: usize, rng: &mut dyn RngCore) -> Vec<GpuSlot> {
        let k = k.min(self.slots as usize);
        let mut chosen: Vec<GpuSlot> = Vec::with_capacity(k);
        while chosen.len() < k {
            let slot = match &self.weighted {
                Some(cat) => GpuSlot::new(cat.sample(rng) as u8),
                None => GpuSlot::new(rng.gen_range(0..self.slots)),
            };
            if !chosen.contains(&slot) {
                chosen.push(slot);
            }
        }
        chosen.sort();
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SystemModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gpu_times(n: usize, gap: f64) -> Vec<Hours> {
        (0..n).map(|i| Hours::new(i as f64 * gap)).collect()
    }

    fn count_by_size(inv: &[Involvement]) -> (u32, u32, u32, u32) {
        let mut unknown = 0;
        let mut single = 0;
        let mut double = 0;
        let mut triple_plus = 0;
        for i in inv {
            match i.gpu_count() {
                0 => unknown += 1,
                1 => single += 1,
                2 => double += 1,
                _ => triple_plus += 1,
            }
        }
        (unknown, single, double, triple_plus)
    }

    #[test]
    fn t2_label_multiset_is_conserved() {
        let model = SystemModel::tsubame2();
        let times = gpu_times(398, 34.5);
        let mut rng = StdRng::seed_from_u64(1);
        let inv = assign_involvement(&model, &times, &mut rng);
        assert_eq!(inv.len(), 398);
        let (unknown, single, double, triple) = count_by_size(&inv);
        assert_eq!(unknown, 30);
        assert_eq!(single, 112);
        assert_eq!(double, 128);
        assert_eq!(triple, 128);
    }

    #[test]
    fn t3_label_multiset_is_conserved() {
        let model = SystemModel::tsubame3();
        let times = gpu_times(94, 260.0);
        let mut rng = StdRng::seed_from_u64(2);
        let inv = assign_involvement(&model, &times, &mut rng);
        let (unknown, single, double, triple) = count_by_size(&inv);
        assert_eq!(unknown, 13);
        assert_eq!(single, 75);
        assert_eq!(double, 4);
        assert_eq!(triple, 2);
        // Never all four GPUs on Tsubame-3 (Table III).
        assert!(inv.iter().all(|i| i.gpu_count() < 4));
    }

    #[test]
    fn slots_are_distinct_sorted_and_in_range() {
        let model = SystemModel::tsubame2();
        let times = gpu_times(398, 10.0);
        let mut rng = StdRng::seed_from_u64(3);
        for inv in assign_involvement(&model, &times, &mut rng) {
            if let Involvement::Slots(slots) = inv {
                for w in slots.windows(2) {
                    assert!(w[0] < w[1], "slots not strictly ascending");
                }
                for s in &slots {
                    assert!(s.index() < 3);
                }
            }
        }
    }

    #[test]
    fn event_count_mismatch_adjusts_unknown_first() {
        let model = SystemModel::tsubame2();
        // More events than the table: extra become Unknown.
        let times = gpu_times(410, 10.0);
        let mut rng = StdRng::seed_from_u64(4);
        let inv = assign_involvement(&model, &times, &mut rng);
        let (unknown, single, double, triple) = count_by_size(&inv);
        assert_eq!(unknown, 42);
        assert_eq!((single, double, triple), (112, 128, 128));
        // Fewer events: unknown labels are dropped first.
        let times = gpu_times(380, 10.0);
        let inv = assign_involvement(&model, &times, &mut rng);
        let (unknown, single, double, triple) = count_by_size(&inv);
        assert_eq!(unknown, 12);
        assert_eq!((single, double, triple), (112, 128, 128));
    }

    #[test]
    fn clustered_multi_events_are_bursty() {
        let model = SystemModel::tsubame2();
        // Dense GPU event stream (gap 20 h, window 96 h → excitation
        // frequently active).
        let times = gpu_times(398, 20.0);
        let mut rng = StdRng::seed_from_u64(5);
        let inv = assign_involvement(&model, &times, &mut rng);
        let multi_times: Vec<f64> = times
            .iter()
            .zip(&inv)
            .filter(|(_, i)| i.is_multi())
            .map(|(t, _)| t.get())
            .collect();
        let horizon = times.last().unwrap().get() + 1.0;
        let clustered =
            failstats::burstiness_report(&multi_times, horizon, 200.0, 40.0).unwrap();

        // Ablation: independent assignment.
        let mut model_flat = model.clone();
        model_flat.clustering = ClusteringMode::Independent;
        let mut rng = StdRng::seed_from_u64(5);
        let inv_flat = assign_involvement(&model_flat, &times, &mut rng);
        let multi_flat: Vec<f64> = times
            .iter()
            .zip(&inv_flat)
            .filter(|(_, i)| i.is_multi())
            .map(|(t, _)| t.get())
            .collect();
        let flat = failstats::burstiness_report(&multi_flat, horizon, 200.0, 40.0).unwrap();

        assert!(
            clustered.cv > flat.cv,
            "clustered CV {} should exceed independent CV {}",
            clustered.cv,
            flat.cv
        );
    }

    #[test]
    fn empty_event_list() {
        let model = SystemModel::tsubame3();
        let mut rng = StdRng::seed_from_u64(6);
        assert!(assign_involvement(&model, &[], &mut rng).is_empty());
    }

    #[test]
    fn involvement_helpers() {
        assert_eq!(Involvement::Unknown.gpu_count(), 0);
        assert!(!Involvement::Unknown.is_multi());
        let multi = Involvement::Slots(vec![GpuSlot::new(0), GpuSlot::new(2)]);
        assert!(multi.is_multi());
        assert_eq!(multi.gpu_count(), 2);
    }

    #[test]
    fn uniform_slot_skew_is_roughly_flat() {
        let mut model = SystemModel::tsubame3();
        model.slot_skew = SlotSkew::Uniform;
        let times = gpu_times(94, 100.0);
        let mut counts = [0u32; 4];
        for seed in 0..200 {
            let mut rng = StdRng::seed_from_u64(seed);
            for inv in assign_involvement(&model, &times, &mut rng) {
                if let Involvement::Slots(slots) = inv {
                    for s in slots {
                        counts[s.index() as usize] += 1;
                    }
                }
            }
        }
        let total: u32 = counts.iter().sum();
        for &c in &counts {
            let share = c as f64 / total as f64;
            assert!((share - 0.25).abs() < 0.02, "share {share}");
        }
    }

    #[test]
    fn weighted_slot_skew_matches_fig5_shape() {
        let model = SystemModel::tsubame3();
        let times = gpu_times(94, 100.0);
        let mut counts = [0u32; 4];
        for seed in 0..300 {
            let mut rng = StdRng::seed_from_u64(seed);
            for inv in assign_involvement(&model, &times, &mut rng) {
                if let Involvement::Slots(slots) = inv {
                    for s in slots {
                        counts[s.index() as usize] += 1;
                    }
                }
            }
        }
        // GPU 0 and GPU 3 considerably above GPU 1 and GPU 2 (Fig. 5b).
        assert!(counts[0] > counts[1] * 3 / 2);
        assert!(counts[3] > counts[2] * 3 / 2);
    }
}
