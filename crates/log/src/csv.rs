//! The `failscope-log v1` CSV format.
//!
//! A serialized log is a small self-describing text file:
//!
//! ```text
//! # failscope-log v1
//! # generation: Tsubame-3
//! # name: Tsubame-3
//! # nodes: 540
//! # gpus-per-node: 4
//! # window: 2017-05-09..2020-02-22
//! id,time_h,ttr_h,category,node,gpus,locus
//! 0,10.5,4.25,GPU,12,0|3,
//! 1,22.125,1,Software,7,,GPUDriverProblem
//! ```
//!
//! * `gpus` is a `|`-separated list of slot indices; empty means the
//!   involvement was not recorded.
//! * `locus` is a [`failtypes::SoftwareLocus`] label; empty when absent.
//! * Category labels never contain commas (enforced by the fixed
//!   [`failtypes::Category`] vocabularies), so no quoting is needed.

use std::io::{BufRead, Write};
use std::str::FromStr;

use failtypes::{
    Category, Date, FailureLog, FailureRecord, Generation, GpuSlot, Hours, NodeId,
    ObservationWindow, SoftwareLocus, SystemSpec, T2Category, T3Category,
};

use failtypes::{Error, Result};

const MAGIC: &str = "# failscope-log v1";
const COLUMNS: &str = "id,time_h,ttr_h,category,node,gpus,locus";

/// Serializes a log to a writer in the `failscope-log v1` format.
///
/// A mutable reference works as the writer: `write_log(&mut buf, &log)`.
///
/// # Errors
///
/// Returns [`Error`] on I/O failure.
///
/// # Examples
///
/// ```
/// use failsim::{Simulator, SystemModel};
///
/// let log = Simulator::new(SystemModel::tsubame3(), 1).generate().unwrap();
/// let mut buf = Vec::new();
/// faillog::write_log(&mut buf, &log)?;
/// let parsed = faillog::read_log(buf.as_slice())?;
/// assert_eq!(&parsed, &log);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn write_log<W: Write>(mut w: W, log: &FailureLog) -> Result<()> {
    writeln!(w, "{MAGIC}")?;
    writeln!(w, "# generation: {}", log.generation())?;
    writeln!(w, "# name: {}", log.spec().name())?;
    writeln!(w, "# nodes: {}", log.spec().nodes())?;
    writeln!(w, "# gpus-per-node: {}", log.spec().gpus_per_node())?;
    writeln!(
        w,
        "# window: {}..{}",
        log.window().start(),
        log.window().end()
    )?;
    writeln!(w, "{COLUMNS}")?;
    for rec in log.iter() {
        let gpus = rec
            .gpus()
            .iter()
            .map(|s| s.index().to_string())
            .collect::<Vec<_>>()
            .join("|");
        let locus = rec.locus().map(|l| l.label()).unwrap_or("");
        // `{}` on f64 prints the shortest string that parses back to the
        // exact same value, so the round trip is lossless.
        writeln!(
            w,
            "{},{},{},{},{},{},{}",
            rec.id(),
            rec.time().get(),
            rec.ttr().get(),
            rec.category().label(),
            rec.node().index(),
            gpus,
            locus
        )?;
    }
    Ok(())
}

/// Serializes a log to an owned string.
///
/// # Errors
///
/// Never fails in practice (writing to a `Vec` cannot I/O-fail); the
/// `Result` mirrors [`write_log`].
pub fn to_string(log: &FailureLog) -> Result<String> {
    let mut buf = Vec::new();
    write_log(&mut buf, log)?;
    Ok(String::from_utf8(buf).expect("format writes UTF-8 only"))
}

/// Parses a `failscope-log v1` stream back into a validated
/// [`FailureLog`].
///
/// The stream is read fully into memory and handed to the chunked
/// parallel parser with default [`crate::ParseOptions`]; output
/// (including errors and their line numbers) is byte-identical to a
/// serial line-by-line pass.
///
/// # Errors
///
/// Returns [`Error`] for I/O failures, malformed headers or rows,
/// and logs that violate record invariants (e.g. node out of range).
pub fn read_log<R: BufRead>(mut r: R) -> Result<FailureLog> {
    let mut text = String::new();
    r.read_to_string(&mut text)?;
    from_str(&text)
}

/// Parses a log from a string slice.
///
/// # Errors
///
/// See [`read_log`].
pub fn from_str(s: &str) -> Result<FailureLog> {
    crate::parallel::from_str_with(s, &crate::ParseOptions::default())
}

/// The original single-pass serial parser, kept verbatim as the
/// reference oracle the parallel path is tested against.
#[cfg(test)]
pub(crate) fn parse_serial(s: &str) -> Result<FailureLog> {
    let mut lines = s.as_bytes().lines().enumerate();

    let mut header = HeaderParser::new();
    loop {
        let (lineno, line) = next_line(&mut lines)?;
        if header.feed(lineno, &line)? {
            break;
        }
    }
    let (generation, spec, window) = header.finish()?;

    let mut records = Vec::new();
    for (lineno, line) in lines {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let rec = parse_row(lineno + 1, line, generation)?;
        rec.validate(generation, &spec, window)
            .map_err(|e| Error::invalid_row(lineno + 1, e))?;
        records.push(rec);
    }
    Ok(FailureLog::with_spec(generation, spec, window, records)?)
}

#[cfg(test)]
type Lines<'a, R> = std::iter::Enumerate<std::io::Lines<R>>;

#[cfg(test)]
fn next_line<R: BufRead>(lines: &mut Lines<'_, R>) -> Result<(usize, String)> {
    match lines.next() {
        Some((i, line)) => Ok((i, line?)),
        None => Err(Error::Header("unexpected end of file".into())),
    }
}

/// Incremental parser for the `failscope-log v1` header block, shared by
/// the batch reader and the streaming tailer: feed raw lines until it
/// reports completion, then [`HeaderParser::finish`] yields the metadata.
pub(crate) struct HeaderParser {
    saw_magic: bool,
    generation: Option<Generation>,
    name: Option<String>,
    nodes: Option<u32>,
    gpus: Option<u8>,
    window: Option<ObservationWindow>,
}

impl HeaderParser {
    pub(crate) fn new() -> Self {
        HeaderParser {
            saw_magic: false,
            generation: None,
            name: None,
            nodes: None,
            gpus: None,
            window: None,
        }
    }

    /// Consumes one raw line (`lineno` is 0-based). Returns `Ok(true)`
    /// once the column row has been consumed and the header is complete.
    pub(crate) fn feed(&mut self, lineno: usize, raw: &str) -> Result<bool> {
        let line = raw.trim();
        if !self.saw_magic {
            if line != MAGIC {
                return Err(Error::Header(format!(
                    "expected `{MAGIC}`, found `{line}`"
                )));
            }
            self.saw_magic = true;
            return Ok(false);
        }
        if line == COLUMNS {
            return Ok(true);
        }
        let Some(rest) = line.strip_prefix("# ") else {
            return Err(Error::Header(format!(
                "unexpected line {} before column header: `{line}`",
                lineno + 1
            )));
        };
        let Some((key, value)) = rest.split_once(": ") else {
            return Err(Error::Header(format!("malformed field `{rest}`")));
        };
        match key {
            "generation" => {
                self.generation = Some(match value {
                    "Tsubame-2" => Generation::Tsubame2,
                    "Tsubame-3" => Generation::Tsubame3,
                    other => {
                        return Err(Error::Header(format!(
                            "unknown generation `{other}`"
                        )))
                    }
                });
            }
            "name" => self.name = Some(value.to_string()),
            "nodes" => {
                self.nodes = Some(value.parse().map_err(|_| {
                    Error::Header(format!("invalid node count `{value}`"))
                })?)
            }
            "gpus-per-node" => {
                self.gpus = Some(value.parse().map_err(|_| {
                    Error::Header(format!("invalid GPU count `{value}`"))
                })?)
            }
            "window" => self.window = Some(parse_window(value)?),
            other => {
                return Err(Error::Header(format!("unknown field `{other}`")));
            }
        }
        Ok(false)
    }

    /// Finalizes the header into `(generation, spec, window)`.
    pub(crate) fn finish(
        self,
    ) -> Result<(Generation, SystemSpec, ObservationWindow)> {
        let generation = self
            .generation
            .ok_or_else(|| Error::Header("missing `generation`".into()))?;
        let window = self
            .window
            .ok_or_else(|| Error::Header("missing `window`".into()))?;
        let spec = rebuild_spec(generation, self.name, self.nodes, self.gpus)?;
        Ok((generation, spec, window))
    }
}

fn parse_window(value: &str) -> Result<ObservationWindow> {
    let Some((a, b)) = value.split_once("..") else {
        return Err(Error::Header(format!("malformed window `{value}`")));
    };
    let start = parse_date(a)?;
    let end = parse_date(b)?;
    ObservationWindow::new(start, end)
        .ok_or_else(|| Error::Header(format!("inverted window `{value}`")))
}

fn parse_date(s: &str) -> Result<Date> {
    let parts: Vec<&str> = s.split('-').collect();
    if parts.len() != 3 {
        return Err(Error::Header(format!("malformed date `{s}`")));
    }
    let bad = || Error::Header(format!("malformed date `{s}`"));
    let year: i32 = parts[0].parse().map_err(|_| bad())?;
    let month: u8 = parts[1].parse().map_err(|_| bad())?;
    let day: u8 = parts[2].parse().map_err(|_| bad())?;
    Date::new(year, month, day).ok_or_else(bad)
}

fn rebuild_spec(
    generation: Generation,
    name: Option<String>,
    nodes: Option<u32>,
    gpus: Option<u8>,
) -> Result<SystemSpec> {
    let base = generation.spec();
    let same_shape = nodes.is_none_or(|n| n == base.nodes())
        && gpus.is_none_or(|g| g == base.gpus_per_node())
        && name.as_deref().is_none_or(|n| n == base.name());
    if same_shape {
        return Ok(base);
    }
    SystemSpec::builder(name.unwrap_or_else(|| base.name().to_string()))
        .nodes(nodes.unwrap_or(base.nodes()))
        .gpus_per_node(gpus.unwrap_or(base.gpus_per_node()))
        .build()
        .map_err(|e| Error::Header(e.to_string()))
}

pub(crate) fn parse_row(
    lineno: usize,
    line: &str,
    generation: Generation,
) -> Result<FailureRecord> {
    let fields: Vec<&str> = line.split(',').collect();
    if fields.len() != 7 {
        return Err(Error::row(
            lineno,
            format!("expected 7 fields, found {}", fields.len()),
        ));
    }
    let id: u32 = fields[0].parse().map_err(|_| {
        Error::row_field(lineno, "id", format!("invalid id `{}`", fields[0]))
    })?;
    let time: f64 = fields[1].parse().map_err(|_| {
        Error::row_field(lineno, "time_h", format!("invalid time `{}`", fields[1]))
    })?;
    let ttr: f64 = fields[2].parse().map_err(|_| {
        Error::row_field(lineno, "ttr_h", format!("invalid ttr `{}`", fields[2]))
    })?;
    let category = parse_category(fields[3], generation)
        .map_err(|msg| Error::row_field(lineno, "category", msg))?;
    let node: u32 = fields[4].parse().map_err(|_| {
        Error::row_field(lineno, "node", format!("invalid node `{}`", fields[4]))
    })?;

    let mut rec = FailureRecord::new(
        id,
        Hours::new(time),
        Hours::new(ttr),
        category,
        NodeId::new(node),
    );
    if !fields[5].is_empty() {
        let mut slots = Vec::new();
        for part in fields[5].split('|') {
            let idx: u8 = part.parse().map_err(|_| {
                Error::row_field(lineno, "gpus", format!("invalid GPU slot `{part}`"))
            })?;
            slots.push(GpuSlot::new(idx));
        }
        rec = rec.with_gpus(slots);
    }
    if !fields[6].is_empty() {
        let locus = SoftwareLocus::from_str(fields[6])
            .map_err(|e| Error::row_field(lineno, "locus", e.to_string()))?;
        rec = rec.with_locus(locus);
    }
    Ok(rec)
}

pub(crate) fn parse_category(
    label: &str,
    generation: Generation,
) -> std::result::Result<Category, String> {
    match generation {
        Generation::Tsubame2 => label
            .parse::<T2Category>()
            .map(Category::T2)
            .map_err(|e| e.to_string()),
        Generation::Tsubame3 => label
            .parse::<T3Category>()
            .map(Category::T3)
            .map_err(|e| e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use failsim::{ScenarioBuilder, Simulator, SystemModel};

    fn t3_log() -> FailureLog {
        Simulator::new(SystemModel::tsubame3(), 11).generate().unwrap()
    }

    #[test]
    fn roundtrip_tsubame3() {
        let log = t3_log();
        let text = to_string(&log).unwrap();
        let parsed = from_str(&text).unwrap();
        assert_eq!(parsed, log);
    }

    #[test]
    fn roundtrip_tsubame2() {
        let log = Simulator::new(SystemModel::tsubame2(), 12).generate().unwrap();
        let text = to_string(&log).unwrap();
        let parsed = from_str(&text).unwrap();
        assert_eq!(parsed, log);
    }

    #[test]
    fn roundtrip_custom_spec() {
        let model = ScenarioBuilder::new("custom-what-if")
            .nodes(64)
            .gpus_per_node(8)
            .window_days(90)
            .system_mtbf_hours(48.0)
            .build()
            .unwrap();
        let log = Simulator::new(model, 13).generate().unwrap();
        let text = to_string(&log).unwrap();
        let parsed = from_str(&text).unwrap();
        assert_eq!(parsed, log);
        assert_eq!(parsed.spec().gpus_per_node(), 8);
        assert_eq!(parsed.spec().name(), "custom-what-if");
    }

    #[test]
    fn header_contains_metadata() {
        let text = to_string(&t3_log()).unwrap();
        assert!(text.starts_with("# failscope-log v1\n"));
        assert!(text.contains("# generation: Tsubame-3"));
        assert!(text.contains("# window: 2017-05-09..2020-02-22"));
        assert!(text.contains(COLUMNS));
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(matches!(
            from_str("# some-other-format v9\n"),
            Err(Error::Header(_))
        ));
        assert!(from_str("").is_err());
    }

    #[test]
    fn rejects_missing_header_fields() {
        let text = format!("{MAGIC}\n# window: 2017-05-09..2020-02-22\n{COLUMNS}\n");
        let err = from_str(&text).unwrap_err();
        assert!(err.to_string().contains("generation"), "{err}");

        let text = format!("{MAGIC}\n# generation: Tsubame-3\n{COLUMNS}\n");
        let err = from_str(&text).unwrap_err();
        assert!(err.to_string().contains("window"), "{err}");
    }

    #[test]
    fn rejects_unknown_header_field() {
        let text = format!("{MAGIC}\n# color: mauve\n{COLUMNS}\n");
        assert!(from_str(&text).is_err());
    }

    #[test]
    fn rejects_malformed_rows() {
        let header = format!(
            "{MAGIC}\n# generation: Tsubame-3\n# window: 2017-05-09..2020-02-22\n{COLUMNS}\n"
        );
        // Too few fields.
        let err = from_str(&format!("{header}1,2,3\n")).unwrap_err();
        assert!(err.to_string().contains("7 fields"), "{err}");
        // Bad category.
        let err = from_str(&format!("{header}0,1.0,1.0,FAN,0,,\n")).unwrap_err();
        assert!(err.to_string().contains("FAN"), "{err}");
        // Bad slot.
        let err = from_str(&format!("{header}0,1.0,1.0,GPU,0,x,\n")).unwrap_err();
        assert!(err.to_string().contains("slot"), "{err}");
        // Bad locus.
        let err = from_str(&format!("{header}0,1.0,1.0,Software,0,,NotALocus\n")).unwrap_err();
        assert!(err.to_string().contains("NotALocus"), "{err}");
        // Bad numbers.
        assert!(from_str(&format!("{header}zz,1.0,1.0,GPU,0,,\n")).is_err());
        assert!(from_str(&format!("{header}0,zz,1.0,GPU,0,,\n")).is_err());
        assert!(from_str(&format!("{header}0,1.0,zz,GPU,0,,\n")).is_err());
        assert!(from_str(&format!("{header}0,1.0,1.0,GPU,zz,,\n")).is_err());
    }

    #[test]
    fn rejects_invariant_violations_with_line_numbers() {
        let header = format!(
            "{MAGIC}\n# generation: Tsubame-3\n# window: 2017-05-09..2020-02-22\n{COLUMNS}\n"
        );
        // Node out of range; the header occupies lines 1-4, so the bad
        // row is line 5.
        let err = from_str(&format!("{header}0,1.0,1.0,GPU,99999,,\n")).unwrap_err();
        assert!(matches!(err, Error::InvalidRow { line: 5, .. }), "{err}");
        assert!(err.to_string().contains("line 5"), "{err}");
        // Negative time, after one good row: line 6.
        let err =
            from_str(&format!("{header}0,1.0,1.0,GPU,0,,\n1,-5.0,1.0,GPU,0,,\n")).unwrap_err();
        assert_eq!(err.line(), Some(6));
    }

    #[test]
    fn row_errors_name_the_offending_field() {
        let header = format!(
            "{MAGIC}\n# generation: Tsubame-3\n# window: 2017-05-09..2020-02-22\n{COLUMNS}\n"
        );
        let err = from_str(&format!("{header}0,1.0,zz,GPU,0,,\n")).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("`ttr_h`"), "{text}");
        assert!(text.contains("line 5"), "{text}");
        let err = from_str(&format!("{header}0,1.0,1.0,FAN,0,,\n")).unwrap_err();
        assert!(err.to_string().contains("`category`"), "{err}");
    }

    #[test]
    fn rejects_malformed_window_and_date() {
        let text = format!("{MAGIC}\n# generation: Tsubame-3\n# window: nope\n{COLUMNS}\n");
        assert!(from_str(&text).is_err());
        let text =
            format!("{MAGIC}\n# generation: Tsubame-3\n# window: 2017-13-01..2018-01-01\n{COLUMNS}\n");
        assert!(from_str(&text).is_err());
        let text =
            format!("{MAGIC}\n# generation: Tsubame-3\n# window: 2019-01-01..2018-01-01\n{COLUMNS}\n");
        assert!(from_str(&text).is_err());
    }

    #[test]
    fn empty_body_is_an_empty_log() {
        let text = format!(
            "{MAGIC}\n# generation: Tsubame-2\n# window: 2012-01-07..2013-08-01\n{COLUMNS}\n"
        );
        let log = from_str(&text).unwrap();
        assert!(log.is_empty());
        assert_eq!(log.generation(), Generation::Tsubame2);
    }

    #[test]
    fn blank_lines_in_body_are_skipped() {
        let text = format!(
            "{MAGIC}\n# generation: Tsubame-3\n# window: 2017-05-09..2020-02-22\n{COLUMNS}\n\n0,1.0,1.0,GPU,0,0|2,\n\n"
        );
        let log = from_str(&text).unwrap();
        assert_eq!(log.len(), 1);
        assert_eq!(log.records()[0].gpus().len(), 2);
    }
}
