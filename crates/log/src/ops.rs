//! Log operations: file helpers, anonymization, and quick summaries.

use std::fs::File;
use std::io::BufWriter;
use std::path::Path;

use failtypes::{Date, FailureLog, FailureRecord, Hours, NodeId, ObservationWindow};

use crate::{csv, ParseOptions};
use failtypes::{Error, Result};

/// An inclusive `[since, until]` filter over failure times, expressed
/// as hour offsets into a log's observation window.
///
/// Unset bounds are open: the default range keeps everything. This is
/// the single implementation behind `failctl report/compare
/// --since/--until` and the `failwatch` evaluation window.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TimeRange {
    /// Keep records at or after this offset; `None` means from the start.
    pub since: Option<Hours>,
    /// Keep records at or before this offset; `None` means to the end.
    pub until: Option<Hours>,
}

impl TimeRange {
    /// The unbounded range (keeps every record).
    pub fn all() -> Self {
        TimeRange::default()
    }

    /// A range with the given optional bounds.
    pub fn new(since: Option<Hours>, until: Option<Hours>) -> Self {
        TimeRange { since, until }
    }

    /// True when both bounds are open.
    pub fn is_all(&self) -> bool {
        self.since.is_none() && self.until.is_none()
    }

    /// Whether `t` satisfies both bounds (inclusive).
    pub fn contains(&self, t: Hours) -> bool {
        self.since.is_none_or(|s| t.get() >= s.get())
            && self.until.is_none_or(|u| t.get() <= u.get())
    }
}

/// Parses a `--since`/`--until` bound: either a plain hour offset
/// (`"1200"`, `"36.5"`) or a calendar date (`"2018-03-01"`), resolved
/// against `window` into an hour offset from the window start.
///
/// # Errors
///
/// Returns [`Error::Args`] describing the malformed bound.
pub fn parse_time_bound(s: &str, window: ObservationWindow) -> Result<Hours> {
    if let Ok(h) = s.parse::<f64>() {
        if !h.is_finite() {
            return Err(Error::args(format!("time bound `{s}` is not finite")));
        }
        return Ok(Hours::new(h));
    }
    let parts: Vec<&str> = s.split('-').collect();
    if parts.len() == 3 {
        let date = (|| {
            let year: i32 = parts[0].parse().ok()?;
            let month: u8 = parts[1].parse().ok()?;
            let day: u8 = parts[2].parse().ok()?;
            Date::new(year, month, day)
        })();
        if let Some(date) = date {
            return Ok(window.start().hours_until(date));
        }
    }
    Err(Error::args(format!(
        "invalid time bound `{s}`: expected hours (e.g. `1200`) or a date (e.g. `2018-03-01`)"
    )))
}

/// Returns a copy of `log` keeping only the records inside `range`,
/// with spec and observation window unchanged.
pub fn clip(log: &FailureLog, range: TimeRange) -> FailureLog {
    if range.is_all() {
        return log.clone();
    }
    let records: Vec<FailureRecord> = log
        .iter()
        .filter(|r| range.contains(r.time()))
        .cloned()
        .collect();
    FailureLog::with_spec(log.generation(), log.spec().clone(), log.window(), records)
        .expect("subset of a valid log is valid")
}

/// Writes a log to a file in the `failscope-log v1` format.
///
/// A path ending in `.gz` is written gzip-compressed (by the in-repo
/// codec), so `failctl generate --out fleet.fslog.gz` and the
/// transparent reader compose without external tooling.
///
/// # Errors
///
/// Returns [`Error`] on I/O failure.
pub fn save(path: impl AsRef<Path>, log: &FailureLog) -> Result<()> {
    let path = path.as_ref();
    if path.extension().is_some_and(|e| e == "gz") {
        let text = csv::to_string(log)?;
        std::fs::write(path, crate::gzip_compress(text.as_bytes()))?;
        return Ok(());
    }
    let file = File::create(path)?;
    csv::write_log(BufWriter::new(file), log)
}

/// Reads a log from a file with default [`ParseOptions`], sniffing and
/// transparently decompressing gzip input.
///
/// # Errors
///
/// Returns [`Error`] on I/O failure or malformed content.
pub fn load(path: impl AsRef<Path>) -> Result<FailureLog> {
    load_with(path, &ParseOptions::default())
}

/// [`load`] with explicit parse options (worker threads, chunk size).
///
/// # Errors
///
/// Same as [`load`].
pub fn load_with(path: impl AsRef<Path>, opts: &ParseOptions) -> Result<FailureLog> {
    let (text, _compression) = crate::read_input(path)?;
    crate::from_str_with(&text, opts)
}

/// [`load`] with optional tracing: records a `log.parse` span and a
/// `parse.records` counter into `trace`.
///
/// # Errors
///
/// Same as [`load`].
pub fn load_traced(
    path: impl AsRef<Path>,
    trace: Option<&failtrace::Collector>,
) -> Result<FailureLog> {
    load_traced_with(path, trace, &ParseOptions::default())
}

/// [`load_with`] with optional tracing: records a `log.parse` span plus
/// `parse.records`, `parse.chunks`, and `parse.chunk_bytes` counters
/// into `trace`. Every counter depends only on the input and chunk
/// size, so trace exports stay byte-identical across thread counts.
///
/// # Errors
///
/// Same as [`load`].
pub fn load_traced_with(
    path: impl AsRef<Path>,
    trace: Option<&failtrace::Collector>,
    opts: &ParseOptions,
) -> Result<FailureLog> {
    let Some(trace) = trace else {
        return load_with(path, opts);
    };
    let mut span = trace.span("log.parse");
    let (text, _compression) = crate::read_input(path)?;
    let log = crate::parallel::from_str_traced(&text, opts, Some(trace))?;
    span.add_items(log.len() as u64);
    trace.incr("parse.records", log.len() as u64);
    Ok(log)
}

/// Renames node ids with a keyed pseudorandom permutation, preserving
/// every analysis result while hiding which physical nodes failed — the
/// kind of anonymization the paper's own released logs required for
/// business sensitivity.
///
/// The same `key` always produces the same permutation, so two logs
/// anonymized with one key remain joinable on node identity.
///
/// # Examples
///
/// ```
/// use failsim::{Simulator, SystemModel};
///
/// let log = Simulator::new(SystemModel::tsubame3(), 1).generate().unwrap();
/// let anon = faillog::anonymize_nodes(&log, 0x5EC);
/// // Same shape: per-node failure-count multiset is unchanged.
/// let mult = |l: &failtypes::FailureLog| {
///     let mut m = std::collections::HashMap::new();
///     for r in l.iter() { *m.entry(r.node()).or_insert(0u32) += 1; }
///     let mut v: Vec<u32> = m.into_values().collect();
///     v.sort_unstable();
///     v
/// };
/// assert_eq!(mult(&log), mult(&anon));
/// ```
pub fn anonymize_nodes(log: &FailureLog, key: u64) -> FailureLog {
    let nodes = log.spec().nodes();
    let perm = keyed_permutation(nodes, key);
    let records: Vec<FailureRecord> = log
        .iter()
        .map(|r| {
            let mut out = FailureRecord::new(
                r.id(),
                r.time(),
                r.ttr(),
                r.category(),
                NodeId::new(perm[r.node().index() as usize]),
            );
            if !r.gpus().is_empty() {
                out = out.with_gpus(r.gpus().iter().copied());
            }
            if let Some(l) = r.locus() {
                out = out.with_locus(l);
            }
            out
        })
        .collect();
    FailureLog::with_spec(log.generation(), log.spec().clone(), log.window(), records)
        .expect("permutation preserves validity")
}

/// Deterministic keyed permutation of `0..n` (Fisher–Yates driven by
/// SplitMix64).
fn keyed_permutation(n: u32, key: u64) -> Vec<u32> {
    let mut state = key ^ 0x9E37_79B9_7F4A_7C15;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut perm: Vec<u32> = (0..n).collect();
    for i in (1..perm.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

/// A quick structural summary of a log, for operator-facing listings.
#[derive(Debug, Clone, PartialEq)]
pub struct LogSummary {
    /// System name.
    pub system: String,
    /// Total failures.
    pub failures: usize,
    /// Distinct nodes that failed at least once.
    pub failing_nodes: usize,
    /// GPU-category failures.
    pub gpu_failures: usize,
    /// Multi-GPU failures.
    pub multi_gpu_failures: usize,
    /// Observation-window length in days.
    pub window_days: f64,
}

/// Summarizes a log.
pub fn summarize(log: &FailureLog) -> LogSummary {
    let mut nodes = std::collections::HashSet::new();
    let mut gpu = 0;
    let mut multi = 0;
    for r in log.iter() {
        nodes.insert(r.node());
        if r.category().is_gpu() {
            gpu += 1;
            if r.is_multi_gpu() {
                multi += 1;
            }
        }
    }
    LogSummary {
        system: log.spec().name().to_string(),
        failures: log.len(),
        failing_nodes: nodes.len(),
        gpu_failures: gpu,
        multi_gpu_failures: multi,
        window_days: log.window().duration().days(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use failsim::{Simulator, SystemModel};

    fn t3_log() -> FailureLog {
        Simulator::new(SystemModel::tsubame3(), 21).generate().unwrap()
    }

    #[test]
    fn save_and_load_roundtrip() {
        let log = t3_log();
        let dir = std::env::temp_dir().join("failscope-test-io");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t3.fslog");
        save(&path, &log).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded, log);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(load("/definitely/not/here.fslog").is_err());
    }

    #[test]
    fn anonymization_is_a_permutation() {
        let log = t3_log();
        let anon = anonymize_nodes(&log, 7);
        assert_eq!(anon.len(), log.len());
        // Everything except node identity is unchanged.
        for (a, b) in log.iter().zip(anon.iter()) {
            assert_eq!(a.time(), b.time());
            assert_eq!(a.ttr(), b.ttr());
            assert_eq!(a.category(), b.category());
            assert_eq!(a.gpus(), b.gpus());
            assert_eq!(a.locus(), b.locus());
        }
        // Identity actually changed for at least some nodes.
        let changed = log
            .iter()
            .zip(anon.iter())
            .filter(|(a, b)| a.node() != b.node())
            .count();
        assert!(changed > log.len() / 2);
    }

    #[test]
    fn anonymization_is_deterministic_per_key() {
        let log = t3_log();
        assert_eq!(anonymize_nodes(&log, 7), anonymize_nodes(&log, 7));
        assert_ne!(anonymize_nodes(&log, 7), anonymize_nodes(&log, 8));
    }

    #[test]
    fn anonymization_preserves_per_node_multiset() {
        let log = t3_log();
        let anon = anonymize_nodes(&log, 99);
        let mult = |l: &FailureLog| {
            let mut m = std::collections::HashMap::new();
            for r in l.iter() {
                *m.entry(r.node()).or_insert(0u32) += 1;
            }
            let mut v: Vec<u32> = m.into_values().collect();
            v.sort_unstable();
            v
        };
        assert_eq!(mult(&log), mult(&anon));
    }

    #[test]
    fn keyed_permutation_is_bijective() {
        let perm = keyed_permutation(1000, 42);
        let mut seen = vec![false; 1000];
        for &p in &perm {
            assert!(!seen[p as usize], "duplicate {p}");
            seen[p as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn time_range_contains_is_inclusive() {
        let r = TimeRange::new(Some(Hours::new(10.0)), Some(Hours::new(20.0)));
        assert!(r.contains(Hours::new(10.0)));
        assert!(r.contains(Hours::new(20.0)));
        assert!(!r.contains(Hours::new(9.999)));
        assert!(!r.contains(Hours::new(20.001)));
        assert!(TimeRange::all().contains(Hours::new(-5.0)));
        assert!(TimeRange::all().is_all());
    }

    #[test]
    fn clip_keeps_only_in_range_records() {
        let log = t3_log();
        let mid = log.window().duration().get() / 2.0;
        let first = clip(&log, TimeRange::new(None, Some(Hours::new(mid))));
        let second = clip(&log, TimeRange::new(Some(Hours::new(mid)), None));
        assert_eq!(first.len() + second.len(), log.len());
        assert!(first.iter().all(|r| r.time().get() <= mid));
        assert!(second.iter().all(|r| r.time().get() >= mid));
        assert_eq!(first.window(), log.window());
        assert_eq!(clip(&log, TimeRange::all()), log);
    }

    #[test]
    fn parse_time_bound_accepts_hours_and_dates() {
        let window = t3_log().window();
        assert_eq!(parse_time_bound("36.5", window).unwrap().get(), 36.5);
        // 2017-05-10 is one day after the Tsubame-3 window start.
        let h = parse_time_bound("2017-05-10", window).unwrap();
        assert!((h.get() - 24.0).abs() < 1e-9);
        assert!(parse_time_bound("yesterday", window).is_err());
        assert!(parse_time_bound("2017-13-40", window).is_err());
        assert!(parse_time_bound("inf", window).is_err());
    }

    #[test]
    fn summary_counts() {
        let log = t3_log();
        let s = summarize(&log);
        assert_eq!(s.failures, 338);
        assert_eq!(s.gpu_failures, 94);
        assert_eq!(s.multi_gpu_failures, 6); // Table III: 4 + 2
        assert!(s.failing_nodes > 50 && s.failing_nodes < 338);
        assert!((s.window_days - 1019.0).abs() < 1e-9);
        assert_eq!(s.system, "Tsubame-3");
    }
}
