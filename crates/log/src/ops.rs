//! Log operations: file helpers, anonymization, and quick summaries.

use std::fs::File;
use std::io::BufWriter;
use std::path::Path;

use failtypes::{FailureLog, FailureRecord, NodeId};

use crate::{csv, ParseOptions};
use failtypes::Result;

/// Writes a log to a file in the `failscope-log v1` format.
///
/// A path ending in `.gz` is written gzip-compressed (by the in-repo
/// codec), so `failctl generate --out fleet.fslog.gz` and the
/// transparent reader compose without external tooling.
///
/// # Errors
///
/// Returns [`Error`](failtypes::Error) on I/O failure.
pub fn save(path: impl AsRef<Path>, log: &FailureLog) -> Result<()> {
    let path = path.as_ref();
    if path.extension().is_some_and(|e| e == "gz") {
        let text = csv::to_string(log)?;
        std::fs::write(path, crate::gzip_compress(text.as_bytes()))?;
        return Ok(());
    }
    let file = File::create(path)?;
    csv::write_log(BufWriter::new(file), log)
}

/// Reads a log from a file with default [`ParseOptions`], sniffing and
/// transparently decompressing gzip input.
///
/// # Errors
///
/// Returns [`Error`](failtypes::Error) on I/O failure or malformed content.
pub fn load(path: impl AsRef<Path>) -> Result<FailureLog> {
    load_with(path, &ParseOptions::default())
}

/// [`load`] with explicit parse options (worker threads, chunk size).
///
/// # Errors
///
/// Same as [`load`].
pub fn load_with(path: impl AsRef<Path>, opts: &ParseOptions) -> Result<FailureLog> {
    let (text, _compression) = crate::read_input(path)?;
    crate::from_str_with(&text, opts)
}

/// [`load`] with optional tracing: records a `log.parse` span and a
/// `parse.records` counter into `trace`.
///
/// # Errors
///
/// Same as [`load`].
pub fn load_traced(
    path: impl AsRef<Path>,
    trace: Option<&failtrace::Collector>,
) -> Result<FailureLog> {
    load_traced_with(path, trace, &ParseOptions::default())
}

/// [`load_with`] with optional tracing: records a `log.parse` span plus
/// `parse.records`, `parse.chunks`, and `parse.chunk_bytes` counters
/// into `trace`. Every counter depends only on the input and chunk
/// size, so trace exports stay byte-identical across thread counts.
///
/// # Errors
///
/// Same as [`load`].
pub fn load_traced_with(
    path: impl AsRef<Path>,
    trace: Option<&failtrace::Collector>,
    opts: &ParseOptions,
) -> Result<FailureLog> {
    let Some(trace) = trace else {
        return load_with(path, opts);
    };
    let mut span = trace.span("log.parse");
    let (text, _compression) = crate::read_input(path)?;
    let log = crate::parallel::from_str_traced(&text, opts, Some(trace))?;
    span.add_items(log.len() as u64);
    trace.incr("parse.records", log.len() as u64);
    Ok(log)
}

/// Renames node ids with a keyed pseudorandom permutation, preserving
/// every analysis result while hiding which physical nodes failed — the
/// kind of anonymization the paper's own released logs required for
/// business sensitivity.
///
/// The same `key` always produces the same permutation, so two logs
/// anonymized with one key remain joinable on node identity.
///
/// # Examples
///
/// ```
/// use failsim::{Simulator, SystemModel};
///
/// let log = Simulator::new(SystemModel::tsubame3(), 1).generate().unwrap();
/// let anon = faillog::anonymize_nodes(&log, 0x5EC);
/// // Same shape: per-node failure-count multiset is unchanged.
/// let mult = |l: &failtypes::FailureLog| {
///     let mut m = std::collections::HashMap::new();
///     for r in l.iter() { *m.entry(r.node()).or_insert(0u32) += 1; }
///     let mut v: Vec<u32> = m.into_values().collect();
///     v.sort_unstable();
///     v
/// };
/// assert_eq!(mult(&log), mult(&anon));
/// ```
pub fn anonymize_nodes(log: &FailureLog, key: u64) -> FailureLog {
    let nodes = log.spec().nodes();
    let perm = keyed_permutation(nodes, key);
    let records: Vec<FailureRecord> = log
        .iter()
        .map(|r| {
            let mut out = FailureRecord::new(
                r.id(),
                r.time(),
                r.ttr(),
                r.category(),
                NodeId::new(perm[r.node().index() as usize]),
            );
            if !r.gpus().is_empty() {
                out = out.with_gpus(r.gpus().iter().copied());
            }
            if let Some(l) = r.locus() {
                out = out.with_locus(l);
            }
            out
        })
        .collect();
    FailureLog::with_spec(log.generation(), log.spec().clone(), log.window(), records)
        .expect("permutation preserves validity")
}

/// Deterministic keyed permutation of `0..n` (Fisher–Yates driven by
/// SplitMix64).
fn keyed_permutation(n: u32, key: u64) -> Vec<u32> {
    let mut state = key ^ 0x9E37_79B9_7F4A_7C15;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut perm: Vec<u32> = (0..n).collect();
    for i in (1..perm.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

/// A quick structural summary of a log, for operator-facing listings.
#[derive(Debug, Clone, PartialEq)]
pub struct LogSummary {
    /// System name.
    pub system: String,
    /// Total failures.
    pub failures: usize,
    /// Distinct nodes that failed at least once.
    pub failing_nodes: usize,
    /// GPU-category failures.
    pub gpu_failures: usize,
    /// Multi-GPU failures.
    pub multi_gpu_failures: usize,
    /// Observation-window length in days.
    pub window_days: f64,
}

/// Summarizes a log.
pub fn summarize(log: &FailureLog) -> LogSummary {
    let mut nodes = std::collections::HashSet::new();
    let mut gpu = 0;
    let mut multi = 0;
    for r in log.iter() {
        nodes.insert(r.node());
        if r.category().is_gpu() {
            gpu += 1;
            if r.is_multi_gpu() {
                multi += 1;
            }
        }
    }
    LogSummary {
        system: log.spec().name().to_string(),
        failures: log.len(),
        failing_nodes: nodes.len(),
        gpu_failures: gpu,
        multi_gpu_failures: multi,
        window_days: log.window().duration().days(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use failsim::{Simulator, SystemModel};

    fn t3_log() -> FailureLog {
        Simulator::new(SystemModel::tsubame3(), 21).generate().unwrap()
    }

    #[test]
    fn save_and_load_roundtrip() {
        let log = t3_log();
        let dir = std::env::temp_dir().join("failscope-test-io");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t3.fslog");
        save(&path, &log).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded, log);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(load("/definitely/not/here.fslog").is_err());
    }

    #[test]
    fn anonymization_is_a_permutation() {
        let log = t3_log();
        let anon = anonymize_nodes(&log, 7);
        assert_eq!(anon.len(), log.len());
        // Everything except node identity is unchanged.
        for (a, b) in log.iter().zip(anon.iter()) {
            assert_eq!(a.time(), b.time());
            assert_eq!(a.ttr(), b.ttr());
            assert_eq!(a.category(), b.category());
            assert_eq!(a.gpus(), b.gpus());
            assert_eq!(a.locus(), b.locus());
        }
        // Identity actually changed for at least some nodes.
        let changed = log
            .iter()
            .zip(anon.iter())
            .filter(|(a, b)| a.node() != b.node())
            .count();
        assert!(changed > log.len() / 2);
    }

    #[test]
    fn anonymization_is_deterministic_per_key() {
        let log = t3_log();
        assert_eq!(anonymize_nodes(&log, 7), anonymize_nodes(&log, 7));
        assert_ne!(anonymize_nodes(&log, 7), anonymize_nodes(&log, 8));
    }

    #[test]
    fn anonymization_preserves_per_node_multiset() {
        let log = t3_log();
        let anon = anonymize_nodes(&log, 99);
        let mult = |l: &FailureLog| {
            let mut m = std::collections::HashMap::new();
            for r in l.iter() {
                *m.entry(r.node()).or_insert(0u32) += 1;
            }
            let mut v: Vec<u32> = m.into_values().collect();
            v.sort_unstable();
            v
        };
        assert_eq!(mult(&log), mult(&anon));
    }

    #[test]
    fn keyed_permutation_is_bijective() {
        let perm = keyed_permutation(1000, 42);
        let mut seen = vec![false; 1000];
        for &p in &perm {
            assert!(!seen[p as usize], "duplicate {p}");
            seen[p as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn summary_counts() {
        let log = t3_log();
        let s = summarize(&log);
        assert_eq!(s.failures, 338);
        assert_eq!(s.gpu_failures, 94);
        assert_eq!(s.multi_gpu_failures, 6); // Table III: 4 + 2
        assert!(s.failing_nodes > 50 && s.failing_nodes < 338);
        assert!((s.window_days - 1019.0).abs() < 1e-9);
        assert_eq!(s.system, "Tsubame-3");
    }
}
