//! Incremental log ingestion: a polling tailer and NDJSON row codec.
//!
//! [`LogTailer`] reads a `failscope-log v1` stream record by record
//! instead of all at once, which is what a live monitor needs: the
//! header is parsed eagerly, then each call to
//! [`LogTailer::next_record`] hands out the next *complete* line as a
//! validated [`FailureRecord`] — or `None` when the reader is currently
//! exhausted, so a follow-mode caller can sleep and poll again while the
//! file grows. Partial trailing lines (a writer mid-`write`) are
//! buffered, never parsed, until their newline arrives;
//! [`LogTailer::flush_partial`] force-parses the remainder once the
//! stream is known to be finished.
//!
//! Body rows may be CSV (the format's native rows) or one-line JSON
//! objects, auto-detected per line, so `failctl watch` can ingest the
//! NDJSON event streams that fleet telemetry pipelines emit:
//!
//! ```text
//! {"id":0,"time_h":10.5,"ttr_h":4.25,"category":"GPU","node":12,"gpus":[0,3],"locus":null}
//! ```

use std::fmt;
use std::io::BufRead;
use std::path::Path;
use std::str::FromStr;

use failtypes::{
    FailureRecord, Generation, GpuSlot, Hours, NodeId, ObservationWindow, SoftwareLocus,
    SystemSpec,
};

use crate::csv::{parse_category, parse_row, HeaderParser};
use crate::inflate::Crc32;
use failtypes::{Error, Result};

/// How far a [`LogTailer`] has consumed its underlying stream — the
/// provenance a `failindex` snapshot needs to fingerprint the byte
/// range its records came from.
///
/// Only *consumed* input counts: a buffered partial line (no newline
/// yet) is excluded until it completes or is force-flushed, so `bytes`
/// always delimits a prefix of the file whose re-parse would yield
/// exactly the records handed out so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TailProgress {
    /// Bytes fully consumed (header included).
    pub bytes: u64,
    /// CRC-32 of those bytes (see [`crate::crc32`]).
    pub crc32: u32,
    /// 1-based count of lines fully consumed.
    pub lines: u64,
}

/// Parses a run of body rows (CSV or NDJSON per line, auto-detected;
/// blank lines skipped) with line numbers rebased by `lineno_offset` —
/// the tail parser `failindex` uses to extend a snapshot over the bytes
/// appended since it was written.
///
/// Rows are *parsed* but not validated against a spec/window — callers
/// feed them through `StreamView::extend`, which enforces the same
/// invariants batch loading does.
///
/// # Errors
///
/// Returns [`Error::Row`] (with the rebased 1-based global line number)
/// for malformed rows.
pub fn parse_body_rows(
    text: &str,
    generation: Generation,
    lineno_offset: usize,
) -> Result<Vec<FailureRecord>> {
    let mut records = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let lineno = lineno_offset + i + 1;
        let rec = if line.starts_with('{') {
            parse_ndjson_row(lineno, line, generation)?
        } else {
            parse_row(lineno, line, generation)?
        };
        records.push(rec);
    }
    Ok(records)
}

/// Serializes one record as a one-line JSON object (no trailing
/// newline), the inverse of the tailer's NDJSON row parser.
///
/// Category and locus labels come from fixed vocabularies that contain
/// no characters needing JSON escapes, so the output is plain `format!`.
pub fn record_to_ndjson(rec: &FailureRecord) -> String {
    let gpus = rec
        .gpus()
        .iter()
        .map(|s| s.index().to_string())
        .collect::<Vec<_>>()
        .join(",");
    let locus = match rec.locus() {
        Some(l) => format!("\"{}\"", l.label()),
        None => "null".to_string(),
    };
    format!(
        "{{\"id\":{},\"time_h\":{},\"ttr_h\":{},\"category\":\"{}\",\"node\":{},\"gpus\":[{gpus}],\"locus\":{locus}}}",
        rec.id(),
        rec.time().get(),
        rec.ttr().get(),
        rec.category().label(),
        rec.node().index(),
    )
}

/// Parses one NDJSON row (see the module docs for the shape).
///
/// `gpus` and `locus` are optional; every other key is required, and
/// unknown keys are rejected so schema drift surfaces immediately.
pub fn parse_ndjson_row(
    lineno: usize,
    line: &str,
    generation: Generation,
) -> Result<FailureRecord> {
    let mut c = JsonCursor::new(lineno, line);
    c.skip_ws();
    c.expect(b'{')?;
    let mut id: Option<u32> = None;
    let mut time: Option<f64> = None;
    let mut ttr: Option<f64> = None;
    let mut category = None;
    let mut node: Option<u32> = None;
    let mut gpus: Vec<GpuSlot> = Vec::new();
    let mut locus: Option<SoftwareLocus> = None;

    c.skip_ws();
    if !c.eat(b'}') {
        loop {
            c.skip_ws();
            let key = c.string("key")?;
            c.skip_ws();
            c.expect(b':')?;
            c.skip_ws();
            match key {
                "id" => id = Some(c.integer("id")?),
                "time_h" => time = Some(c.number("time_h")?),
                "ttr_h" => ttr = Some(c.number("ttr_h")?),
                "category" => {
                    let label = c.string("category")?;
                    category = Some(
                        parse_category(label, generation)
                            .map_err(|msg| Error::row_field(lineno, "category", msg))?,
                    );
                }
                "node" => node = Some(c.integer("node")?),
                "gpus" => {
                    c.expect(b'[')?;
                    c.skip_ws();
                    if !c.eat(b']') {
                        loop {
                            c.skip_ws();
                            let idx: u32 = c.integer("gpus")?;
                            let idx = u8::try_from(idx).map_err(|_| {
                                Error::row_field(
                                    lineno,
                                    "gpus",
                                    format!("GPU slot `{idx}` out of range"),
                                )
                            })?;
                            gpus.push(GpuSlot::new(idx));
                            c.skip_ws();
                            if c.eat(b']') {
                                break;
                            }
                            c.expect(b',')?;
                        }
                    }
                }
                "locus" => {
                    if c.eat_keyword("null") {
                        locus = None;
                    } else {
                        let label = c.string("locus")?;
                        locus = Some(SoftwareLocus::from_str(label).map_err(|e| {
                            Error::row_field(lineno, "locus", e.to_string())
                        })?);
                    }
                }
                other => {
                    return Err(Error::row(lineno, format!("unknown key `{other}`")));
                }
            }
            c.skip_ws();
            if c.eat(b'}') {
                break;
            }
            c.expect(b',')?;
        }
    }
    c.skip_ws();
    if !c.at_end() {
        return Err(Error::row(lineno, "trailing content after object"));
    }

    let missing = |field| Error::row_field(lineno, field, "missing required key");
    let mut rec = FailureRecord::new(
        id.ok_or_else(|| missing("id"))?,
        Hours::new(time.ok_or_else(|| missing("time_h"))?),
        Hours::new(ttr.ok_or_else(|| missing("ttr_h"))?),
        category.ok_or_else(|| missing("category"))?,
        NodeId::new(node.ok_or_else(|| missing("node"))?),
    );
    if !gpus.is_empty() {
        rec = rec.with_gpus(gpus);
    }
    if let Some(l) = locus {
        rec = rec.with_locus(l);
    }
    Ok(rec)
}

/// A minimal cursor over one line of flat JSON — just enough for the
/// NDJSON row shape (strings without escapes, numbers, `null`, arrays
/// of integers). The fixed label vocabularies guarantee no escapes.
struct JsonCursor<'a> {
    lineno: usize,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonCursor<'a> {
    fn new(lineno: usize, line: &'a str) -> Self {
        JsonCursor {
            lineno,
            bytes: line.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, message: impl Into<String>) -> Error {
        Error::row(self.lineno, message)
    }

    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected `{}` at byte {}",
                char::from(b),
                self.pos
            )))
        }
    }

    /// Borrows the string contents straight out of the line — label
    /// matching allocates nothing.
    fn string(&mut self, field: &'static str) -> Result<&'a str> {
        if !self.eat(b'"') {
            return Err(Error::row_field(self.lineno, field, "expected a string"));
        }
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'"' {
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .expect("slice of a str on char boundaries");
                self.pos += 1;
                if s.contains('\\') {
                    return Err(Error::row_field(
                        self.lineno,
                        field,
                        "escapes are not supported in labels",
                    ));
                }
                return Ok(s);
            }
            self.pos += 1;
        }
        Err(Error::row_field(self.lineno, field, "unterminated string"))
    }

    fn number_slice(&mut self) -> &'a str {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice")
    }

    fn number(&mut self, field: &'static str) -> Result<f64> {
        let s = self.number_slice();
        s.parse().map_err(|_| {
            Error::row_field(self.lineno, field, format!("invalid number `{s}`"))
        })
    }

    fn integer(&mut self, field: &'static str) -> Result<u32> {
        let s = self.number_slice();
        s.parse().map_err(|_| {
            Error::row_field(self.lineno, field, format!("invalid integer `{s}`"))
        })
    }
}

/// Incremental, poll-friendly reader for a `failscope-log v1` stream.
///
/// Construction parses the header (which must be complete); thereafter
/// [`next_record`](LogTailer::next_record) yields one validated record
/// per complete body line, `Ok(None)` when the underlying reader has no
/// more data *right now*. On a plain file that means end-of-file; on a
/// growing file the caller can poll again after a delay and the tailer
/// picks up appended bytes, including the completion of a previously
/// partial line.
///
/// # Examples
///
/// ```
/// use failsim::{Simulator, SystemModel};
///
/// let log = Simulator::new(SystemModel::tsubame3(), 3).generate().unwrap();
/// let text = faillog::to_string(&log)?;
/// let mut tailer = faillog::LogTailer::new(text.as_bytes())?;
/// let mut n = 0;
/// while let Some(rec) = tailer.next_record()? {
///     assert!(tailer.window().contains(rec.time()));
///     n += 1;
/// }
/// assert_eq!(n, log.len());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct LogTailer<R> {
    reader: R,
    partial: String,
    lines_consumed: usize,
    /// Bytes fully consumed so far (header included, partials excluded).
    committed_bytes: u64,
    /// Streaming CRC-32 over the committed bytes.
    committed_crc: Crc32,
    generation: Generation,
    spec: SystemSpec,
    window: ObservationWindow,
}

impl LogTailer<crate::InputReader> {
    /// Opens a log file for tailing through the layered
    /// [`crate::InputReader`], so a gzip-compressed replay file tails
    /// exactly like plain text (decoded in-memory, no temp file).
    ///
    /// Follow-mode polling only observes appended bytes on *plain*
    /// files — a gzip member is decoded once at open, so callers that
    /// follow live growth should check [`crate::InputReader::compression`]
    /// (as `failctl watch --follow` does) and reject compressed input.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] if the file cannot be opened or decoded, or
    /// its header is incomplete or malformed.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        Self::open_with_capacity(path, None)
    }

    /// [`LogTailer::open`] with an explicit read-buffer capacity in
    /// bytes for plain files (`--parse-chunk` on the watch CLI).
    ///
    /// # Errors
    ///
    /// See [`LogTailer::open`].
    pub fn open_with_capacity(
        path: impl AsRef<Path>,
        capacity: Option<usize>,
    ) -> Result<Self> {
        LogTailer::new(crate::InputReader::open_with_capacity(path, capacity)?)
    }

    /// The compression detected on the underlying file.
    pub fn compression(&self) -> crate::Compression {
        self.reader.compression()
    }
}

impl<R: BufRead> LogTailer<R> {
    /// Wraps a reader, eagerly parsing the header block.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Header`] if the stream ends before the
    /// column row — a tailed file must have a complete header before
    /// watching starts.
    pub fn new(mut reader: R) -> Result<Self> {
        let mut header = HeaderParser::new();
        let mut lines_consumed = 0;
        let mut committed_bytes = 0u64;
        let mut committed_crc = Crc32::new();
        let mut buf = String::new();
        loop {
            buf.clear();
            if reader.read_line(&mut buf)? == 0 {
                return Err(Error::Header("unexpected end of file".into()));
            }
            let done = header.feed(lines_consumed, &buf)?;
            lines_consumed += 1;
            committed_bytes += buf.len() as u64;
            committed_crc.update(buf.as_bytes());
            if done {
                break;
            }
        }
        let (generation, spec, window) = header.finish()?;
        Ok(LogTailer {
            reader,
            partial: String::new(),
            lines_consumed,
            committed_bytes,
            committed_crc,
            generation,
            spec,
            window,
        })
    }

    /// The generation declared by the header.
    pub fn generation(&self) -> Generation {
        self.generation
    }

    /// The system spec declared by the header.
    pub fn spec(&self) -> &SystemSpec {
        &self.spec
    }

    /// The observation window declared by the header.
    pub fn window(&self) -> ObservationWindow {
        self.window
    }

    /// 1-based number of the last fully consumed line.
    pub fn line(&self) -> usize {
        self.lines_consumed
    }

    /// The committed byte count, checksum, and line count so far (see
    /// [`TailProgress`]).
    pub fn progress(&self) -> TailProgress {
        TailProgress {
            bytes: self.committed_bytes,
            crc32: self.committed_crc.finish(),
            lines: self.lines_consumed as u64,
        }
    }

    /// Marks the current partial/complete line buffer as consumed,
    /// folding it into the committed byte count and checksum.
    fn commit_partial(&mut self) {
        self.lines_consumed += 1;
        self.committed_bytes += self.partial.len() as u64;
        self.committed_crc.update(self.partial.as_bytes());
    }

    /// Pulls the next complete, validated record.
    ///
    /// Returns `Ok(None)` when no newline-terminated line is currently
    /// available; any partial tail stays buffered for the next poll.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] for I/O failures, malformed rows
    /// (with line number and field), and records violating invariants
    /// (with line number).
    pub fn next_record(&mut self) -> Result<Option<FailureRecord>> {
        loop {
            if !self.partial.ends_with('\n') {
                if self.reader.read_line(&mut self.partial)? == 0 {
                    return Ok(None);
                }
                continue;
            }
            self.commit_partial();
            // Parse straight from the line buffer — no per-line copy.
            // The buffer is cleared after the parse either way, so the
            // next poll starts clean even on a row error.
            let line = self.partial.trim();
            if line.is_empty() {
                self.partial.clear();
                continue;
            }
            let parsed = self.parse_and_validate(line).map(Some);
            self.partial.clear();
            return parsed;
        }
    }

    /// Parses a buffered final line that never got its newline — call
    /// once the stream is known to be complete (non-follow ingestion).
    ///
    /// # Errors
    ///
    /// Same as [`next_record`](LogTailer::next_record).
    pub fn flush_partial(&mut self) -> Result<Option<FailureRecord>> {
        if self.partial.trim().is_empty() {
            // Still committed: trailing whitespace is consumed input,
            // just not a line worth numbering.
            self.committed_bytes += self.partial.len() as u64;
            self.committed_crc.update(self.partial.as_bytes());
            self.partial.clear();
            return Ok(None);
        }
        self.commit_partial();
        let parsed = self.parse_and_validate(self.partial.trim()).map(Some);
        self.partial.clear();
        parsed
    }

    fn parse_and_validate(&self, line: &str) -> Result<FailureRecord> {
        let lineno = self.lines_consumed;
        let rec = if line.starts_with('{') {
            parse_ndjson_row(lineno, line, self.generation)?
        } else {
            parse_row(lineno, line, self.generation)?
        };
        rec.validate(self.generation, &self.spec, self.window)
            .map_err(|e| Error::invalid_row(lineno, e))?;
        Ok(rec)
    }
}

impl<R> fmt::Debug for LogTailer<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LogTailer")
            .field("generation", &self.generation)
            .field("lines_consumed", &self.lines_consumed)
            .field("partial_bytes", &self.partial.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use failsim::{Simulator, SystemModel};
    use std::io::Write;

    fn t3_log() -> failtypes::FailureLog {
        Simulator::new(SystemModel::tsubame3(), 31).generate().unwrap()
    }

    #[test]
    fn tailer_reads_whole_log_identically() {
        let log = t3_log();
        let text = crate::to_string(&log).unwrap();
        let mut tailer = LogTailer::new(text.as_bytes()).unwrap();
        assert_eq!(tailer.generation(), log.generation());
        assert_eq!(tailer.spec(), log.spec());
        assert_eq!(tailer.window(), log.window());
        let mut records = Vec::new();
        while let Some(rec) = tailer.next_record().unwrap() {
            records.push(rec);
        }
        assert!(tailer.flush_partial().unwrap().is_none());
        assert_eq!(records.as_slice(), log.records());
    }

    #[test]
    fn ndjson_roundtrip_every_record() {
        let log = t3_log();
        for (i, rec) in log.iter().enumerate() {
            let line = record_to_ndjson(rec);
            let parsed = parse_ndjson_row(i + 1, &line, log.generation()).unwrap();
            assert_eq!(&parsed, rec, "line: {line}");
        }
    }

    #[test]
    fn tailer_accepts_mixed_csv_and_ndjson_rows() {
        let log = t3_log();
        let mut text = String::new();
        // Header from the canonical writer, then alternate row formats.
        let full = crate::to_string(&log).unwrap();
        for line in full.lines().take(7) {
            text.push_str(line);
            text.push('\n');
        }
        for (i, rec) in log.iter().take(10).enumerate() {
            if i % 2 == 0 {
                text.push_str(&record_to_ndjson(rec));
                text.push('\n');
            } else {
                // Reuse the canonical CSV row from the writer output.
                text.push_str(full.lines().nth(7 + i).unwrap());
                text.push('\n');
            }
        }
        let mut tailer = LogTailer::new(text.as_bytes()).unwrap();
        let mut records = Vec::new();
        while let Some(rec) = tailer.next_record().unwrap() {
            records.push(rec);
        }
        assert_eq!(records.as_slice(), &log.records()[..10]);
    }

    #[test]
    fn tailer_buffers_partial_lines_until_completed() {
        let log = t3_log();
        let full = crate::to_string(&log).unwrap();
        let lines: Vec<&str> = full.lines().collect();
        let dir = std::env::temp_dir().join("failscope-test-tail");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("grow.fslog");

        // Header + one complete row + half of the next row.
        let (head, tail) = lines[8].split_at(5);
        let mut f = std::fs::File::create(&path).unwrap();
        write!(f, "{}\n{}\n{head}", lines[..7].join("\n"), lines[7]).unwrap();
        f.flush().unwrap();

        let mut tailer = LogTailer::open(&path).unwrap();
        assert_eq!(
            tailer.next_record().unwrap().as_ref(),
            Some(&log.records()[0])
        );
        // The half row must NOT be parsed yet.
        assert!(tailer.next_record().unwrap().is_none());
        assert!(tailer.next_record().unwrap().is_none());

        // Writer completes the row; the tailer picks it up on next poll.
        writeln!(f, "{tail}").unwrap();
        f.flush().unwrap();
        assert_eq!(
            tailer.next_record().unwrap().as_ref(),
            Some(&log.records()[1])
        );
        assert!(tailer.next_record().unwrap().is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn flush_partial_parses_unterminated_final_line() {
        let log = t3_log();
        let full = crate::to_string(&log).unwrap();
        let text = full.trim_end(); // drop the final newline
        let mut tailer = LogTailer::new(text.as_bytes()).unwrap();
        let mut records = Vec::new();
        while let Some(rec) = tailer.next_record().unwrap() {
            records.push(rec);
        }
        assert_eq!(records.len(), log.len() - 1);
        let last = tailer.flush_partial().unwrap().unwrap();
        assert_eq!(&last, log.records().last().unwrap());
    }

    #[test]
    fn tailer_rejects_incomplete_header() {
        let err = LogTailer::new("# failscope-log v1\n# generation: Tsubame-3\n".as_bytes())
            .unwrap_err();
        assert!(matches!(err, Error::Header(_)), "{err}");
    }

    #[test]
    fn tailer_reports_line_numbers_for_bad_rows() {
        let text = "# failscope-log v1\n# generation: Tsubame-3\n# window: 2017-05-09..2020-02-22\nid,time_h,ttr_h,category,node,gpus,locus\n0,1.0,1.0,GPU,0,,\n1,nope,1.0,GPU,0,,\n";
        let mut tailer = LogTailer::new(text.as_bytes()).unwrap();
        assert!(tailer.next_record().unwrap().is_some());
        let err = tailer.next_record().unwrap_err();
        assert_eq!(err.line(), Some(6));
        assert!(err.to_string().contains("`time_h`"), "{err}");
    }

    #[test]
    fn ndjson_parser_rejects_malformed_lines() {
        let generation = Generation::Tsubame3;
        let bad = [
            "{\"id\":0}",                                 // missing keys
            "{\"id\":0,\"time_h\":1,\"ttr_h\":1,\"category\":\"GPU\",\"node\":0} x", // trailing
            "{\"id\":0,\"color\":3}",                     // unknown key
            "{\"id\":zz}",                                // bad number
            "{\"id\":0,\"category\":\"FAN\"}",            // unknown category
            "{\"id\":0,\"gpus\":[999]}",                  // slot out of u8
            "not json",
        ];
        for line in bad {
            let res = parse_ndjson_row(3, line, generation);
            assert!(res.is_err(), "accepted: {line}");
            if line != "not json" {
                assert_eq!(res.unwrap_err().line(), Some(3));
            }
        }
    }

    #[test]
    fn progress_tracks_committed_bytes_and_checksum() {
        let log = t3_log();
        let text = crate::to_string(&log).unwrap();
        let mut tailer = LogTailer::new(text.as_bytes()).unwrap();
        // The header alone is committed after construction.
        let header = tailer.progress();
        assert!(header.bytes > 0 && (header.bytes as usize) < text.len());
        assert_eq!(
            header.crc32,
            crate::crc32(&text.as_bytes()[..header.bytes as usize])
        );
        while tailer.next_record().unwrap().is_some() {}
        assert!(tailer.flush_partial().unwrap().is_none());
        let done = tailer.progress();
        assert_eq!(done.bytes as usize, text.len());
        assert_eq!(done.crc32, crate::crc32(text.as_bytes()));
        assert_eq!(done.lines as usize, text.lines().count());
        // The committed prefix always ends on a line boundary, so its
        // line count matches the newline-counting formula snapshots use.
        let prefix = &text.as_bytes()[..done.bytes as usize];
        let newline_lines = prefix.iter().filter(|&&b| b == b'\n').count()
            + usize::from(prefix.last() != Some(&b'\n'));
        assert_eq!(done.lines as usize, newline_lines);
    }

    #[test]
    fn progress_excludes_buffered_partial_lines() {
        let log = t3_log();
        let text = crate::to_string(&log).unwrap();
        // Drop the final newline: the last row stays a buffered partial
        // and must not count as committed until it is flushed.
        let cut = text.len() - 1;
        let mut tailer = LogTailer::new(&text.as_bytes()[..cut]).unwrap();
        while tailer.next_record().unwrap().is_some() {}
        let before = tailer.progress();
        assert!((before.bytes as usize) < cut);
        assert_eq!(
            before.crc32,
            crate::crc32(&text.as_bytes()[..before.bytes as usize])
        );
        assert!(tailer.flush_partial().unwrap().is_some());
        let after = tailer.progress();
        assert_eq!(after.bytes as usize, cut);
        assert_eq!(after.crc32, crate::crc32(&text.as_bytes()[..cut]));
        assert_eq!(after.lines, before.lines + 1);
    }

    #[test]
    fn parse_body_rows_matches_the_tailer_and_rebases_linenos() {
        let log = t3_log();
        let text = crate::to_string(&log).unwrap();
        let mut tailer = LogTailer::new(text.as_bytes()).unwrap();
        let header_lines = tailer.line();
        let mut streamed = Vec::new();
        while let Some(rec) = tailer.next_record().unwrap() {
            streamed.push(rec);
        }
        let body_start = text
            .match_indices('\n')
            .nth(header_lines - 1)
            .map(|(i, _)| i + 1)
            .unwrap();
        let rows =
            parse_body_rows(&text[body_start..], log.generation(), header_lines).unwrap();
        assert_eq!(rows, streamed);
        // A malformed row reports its rebased global line number.
        let err = parse_body_rows("\n1,nope,1.0,GPU,0,,\n", Generation::Tsubame3, 7)
            .unwrap_err();
        assert_eq!(err.line(), Some(9));
    }

    #[test]
    fn ndjson_minimal_record_parses() {
        let rec = parse_ndjson_row(
            1,
            "{\"id\":7,\"time_h\":1.5,\"ttr_h\":0.5,\"category\":\"Memory\",\"node\":3}",
            Generation::Tsubame3,
        )
        .unwrap();
        assert_eq!(rec.id(), 7);
        assert!(rec.gpus().is_empty());
        assert!(rec.locus().is_none());
    }
}
