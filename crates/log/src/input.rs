//! Layered log input: magic-byte sniffing with transparent
//! decompression.
//!
//! Fleet archives at the scale the paper's successors analyse (multi-GB
//! job histories) are almost always stored compressed. [`InputReader`]
//! opens a path, sniffs the leading magic bytes, and presents a
//! [`BufRead`] over the *decoded* text — gzip members are inflated
//! in-memory by the in-repo [`crate::inflate`] codec (no temp files,
//! no external processes). Plain text passes straight through a
//! [`BufReader`]. The zstd magic is recognised so the error message is
//! precise, but decoding it is out of scope for now; the sniff table
//! below is the single place a future decoder plugs into.
//!
//! Batch callers that want the whole decoded text at once (the chunked
//! parallel parser needs a contiguous buffer to split) use
//! [`read_input`].

use std::fs::File;
use std::io::{self, BufRead, BufReader, Cursor, Read};
use std::path::Path;

use failtypes::{Error, Result};

use crate::inflate;

/// The zstd frame magic (little-endian 0xFD2FB528), recognised but not
/// yet decoded.
const ZSTD_MAGIC: [u8; 4] = [0x28, 0xB5, 0x2F, 0xFD];

/// The `failindex` snapshot magic (`.fsidx` files): a leading byte that
/// is never valid UTF-8 text (so no log can start with it) followed by
/// the format name. Shared with the `failindex` crate, which writes and
/// validates it — recognised here so a snapshot mistakenly passed as a
/// log is rejected with a precise error instead of a header-parse
/// failure, whatever the file's extension claims.
pub const FSIDX_MAGIC: [u8; 6] = [0x8F, b'F', b'S', b'I', b'D', b'X'];

/// Compression detected on an input file, by magic bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Compression {
    /// No recognised magic: treated as plain `failscope-log v1` text.
    Plain,
    /// RFC 1952 gzip (`1f 8b`), inflated transparently.
    Gzip,
    /// Zstandard frame (`28 b5 2f fd`): recognised so the error can say
    /// so, but not yet decodable.
    Zstd,
    /// A `failindex` `.fsidx` snapshot ([`FSIDX_MAGIC`]): binary
    /// derived data, never valid log input.
    Snapshot,
}

impl Compression {
    /// Classifies a file by its leading bytes.
    pub fn sniff(prefix: &[u8]) -> Compression {
        if prefix.starts_with(&inflate::GZIP_MAGIC) {
            Compression::Gzip
        } else if prefix.starts_with(&ZSTD_MAGIC) {
            Compression::Zstd
        } else if prefix.starts_with(&FSIDX_MAGIC) {
            Compression::Snapshot
        } else {
            Compression::Plain
        }
    }

    /// Human label used in errors and traces.
    pub fn label(self) -> &'static str {
        match self {
            Compression::Plain => "plain",
            Compression::Gzip => "gzip",
            Compression::Zstd => "zstd",
            Compression::Snapshot => "fsidx snapshot",
        }
    }
}

/// A buffered reader over the decoded bytes of a log file, whatever
/// the on-disk encoding.
///
/// Plain files stream through a [`BufReader`]; gzip files are inflated
/// eagerly into memory and served from a cursor (gzip cannot be
/// range-seeked, and the batch parser wants the whole buffer anyway).
///
/// # Examples
///
/// ```no_run
/// use std::io::BufRead;
///
/// let mut reader = faillog::InputReader::open("fleet.fslog.gz")?;
/// assert_eq!(reader.compression(), faillog::Compression::Gzip);
/// let mut first = String::new();
/// reader.read_line(&mut first)?;
/// assert!(first.starts_with("# failscope-log v1"));
/// # Ok::<(), failtypes::Error>(())
/// ```
#[derive(Debug)]
pub struct InputReader {
    source: Source,
    compression: Compression,
}

#[derive(Debug)]
enum Source {
    File(BufReader<File>),
    Memory(Cursor<Vec<u8>>),
}

impl InputReader {
    /// Opens `path`, sniffing and transparently decoding compression.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] on I/O failure, corrupt gzip data, or a
    /// recognised-but-unsupported encoding (zstd).
    pub fn open(path: impl AsRef<Path>) -> Result<InputReader> {
        Self::open_with_capacity(path, None)
    }

    /// [`InputReader::open`] with an explicit buffer capacity in bytes
    /// for the plain-text path (`None` keeps the [`BufReader`]
    /// default). Gzip input is fully in-memory, so capacity does not
    /// apply there.
    ///
    /// # Errors
    ///
    /// See [`InputReader::open`].
    pub fn open_with_capacity(
        path: impl AsRef<Path>,
        capacity: Option<usize>,
    ) -> Result<InputReader> {
        let file = File::open(path.as_ref())?;
        let mut reader = match capacity {
            Some(bytes) => BufReader::with_capacity(bytes.max(16), file),
            None => BufReader::new(file),
        };
        // fill_buf peeks without consuming, so a plain-text reader
        // starts from byte 0.
        let compression = Compression::sniff(reader.fill_buf()?);
        match compression {
            Compression::Plain => Ok(InputReader {
                source: Source::File(reader),
                compression,
            }),
            Compression::Gzip => {
                let mut raw = Vec::new();
                reader.read_to_end(&mut raw)?;
                let decoded = inflate::gzip_decompress(&raw).map_err(gzip_error)?;
                Ok(InputReader {
                    source: Source::Memory(Cursor::new(decoded)),
                    compression,
                })
            }
            Compression::Zstd => Err(zstd_unsupported(path.as_ref())),
            Compression::Snapshot => Err(snapshot_not_a_log(path.as_ref())),
        }
    }

    /// The compression detected on the underlying file.
    pub fn compression(&self) -> Compression {
        self.compression
    }
}

impl Read for InputReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match &mut self.source {
            Source::File(r) => r.read(buf),
            Source::Memory(r) => r.read(buf),
        }
    }
}

impl BufRead for InputReader {
    fn fill_buf(&mut self) -> io::Result<&[u8]> {
        match &mut self.source {
            Source::File(r) => r.fill_buf(),
            Source::Memory(r) => r.fill_buf(),
        }
    }

    fn consume(&mut self, amt: usize) {
        match &mut self.source {
            Source::File(r) => r.consume(amt),
            Source::Memory(r) => r.consume(amt),
        }
    }
}

/// Reads a log file's full decoded text plus the compression it was
/// stored with — the entry point for the chunked parallel parser,
/// which splits one contiguous buffer.
///
/// # Errors
///
/// Same as [`InputReader::open`], plus invalid UTF-8 in the decoded
/// stream.
pub fn read_input(path: impl AsRef<Path>) -> Result<(String, Compression)> {
    let raw = std::fs::read(path.as_ref())?;
    let compression = Compression::sniff(&raw);
    let bytes = match compression {
        Compression::Plain => raw,
        Compression::Gzip => inflate::gzip_decompress(&raw).map_err(gzip_error)?,
        Compression::Zstd => return Err(zstd_unsupported(path.as_ref())),
        Compression::Snapshot => return Err(snapshot_not_a_log(path.as_ref())),
    };
    let text = String::from_utf8(bytes).map_err(|_| {
        Error::io(
            "decoding log input",
            io::Error::new(
                io::ErrorKind::InvalidData,
                "stream did not contain valid UTF-8",
            ),
        )
    })?;
    Ok((text, compression))
}

fn gzip_error(msg: String) -> Error {
    Error::io(
        "inflating gzip input",
        io::Error::new(io::ErrorKind::InvalidData, msg),
    )
}

fn zstd_unsupported(path: &Path) -> Error {
    let display = path.display();
    Error::io(
        "decoding log input",
        io::Error::new(
            io::ErrorKind::Unsupported,
            format!(
                "`{display}` is zstd-compressed, which is not yet supported; \
                 decompress it first (`zstd -d '{display}'`) or recompress with gzip"
            ),
        ),
    )
}

fn snapshot_not_a_log(path: &Path) -> Error {
    let display = path.display();
    Error::io(
        "decoding log input",
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "`{display}` is a failindex `.fsidx` snapshot, not a failscope log; \
                 point the command at the source log (snapshots load automatically \
                 via `--index`, see `failctl index`)"
            ),
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("failscope-test-input");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let mut f = File::create(&path).unwrap();
        f.write_all(bytes).unwrap();
        path
    }

    #[test]
    fn sniff_classifies_magic_bytes() {
        assert_eq!(Compression::sniff(b"# failscope-log v1"), Compression::Plain);
        assert_eq!(Compression::sniff(&[0x1F, 0x8B, 8, 0]), Compression::Gzip);
        assert_eq!(
            Compression::sniff(&[0x28, 0xB5, 0x2F, 0xFD, 0]),
            Compression::Zstd
        );
        assert_eq!(
            Compression::sniff(&[0x8F, b'F', b'S', b'I', b'D', b'X', 1, 0]),
            Compression::Snapshot
        );
        assert_eq!(Compression::sniff(b""), Compression::Plain);
        assert_eq!(Compression::sniff(&[0x1F]), Compression::Plain);
        assert_eq!(Compression::sniff(&[0x8F, b'F', b'S']), Compression::Plain);
    }

    #[test]
    fn sniffing_beats_misleading_extensions() {
        // Content decides, never the file name: gzip bytes under a
        // plain `.fslog` name still inflate, plain text under `.gz`
        // still reads from byte zero, and `.fsidx` snapshot bytes are
        // rejected as snapshots whatever the extension claims.
        let body = b"# failscope-log v1\npayload\n";
        let gz_as_plain = tmp("mislabeled.fslog", &inflate::gzip_compress(body));
        let r = InputReader::open(&gz_as_plain).unwrap();
        assert_eq!(r.compression(), Compression::Gzip);
        let plain_as_gz = tmp("mislabeled.fslog.gz", body);
        let r = InputReader::open(&plain_as_gz).unwrap();
        assert_eq!(r.compression(), Compression::Plain);

        let mut snapshot = FSIDX_MAGIC.to_vec();
        snapshot.extend_from_slice(&[1, 0, 0xAB, 0xCD]);
        for name in ["snap.fsidx", "snap.fslog", "snap.fslog.gz"] {
            let path = tmp(name, &snapshot);
            let err = InputReader::open(&path).unwrap_err();
            assert!(err.to_string().contains(".fsidx"), "{name}: {err}");
            assert!(err.to_string().contains(name), "{name}: {err}");
            let err = read_input(&path).unwrap_err();
            assert!(err.to_string().contains("snapshot"), "{name}: {err}");
        }
    }

    #[test]
    fn plain_file_reads_from_byte_zero() {
        let path = tmp("plain.fslog", b"# failscope-log v1\nrest\n");
        let mut r = InputReader::open(&path).unwrap();
        assert_eq!(r.compression(), Compression::Plain);
        let mut text = String::new();
        r.read_to_string(&mut text).unwrap();
        assert_eq!(text, "# failscope-log v1\nrest\n");
    }

    #[test]
    fn gzip_file_decodes_transparently() {
        let body = b"# failscope-log v1\nline two\n";
        let path = tmp("packed.fslog.gz", &inflate::gzip_compress(body));
        let mut r = InputReader::open(&path).unwrap();
        assert_eq!(r.compression(), Compression::Gzip);
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        assert_eq!(line, "# failscope-log v1\n");
        let (text, comp) = read_input(&path).unwrap();
        assert_eq!(comp, Compression::Gzip);
        assert_eq!(text.as_bytes(), body);
    }

    #[test]
    fn corrupt_gzip_is_an_input_error() {
        let mut bytes = inflate::gzip_compress(b"payload payload payload");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        let path = tmp("corrupt.fslog.gz", &bytes);
        let err = InputReader::open(&path).unwrap_err();
        assert!(err.to_string().contains("gzip"), "{err}");
        assert!(read_input(&path).is_err());
    }

    #[test]
    fn zstd_is_recognised_but_unsupported() {
        let path = tmp("future.fslog.zst", &[0x28, 0xB5, 0x2F, 0xFD, 0, 0, 0]);
        let err = InputReader::open(&path).unwrap_err();
        assert!(err.to_string().contains("zstd"), "{err}");
        // The error names the offending file and the way out.
        assert!(err.to_string().contains("future.fslog.zst"), "{err}");
        assert!(err.to_string().contains("zstd -d"), "{err}");
        let err = read_input(&path).unwrap_err();
        assert!(err.to_string().contains("zstd -d"), "{err}");
    }

    #[test]
    fn capacity_knob_still_decodes_correctly() {
        let path = tmp("tiny-buf.fslog", b"abc\ndef\nghi\n");
        let mut r = InputReader::open_with_capacity(&path, Some(1)).unwrap();
        let mut text = String::new();
        r.read_to_string(&mut text).unwrap();
        assert_eq!(text, "abc\ndef\nghi\n");
    }

    #[test]
    fn missing_file_errors() {
        assert!(InputReader::open("/definitely/not/here.fslog").is_err());
        assert!(read_input("/definitely/not/here.fslog").is_err());
    }
}
