//! In-repo gzip codec: a complete RFC 1951 DEFLATE decoder plus a
//! small LZ77/fixed-Huffman compressor, wrapped in the RFC 1952 gzip
//! member format.
//!
//! The build environment vendors no compression crates, so transparent
//! ingestion of `.fslog.gz` fleet archives needs its own decoder. The
//! decoder side is complete — stored, fixed-Huffman, and
//! dynamic-Huffman blocks, multi-member streams, CRC32 and length
//! trailers — so archives produced by any standard `gzip`/`zlib`
//! implementation inflate correctly. The encoder side is deliberately
//! small: greedy LZ77 matching over a 32 KiB window emitted with the
//! fixed Huffman code, which compresses the highly repetitive
//! `failscope-log v1` text to roughly a third while staying ~150 lines.
//! Output from [`gzip_compress`] is a fully standard gzip member any
//! external `gunzip` accepts.
//!
//! Errors are plain `String` descriptions; the [`crate::input`] layer
//! maps them onto [`failtypes::Error`] with I/O context.

/// Maximum bits in a DEFLATE Huffman code.
const MAX_BITS: usize = 15;
/// Length-code bases and extra bits, codes 257..=285 (RFC 1951 §3.2.5).
const LENGTH_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115,
    131, 163, 195, 227, 258,
];
const LENGTH_EXTRA: [u8; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];
/// Distance-code bases and extra bits, codes 0..=29.
const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
const DIST_EXTRA: [u8; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12,
    13, 13,
];
/// Order in which code-length code lengths are stored (RFC 1951 §3.2.7).
const CLEN_ORDER: [usize; 19] = [
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
];

/// LSB-first bit reader over a byte slice.
struct BitReader<'a> {
    data: &'a [u8],
    /// Next unread byte.
    pos: usize,
    /// Bit accumulator, low bits first.
    bits: u32,
    /// Number of valid bits in the accumulator.
    count: u32,
}

impl<'a> BitReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        BitReader { data, pos: 0, bits: 0, count: 0 }
    }

    fn take(&mut self, n: u32) -> Result<u32, String> {
        debug_assert!(n <= 16);
        while self.count < n {
            let byte = *self
                .data
                .get(self.pos)
                .ok_or_else(|| "unexpected end of deflate stream".to_string())?;
            self.bits |= u32::from(byte) << self.count;
            self.count += 8;
            self.pos += 1;
        }
        let value = self.bits & ((1u32 << n) - 1);
        self.bits >>= n;
        self.count -= n;
        Ok(value)
    }

    /// Discards partial bits so the next read starts on a byte boundary.
    fn align(&mut self) {
        let drop = self.count % 8;
        self.bits >>= drop;
        self.count -= drop;
    }

    /// Byte offset of the next unconsumed input byte (accumulator
    /// included), valid only when byte-aligned.
    fn byte_pos(&self) -> usize {
        self.pos - (self.count / 8) as usize
    }
}

/// A canonical Huffman decoding table in the `puff.c` counts/symbols
/// form: `count[l]` codes of length `l`, symbols sorted by (length,
/// symbol order).
struct Huffman {
    count: [u16; MAX_BITS + 1],
    symbol: Vec<u16>,
}

impl Huffman {
    /// Builds a table from per-symbol code lengths (0 = unused).
    fn new(lengths: &[u8]) -> Result<Huffman, String> {
        let mut count = [0u16; MAX_BITS + 1];
        for &len in lengths {
            count[len as usize] += 1;
        }
        if count[0] as usize == lengths.len() {
            // No codes at all — legal for an unused distance table.
            return Ok(Huffman { count, symbol: Vec::new() });
        }
        // An over-subscribed or incomplete code is invalid, except for
        // the degenerate one-code case gzip emits for single-distance
        // streams (left incomplete by construction).
        let mut left = 1i32;
        for &n in count.iter().skip(1) {
            left <<= 1;
            left -= i32::from(n);
            if left < 0 {
                return Err("over-subscribed Huffman code".into());
            }
        }
        let mut offsets = [0u16; MAX_BITS + 1];
        for len in 1..MAX_BITS {
            offsets[len + 1] = offsets[len] + count[len];
        }
        let mut symbol = vec![0u16; lengths.len()];
        for (sym, &len) in lengths.iter().enumerate() {
            if len != 0 {
                symbol[offsets[len as usize] as usize] = sym as u16;
                offsets[len as usize] += 1;
            }
        }
        Ok(Huffman { count, symbol })
    }

    /// Decodes one symbol, reading bits MSB-of-code-first.
    fn decode(&self, r: &mut BitReader<'_>) -> Result<u16, String> {
        let mut code = 0i32;
        let mut first = 0i32;
        let mut index = 0i32;
        for len in 1..=MAX_BITS {
            code |= r.take(1)? as i32;
            let count = i32::from(self.count[len]);
            if code - count < first {
                return Ok(self.symbol[(index + (code - first)) as usize]);
            }
            index += count;
            first = (first + count) << 1;
            code <<= 1;
        }
        Err("invalid Huffman code".into())
    }
}

fn fixed_literal_lengths() -> [u8; 288] {
    let mut lengths = [8u8; 288];
    lengths[144..256].fill(9);
    lengths[256..280].fill(7);
    lengths
}

/// Inflates a raw DEFLATE stream. Returns the decompressed bytes and
/// the number of input bytes consumed (so the gzip layer can find the
/// trailer and any following member).
pub(crate) fn inflate(data: &[u8]) -> Result<(Vec<u8>, usize), String> {
    let mut r = BitReader::new(data);
    let mut out = Vec::with_capacity(data.len().saturating_mul(4));
    loop {
        let bfinal = r.take(1)?;
        let btype = r.take(2)?;
        match btype {
            0 => inflate_stored(&mut r, &mut out)?,
            1 => {
                let lit = Huffman::new(&fixed_literal_lengths())?;
                let dist = Huffman::new(&[5u8; 30])?;
                inflate_block(&mut r, &lit, &dist, &mut out)?;
            }
            2 => {
                let (lit, dist) = read_dynamic_tables(&mut r)?;
                inflate_block(&mut r, &lit, &dist, &mut out)?;
            }
            _ => return Err("reserved deflate block type 3".into()),
        }
        if bfinal == 1 {
            break;
        }
    }
    r.align();
    Ok((out, r.byte_pos()))
}

fn inflate_stored(r: &mut BitReader<'_>, out: &mut Vec<u8>) -> Result<(), String> {
    r.align();
    let len = r.take(16)? as usize;
    let nlen = r.take(16)? as usize;
    if len ^ nlen != 0xFFFF {
        return Err("stored block length check failed".into());
    }
    let start = r.byte_pos();
    let end = start + len;
    if end > r.data.len() {
        return Err("stored block overruns the input".into());
    }
    out.extend_from_slice(&r.data[start..end]);
    r.pos = end;
    Ok(())
}

fn read_dynamic_tables(r: &mut BitReader<'_>) -> Result<(Huffman, Huffman), String> {
    let hlit = r.take(5)? as usize + 257;
    let hdist = r.take(5)? as usize + 1;
    let hclen = r.take(4)? as usize + 4;
    if hlit > 286 || hdist > 30 {
        return Err("dynamic block declares too many codes".into());
    }
    let mut clen_lengths = [0u8; 19];
    for &idx in CLEN_ORDER.iter().take(hclen) {
        clen_lengths[idx] = r.take(3)? as u8;
    }
    let clen = Huffman::new(&clen_lengths)?;

    let mut lengths = vec![0u8; hlit + hdist];
    let mut i = 0;
    while i < lengths.len() {
        let sym = clen.decode(r)?;
        match sym {
            0..=15 => {
                lengths[i] = sym as u8;
                i += 1;
            }
            16 => {
                if i == 0 {
                    return Err("length repeat with no previous length".into());
                }
                let prev = lengths[i - 1];
                let reps = 3 + r.take(2)? as usize;
                for _ in 0..reps {
                    if i >= lengths.len() {
                        return Err("length repeats overflow the tables".into());
                    }
                    lengths[i] = prev;
                    i += 1;
                }
            }
            17 | 18 => {
                let reps = if sym == 17 {
                    3 + r.take(3)? as usize
                } else {
                    11 + r.take(7)? as usize
                };
                if i + reps > lengths.len() {
                    return Err("length repeats overflow the tables".into());
                }
                i += reps; // already zero
            }
            _ => return Err("invalid code-length symbol".into()),
        }
    }
    if lengths[256] == 0 {
        return Err("dynamic block has no end-of-block code".into());
    }
    let lit = Huffman::new(&lengths[..hlit])?;
    let dist = Huffman::new(&lengths[hlit..])?;
    Ok((lit, dist))
}

fn inflate_block(
    r: &mut BitReader<'_>,
    lit: &Huffman,
    dist: &Huffman,
    out: &mut Vec<u8>,
) -> Result<(), String> {
    loop {
        let sym = lit.decode(r)?;
        match sym {
            0..=255 => out.push(sym as u8),
            256 => return Ok(()),
            257..=285 => {
                let idx = sym as usize - 257;
                let len =
                    LENGTH_BASE[idx] as usize + r.take(u32::from(LENGTH_EXTRA[idx]))? as usize;
                let dsym = dist.decode(r)? as usize;
                if dsym >= 30 {
                    return Err("invalid distance code".into());
                }
                let distance =
                    DIST_BASE[dsym] as usize + r.take(u32::from(DIST_EXTRA[dsym]))? as usize;
                if distance > out.len() {
                    return Err("back-reference before start of output".into());
                }
                // Overlapping copies are the point (run-length encoding
                // via distance < length), so copy byte by byte.
                let from = out.len() - distance;
                for i in 0..len {
                    let byte = out[from + i];
                    out.push(byte);
                }
            }
            _ => return Err("invalid literal/length symbol".into()),
        }
    }
}

/// The 16 × 256 slicing tables for [`Crc32`], built once per process.
///
/// `table[0]` is the classic byte-at-a-time table; `table[k]` maps a
/// byte processed `k` positions earlier in a 16-byte block to its
/// contribution to the running CRC, letting [`Crc32::update`] fold 16
/// input bytes per iteration instead of one.
fn crc32_tables() -> &'static [[u32; 256]; 16] {
    static TABLES: std::sync::OnceLock<Box<[[u32; 256]; 16]>> = std::sync::OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = Box::new([[0u32; 256]; 16]);
        for n in 0..256usize {
            let mut c = n as u32;
            for _ in 0..8 {
                c = if c & 1 == 1 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            t[0][n] = c;
        }
        for k in 1..16 {
            for n in 0..256usize {
                let prev = t[k - 1][n];
                t[k][n] = t[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            }
        }
        t
    })
}

/// Streaming CRC-32 hasher (IEEE, reflected polynomial `0xEDB88320`) —
/// the gzip-trailer checksum, also used by `failindex` to fingerprint
/// source logs for `.fsidx` snapshots.
///
/// Feed bytes incrementally with [`update`](Crc32::update) and read the
/// digest with [`finish`](Crc32::finish); streaming any split of the
/// input produces the same digest as the one-shot [`crc32`] helper.
/// The hot loop folds 16 bytes per step (slicing-by-16), sustaining
/// multi-GB/s so checksumming never dominates warm-path loads.
///
/// # Examples
///
/// ```
/// use faillog::{crc32, Crc32};
///
/// let mut hasher = Crc32::new();
/// hasher.update(b"123");
/// hasher.update(b"456789");
/// assert_eq!(hasher.finish(), 0xCBF4_3926);
/// assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
/// ```
#[derive(Debug, Clone)]
pub struct Crc32 {
    /// Running CRC state, pre-inverted (`!crc` of the digest so far).
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// A fresh hasher (digest of the empty input is `0`).
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Folds `data` into the running checksum.
    pub fn update(&mut self, data: &[u8]) {
        let t = crc32_tables();
        let mut crc = self.state;
        let mut chunks = data.chunks_exact(16);
        for chunk in &mut chunks {
            let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ crc;
            crc = t[15][(lo & 0xFF) as usize]
                ^ t[14][((lo >> 8) & 0xFF) as usize]
                ^ t[13][((lo >> 16) & 0xFF) as usize]
                ^ t[12][(lo >> 24) as usize]
                ^ t[11][chunk[4] as usize]
                ^ t[10][chunk[5] as usize]
                ^ t[9][chunk[6] as usize]
                ^ t[8][chunk[7] as usize]
                ^ t[7][chunk[8] as usize]
                ^ t[6][chunk[9] as usize]
                ^ t[5][chunk[10] as usize]
                ^ t[4][chunk[11] as usize]
                ^ t[3][chunk[12] as usize]
                ^ t[2][chunk[13] as usize]
                ^ t[1][chunk[14] as usize]
                ^ t[0][chunk[15] as usize];
        }
        for &byte in chunks.remainder() {
            crc = t[0][((crc ^ u32::from(byte)) & 0xFF) as usize] ^ (crc >> 8);
        }
        self.state = crc;
    }

    /// The digest of everything fed so far (the hasher stays usable —
    /// further [`update`](Crc32::update) calls keep extending it).
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 (IEEE, reflected `0xEDB88320`) over `data` — the
/// gzip trailer checksum. Equivalent to streaming `data` through
/// [`Crc32`] in any number of pieces.
pub fn crc32(data: &[u8]) -> u32 {
    let mut hasher = Crc32::new();
    hasher.update(data);
    hasher.finish()
}

/// The two gzip magic bytes.
pub(crate) const GZIP_MAGIC: [u8; 2] = [0x1F, 0x8B];

/// Decompresses a complete gzip stream (one or more members, as
/// produced by concatenating gzip files), validating each member's
/// CRC32 and length trailer.
pub fn gzip_decompress(data: &[u8]) -> Result<Vec<u8>, String> {
    let mut out = Vec::new();
    let mut rest = data;
    if !rest.starts_with(&GZIP_MAGIC) {
        return Err("missing gzip magic bytes".into());
    }
    while !rest.is_empty() {
        rest = gzip_member(rest, &mut out)?;
        if !rest.is_empty() && !rest.starts_with(&GZIP_MAGIC) {
            return Err("trailing garbage after gzip member".into());
        }
    }
    Ok(out)
}

/// Decodes one member, appending to `out`; returns the remaining bytes.
fn gzip_member<'a>(data: &'a [u8], out: &mut Vec<u8>) -> Result<&'a [u8], String> {
    if data.len() < 10 {
        return Err("truncated gzip header".into());
    }
    if data[0..2] != GZIP_MAGIC {
        return Err("missing gzip magic bytes".into());
    }
    if data[2] != 8 {
        return Err(format!("unsupported gzip compression method {}", data[2]));
    }
    let flg = data[3];
    if flg & 0xE0 != 0 {
        return Err("reserved gzip FLG bits set".into());
    }
    let mut pos = 10;
    if flg & 0x04 != 0 {
        // FEXTRA: u16 little-endian length, then the field.
        if data.len() < pos + 2 {
            return Err("truncated gzip FEXTRA".into());
        }
        let xlen = u16::from_le_bytes([data[pos], data[pos + 1]]) as usize;
        pos += 2 + xlen;
    }
    for flag in [0x08u8, 0x10] {
        // FNAME, FCOMMENT: zero-terminated strings.
        if flg & flag != 0 {
            let end = data[pos.min(data.len())..]
                .iter()
                .position(|&b| b == 0)
                .ok_or_else(|| "unterminated gzip name/comment".to_string())?;
            pos += end + 1;
        }
    }
    if flg & 0x02 != 0 {
        pos += 2; // FHCRC: header CRC16, not validated.
    }
    if pos > data.len() {
        return Err("truncated gzip header fields".into());
    }

    let before = out.len();
    let (inflated, consumed) = inflate(&data[pos..])?;
    out.extend_from_slice(&inflated);
    let trailer_at = pos + consumed;
    if data.len() < trailer_at + 8 {
        return Err("truncated gzip trailer".into());
    }
    let t = &data[trailer_at..trailer_at + 8];
    let expect_crc = u32::from_le_bytes([t[0], t[1], t[2], t[3]]);
    let expect_len = u32::from_le_bytes([t[4], t[5], t[6], t[7]]);
    let member = &out[before..];
    if crc32(member) != expect_crc {
        return Err("gzip CRC32 mismatch".into());
    }
    if member.len() as u32 != expect_len {
        return Err("gzip length (ISIZE) mismatch".into());
    }
    Ok(&data[trailer_at + 8..])
}

/// LSB-first bit writer, the mirror of [`BitReader`].
struct BitWriter {
    out: Vec<u8>,
    bits: u32,
    count: u32,
}

impl BitWriter {
    fn new() -> Self {
        BitWriter { out: Vec::new(), bits: 0, count: 0 }
    }

    fn put(&mut self, value: u32, n: u32) {
        self.bits |= value << self.count;
        self.count += n;
        while self.count >= 8 {
            self.out.push((self.bits & 0xFF) as u8);
            self.bits >>= 8;
            self.count -= 8;
        }
    }

    /// Huffman codes are transmitted MSB first; reverse before writing.
    fn put_code(&mut self, code: u32, n: u32) {
        let mut rev = 0u32;
        for i in 0..n {
            rev |= ((code >> i) & 1) << (n - 1 - i);
        }
        self.put(rev, n);
    }

    fn finish(mut self) -> Vec<u8> {
        if self.count > 0 {
            self.out.push((self.bits & 0xFF) as u8);
        }
        self.out
    }
}

/// Canonical code values for the fixed literal/length alphabet.
fn fixed_literal_codes() -> Vec<(u32, u32)> {
    let lengths = fixed_literal_lengths();
    // Canonical assignment (RFC 1951 §3.2.2).
    let mut bl_count = [0u32; MAX_BITS + 1];
    for &l in &lengths {
        bl_count[l as usize] += 1;
    }
    let mut next_code = [0u32; MAX_BITS + 1];
    let mut code = 0;
    for bits in 1..=MAX_BITS {
        code = (code + bl_count[bits - 1]) << 1;
        next_code[bits] = code;
    }
    lengths
        .iter()
        .map(|&l| {
            let c = next_code[l as usize];
            next_code[l as usize] += 1;
            (c, u32::from(l))
        })
        .collect()
}

/// Greedy LZ77 + fixed-Huffman DEFLATE of `data` as a single final
/// block.
fn deflate_fixed(data: &[u8]) -> Vec<u8> {
    const WINDOW: usize = 32 * 1024;
    const MIN_MATCH: usize = 3;
    const MAX_MATCH: usize = 258;
    const HASH_BITS: u32 = 15;

    let codes = fixed_literal_codes();
    let mut w = BitWriter::new();
    w.put(1, 1); // BFINAL
    w.put(1, 2); // BTYPE = fixed Huffman

    let hash = |p: usize| -> usize {
        let v = u32::from(data[p])
            | u32::from(data[p + 1]) << 8
            | u32::from(data[p + 2]) << 16;
        (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
    };
    // Single-probe hash table of the most recent position for each
    // 3-byte prefix; greedy matching is plenty for log text.
    let mut head = vec![usize::MAX; 1 << HASH_BITS];

    let emit_literal = |w: &mut BitWriter, byte: u8| {
        let (code, len) = codes[byte as usize];
        w.put_code(code, len);
    };
    let emit_match = |w: &mut BitWriter, length: usize, distance: usize| {
        let li = LENGTH_BASE
            .iter()
            .rposition(|&b| b as usize <= length)
            .expect("length >= 3");
        // Code 284 covers 227..=257; 258 has its own code 285.
        let li = if length == 258 { 28 } else { li.min(27) };
        let (code, bits) = codes[257 + li];
        w.put_code(code, bits);
        w.put(
            (length - LENGTH_BASE[li] as usize) as u32,
            u32::from(LENGTH_EXTRA[li]),
        );
        let di = DIST_BASE
            .iter()
            .rposition(|&b| b as usize <= distance)
            .expect("distance >= 1");
        w.put_code(di as u32, 5);
        w.put(
            (distance - DIST_BASE[di] as usize) as u32,
            u32::from(DIST_EXTRA[di]),
        );
    };

    let mut pos = 0;
    while pos < data.len() {
        let mut matched = 0usize;
        let mut match_dist = 0usize;
        if pos + MIN_MATCH <= data.len() {
            let h = hash(pos);
            let candidate = head[h];
            head[h] = pos;
            if candidate != usize::MAX && pos - candidate <= WINDOW {
                let limit = (data.len() - pos).min(MAX_MATCH);
                let mut n = 0;
                while n < limit && data[candidate + n] == data[pos + n] {
                    n += 1;
                }
                if n >= MIN_MATCH {
                    matched = n;
                    match_dist = pos - candidate;
                }
            }
        }
        if matched >= MIN_MATCH {
            emit_match(&mut w, matched, match_dist);
            // Index the skipped positions so later matches can land in
            // the middle of this run.
            let end = (pos + matched).min(data.len().saturating_sub(MIN_MATCH - 1));
            for p in pos + 1..end {
                head[hash(p)] = p;
            }
            pos += matched;
        } else {
            emit_literal(&mut w, data[pos]);
            pos += 1;
        }
    }
    let (code, len) = codes[256];
    w.put_code(code, len); // end of block
    w.finish()
}

/// Compresses `data` into a standard single-member gzip stream
/// (fixed-Huffman DEFLATE, zeroed MTIME, OS = unknown).
pub fn gzip_compress(data: &[u8]) -> Vec<u8> {
    let mut out = vec![
        GZIP_MAGIC[0],
        GZIP_MAGIC[1],
        8,    // CM = deflate
        0,    // FLG
        0, 0, 0, 0, // MTIME
        0,    // XFL
        255,  // OS = unknown
    ];
    out.extend_from_slice(&deflate_fixed(data));
    out.extend_from_slice(&crc32(data).to_le_bytes());
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"hello world"), 0x0D4A_1185);
    }

    #[test]
    fn crc32_streaming_matches_one_shot_at_any_split() {
        // Long enough to exercise the 16-byte slicing fast path, odd
        // enough to leave a remainder tail.
        let data: Vec<u8> = (0..=255u8).cycle().take(1037).collect();
        let expect = crc32(&data);
        for split in [0, 1, 7, 15, 16, 17, 64, 500, 1036, 1037] {
            let mut hasher = Crc32::new();
            hasher.update(&data[..split]);
            hasher.update(&data[split..]);
            assert_eq!(hasher.finish(), expect, "split={split}");
        }
        // Byte-at-a-time streaming (worst case for the hasher) agrees too.
        let mut hasher = Crc32::new();
        for byte in &data {
            hasher.update(std::slice::from_ref(byte));
        }
        assert_eq!(hasher.finish(), expect);
        assert_eq!(Crc32::default().finish(), 0);
    }

    #[test]
    fn roundtrip_small_and_empty() {
        for data in [&b""[..], b"a", b"abc", b"hello hello hello hello"] {
            let gz = gzip_compress(data);
            assert_eq!(gzip_decompress(&gz).unwrap(), data, "{data:?}");
        }
    }

    #[test]
    fn roundtrip_repetitive_log_text_compresses() {
        let line = b"12345,8760.25,4.5,GPU,539,0|1|2|3,\n";
        let mut data = Vec::new();
        for _ in 0..2000 {
            data.extend_from_slice(line);
        }
        let gz = gzip_compress(&data);
        assert!(
            gz.len() * 3 < data.len(),
            "repetitive text should compress >3x: {} vs {}",
            gz.len(),
            data.len()
        );
        assert_eq!(gzip_decompress(&gz).unwrap(), data);
    }

    #[test]
    fn roundtrip_incompressible_bytes() {
        // SplitMix64 noise: matches are rare, mostly literals.
        let mut state = 0x1234_5678u64;
        let mut data = Vec::new();
        for _ in 0..10_000 {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            data.extend_from_slice(&(z ^ (z >> 31)).to_le_bytes());
        }
        let gz = gzip_compress(&data);
        assert_eq!(gzip_decompress(&gz).unwrap(), data);
    }

    #[test]
    fn decodes_stored_blocks() {
        // Hand-built member: one stored block, "stored!".
        let payload = b"stored!";
        let mut gz = vec![0x1F, 0x8B, 8, 0, 0, 0, 0, 0, 0, 255];
        gz.push(0b001); // BFINAL=1, BTYPE=00
        gz.extend_from_slice(&(payload.len() as u16).to_le_bytes());
        gz.extend_from_slice(&(!(payload.len() as u16)).to_le_bytes());
        gz.extend_from_slice(payload);
        gz.extend_from_slice(&crc32(payload).to_le_bytes());
        gz.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        assert_eq!(gzip_decompress(&gz).unwrap(), payload);
    }

    #[test]
    fn decodes_reference_dynamic_huffman_member() {
        // Produced by zlib level 9 (dynamic-Huffman block, BTYPE=2) over
        // 5323 bytes of varied fleet-log vocabulary — exercises the
        // dynamic table reader against a real external encoder.
        let gz = reference_gzip();
        assert_eq!((gz[10] >> 1) & 3, 2, "vector must be a dynamic block");
        let raw = gzip_decompress(&gz).unwrap();
        assert_eq!(raw.len(), 5323);
        assert!(raw.starts_with(b"multi970 failure404 icache49 node840"));
        assert!(raw.ends_with(b"icache111 xid739"));
        // And our own compressor round-trips the same content.
        assert_eq!(gzip_decompress(&gzip_compress(&raw)).unwrap(), raw);
    }

    #[test]
    fn multi_member_streams_concatenate() {
        let mut gz = gzip_compress(b"first,");
        gz.extend_from_slice(&gzip_compress(b"second"));
        assert_eq!(gzip_decompress(&gz).unwrap(), b"first,second");
    }

    #[test]
    fn skips_optional_header_fields() {
        // FLG = FNAME | FCOMMENT | FEXTRA | FHCRC.
        let payload = b"with headers";
        let deflate_and_trailer = {
            let full = gzip_compress(payload);
            full[10..].to_vec()
        };
        let mut gz = vec![0x1F, 0x8B, 8, 0x1E, 0, 0, 0, 0, 0, 255];
        gz.extend_from_slice(&3u16.to_le_bytes()); // FEXTRA len
        gz.extend_from_slice(b"xyz");
        gz.extend_from_slice(b"name.fslog\0");
        gz.extend_from_slice(b"a comment\0");
        gz.extend_from_slice(&[0xAB, 0xCD]); // FHCRC (unvalidated)
        gz.extend_from_slice(&deflate_and_trailer);
        assert_eq!(gzip_decompress(&gz).unwrap(), payload);
    }

    #[test]
    fn rejects_corruption() {
        let gz = gzip_compress(b"check me");
        // Flip a payload bit: CRC must catch it (or the stream breaks).
        let mut bad = gz.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x10;
        assert!(gzip_decompress(&bad).is_err());
        // Truncation.
        assert!(gzip_decompress(&gz[..gz.len() - 3]).is_err());
        assert!(gzip_decompress(&gz[..5]).is_err());
        // Wrong magic / method / reserved flags.
        assert!(gzip_decompress(b"not gzip at all").is_err());
        let mut wrong_cm = gz.clone();
        wrong_cm[2] = 7;
        assert!(gzip_decompress(&wrong_cm).is_err());
        let mut reserved = gz.clone();
        reserved[3] = 0x80;
        assert!(gzip_decompress(&reserved).is_err());
        // Bad trailer CRC.
        let mut bad_crc = gz.clone();
        let n = bad_crc.len();
        bad_crc[n - 8] ^= 0xFF;
        assert!(gzip_decompress(&bad_crc).unwrap_err().contains("CRC32"));
        // Trailing garbage.
        let mut garbage = gz;
        garbage.extend_from_slice(b"????");
        assert!(gzip_decompress(&garbage).is_err());
    }

    /// The zlib-produced dynamic-Huffman reference member.
    fn reference_gzip() -> Vec<u8> {
        const HEX: &str = "1f8b08000000000002034d5859925c370ebc4a1d81000192384e4baa1977583d52b4a509fbf6c6cefaaaeeb790583213c9f7f1fbfbaf77d9e3f19fb7f7efbf3f9f34e8f1fef5edeb1f4f92c7ff7e7c7b1e1a8f8fe7c78fcf7f643d3eec69d63ffefbf3b74cc81b086217ce79fcf5fdc72fc2e32f222dffe5457e7d8dc7dfefdf78c7b2b6e5e7f3e7dbfbe722ce1d736116bdf5f6f54f1ab18f483e493b373cba48c68bfa8ead0e7d13305e9fc0f5f8ac1de070c424eccf2ca65c7b1ec868c7e3db97a7c6ecf7c17f10f4e2e7fbff9f9fcb8ae08bd2dc8f9f5fdf9f1321efb1061a7f4d4deed75fbfbfbc7d3c5177b0c7e090adbbe5e486674694a3e2e691f5dd5ab8580725c2d814b1615412d689adb9db26ccf90e695bac6aa772d65ad9c3bc2397338ef5c1c28edd20ff587aa31299fe0aad1d10d09a78cff4ff4c8b74792bd3893b0b3d3938757fe9152fa06cdb8d78d59d3da72721ba5d043835768b78cd2a9ffe95792dcc860d7f063122b3c2e4135b974e7868297de5e919f2081cc2aee61134624fbf7f66c0f6e8a5bae9b9916e1d85d1befabaa7200b1c0d81d30d408543a483baa0864a8a148d628dce059774f99a6e28b9ebdcc72b6604f9085272e738bc8a8c3b8aaa19656f79fb5ecbef1bb86c4bdd393a8e41c8ac0b69281635697b93e28a6b7d1d248a8c501d8015dc9d9441c59b412ccb3ea9a62b4689d073d60d757f84e8fd3c9dc0a24e5d34cf780712ef94a404f0f0a9694452d49a10aa612cb7dfad09077ab92147e202b3b5edb92b4754c6deaaf1b8252d22cb7499d9bb2ecc51d4314cf8761089addd0b756a7305c151374b2227e51928336528adc3108d33f277cf9203455b0943b4cb7aeb0b4fcc3b3c4733c4d5044377c7c595aa4afe090a066328249c28971316bb3e392b786a7518a585742ade491515a51409a68cac11281fcd62f4f51707ed0ed720010c1c9e01ae12ebf43e2de344946fa71a9d9038599e050d7ee1b05e901580d884b504ec661536049626152f5a81331e05a3a7a03aeb73a6a5d26ae3bb03172d594740adeac27a20eaba5298a6975354855e5251b080c2587f8e5455b1918ad03aca5000d8275933bb85cc81042b65eba137cf7e621ea56a9c493d979c06322b03d005f32fae89c8da12cb458af05b2e5755638d0f92838b5bc080aa984bd7d438006be9554220cd02aa7b942bed941919152b17124c810ac2a1f0308ab4b4660b736002621de2569fe2e5c27a0b4730e45486dcb70ed67c65286bb1af59906e8e50052a505d34dca746aa31f2699c5399940039bf6b125078935d2fafd3699e81510c3859e68015f7547c8133374f446a7b444fd0a684174315e56a77ca1737b7578c34aa014890b533bb905c5f39efc417b6fd150693daf0acd2e58dcefd29b906a3a497c1aad79929e99c1a46e9249a03dbb5595210e15666ef7967734cdea35b674af3ea3d3464999aaea720ba21054e8748f1294abdc71dbf3327df767bb1caf362fbb71346f1ecd53dec5b9924adac54a190b021b4e68b2ee4ed8db59694b112bc26c1eb62f5c86794fcb5185d69489ad86cab7a70756a9dd63fdc2df3ce78641f76e0e96e1ead7205516e7220d7f485b66a56feb40e2abce9da7b929a4eb9519262ac79706321967332cb9a44e2f08cb45a96c318a61d3c2a7ead3b6132c9adb98c9b32b538731896a5a3cbdc6d7801860a57e456f14aeecbe0acace1ce2403458edb7a6ceee4b848e9c5bc046a089b4d8d3972764063a690576d4fbdbe76bd8e6dab4c7afd80d5489babed4f1ca562f80e57ea39d645c8d5a918d7a7556fcf169aac0938d14d899cbd92a78ad0766b6b9fb1e24c3467b7ca417a62d2ed59b45f84695d7c489f3e2102d5237b37e68e9baa33c337c00af716c11c65af6d2952aa986985df6dbaac125d39a1a7663acd44aeda5043c9a04b43985aa0b9d5748f32d22e116132f8ea7f098cd4bb3c4f5a512f17bd487b1e80cfba6a17d0dd3d09503b9a2e2247d1e0002ea4472f5f85393d29bd3ff53923edfc8296b339e51ec0bc802f10372972fb1e7ed74e01fe73c79db4430aa7867839de22bab1a08b522e84760d9f9d5e5e7a9eda20aec2f488bae7c8f471a7ed8ab4e937fe199ab087ef4e5077fbf7ea6d561e2b60a662cfeef75573c933a14d307fdafbe0bb598b339ba0152c574cd9edb564b709bdd38a5ece7279a0310c462caa03d6d4e93e7d26d26da41a44c7ce53754de93d47ccc419e6bee1531f2768a493ce2f24759492d4051b9d5d6bd7103c3b3f1df8c970dfc174bf1d205ff3d5d37e62aba494251f75720f815676bb654f9723b3dde54b46f90d68c489ba3fa3607c94002a765a4a7d90db217fed5be7fd3c756a483420e705987d0b30de4ab51e57c4765576deaf1c7d8aae8331ecd68a5527e276346954781450118bbb82d987dd3cb0af433d996ae461da0ba8be71a27fb62398b7432623fef1293e83ed38e3531ea62840c2b3dfbc026400f3cecc1e3779789351c0ac21c04dd4954730b33576d845486bb46b0789daaf550c351350d1ae3cee047702c966af4c844e009f320c5313cb28dd426093c947366d69ff91071080feec728ff6b34f97003184e45f149ef097cb140000";
        let mut bytes = Vec::with_capacity(HEX.len() / 2);
        let hex = HEX.as_bytes();
        let nibble = |c: u8| -> u8 {
            match c {
                b'0'..=b'9' => c - b'0',
                b'a'..=b'f' => c - b'a' + 10,
                _ => unreachable!("vector is lowercase hex"),
            }
        };
        for pair in hex.chunks_exact(2) {
            bytes.push(nibble(pair[0]) << 4 | nibble(pair[1]));
        }
        bytes
    }
}
