//! Chunked parallel parsing of `failscope-log v1` text.
//!
//! PR 5 pushed streaming analysis past 2M records/second, which left the
//! serial line-by-line parser as the ingest bottleneck for fleet-scale
//! archives. This module splits the body of a log into byte-range
//! chunks snapped to line boundaries ([`failstats::line_chunks`]),
//! parses each chunk on the shared [`failstats::par_map_ordered`]
//! worker pool with the existing allocation-free row parser, and
//! concatenates the per-chunk record vectors in declaration order.
//!
//! **Determinism contract:** output is byte-identical to the serial
//! parser for every `threads` value and every `chunk_bytes` value —
//! including errors. Chunk boundaries depend only on the input and
//! `chunk_bytes`; results merge in declaration order; and when several
//! chunks contain malformed rows, the error from the earliest chunk
//! wins, with its line number remapped from chunk-relative to global
//! (1-based, counting the header) before it is returned. The existing
//! `csv` error tests run through this path unchanged.
//!
//! Worker count defaults to [`failstats::available_threads`]; `threads
//! <= 1` or a single chunk short-circuits to a plain serial loop with
//! no pool spin-up.
//!
//! **Predicate pushdown:** a compiled `--where` filter
//! ([`failfilter::CompiledPredicate`] carried in
//! [`ParseOptions::filter`]) is evaluated per record inside each chunk,
//! right after row validation and before the record reaches the output
//! vector, so filtered ingest never materializes dropped records. Rows
//! are still parsed and validated *before* the predicate runs, which
//! keeps error behavior — first error in declaration order, global line
//! numbers — byte-identical to an unfiltered parse. The
//! `filter.records_in` / `filter.records_kept` counters tally the
//! pushdown per chunk in declaration order, so traces stay
//! thread-invariant.

use failfilter::CompiledPredicate;
use failstats::{available_threads, line_chunks, par_map_ordered};
use failtypes::{Error, FailureLog, FailureRecord, Generation, ObservationWindow, Result, SystemSpec};

use crate::csv::{parse_row, HeaderParser};

/// Default chunk size for the parallel parser: large enough that chunk
/// dispatch overhead vanishes, small enough that a year-scale log
/// still fans out across every core.
pub const DEFAULT_CHUNK_BYTES: usize = 1 << 20;

/// Tuning knobs for the chunked parallel parser.
///
/// The defaults parse with every available core and 1 MiB chunks;
/// [`ParseOptions::serial`] pins a single-threaded pass. Any
/// combination produces byte-identical output (see the module docs),
/// so these only ever trade wall-clock time.
///
/// # Examples
///
/// ```
/// use faillog::ParseOptions;
///
/// let opts = ParseOptions::new().threads(4).chunk_bytes(64 * 1024);
/// assert_eq!(opts.threads, 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ParseOptions {
    /// Worker threads to parse with (`<= 1` means serial).
    pub threads: usize,
    /// Target bytes per chunk, snapped up to line boundaries (clamped
    /// to at least 1).
    pub chunk_bytes: usize,
    /// Predicate pushed down into the parser: records failing it are
    /// dropped right after validation, before they reach the output.
    /// `None` keeps every record. Filtering never changes which errors
    /// are reported (rows are validated first).
    pub filter: Option<CompiledPredicate>,
}

impl Default for ParseOptions {
    fn default() -> Self {
        ParseOptions {
            threads: available_threads(),
            chunk_bytes: DEFAULT_CHUNK_BYTES,
            filter: None,
        }
    }
}

impl ParseOptions {
    /// The default options: all available cores, 1 MiB chunks.
    pub fn new() -> Self {
        ParseOptions::default()
    }

    /// Single-threaded options (the serial reference configuration).
    pub fn serial() -> Self {
        ParseOptions {
            threads: 1,
            ..ParseOptions::default()
        }
    }

    /// Returns the options with the worker count replaced.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Returns the options with the chunk size replaced.
    pub fn chunk_bytes(mut self, chunk_bytes: usize) -> Self {
        self.chunk_bytes = chunk_bytes;
        self
    }

    /// Returns the options with a pushdown predicate installed.
    pub fn filter(mut self, filter: CompiledPredicate) -> Self {
        self.filter = Some(filter);
        self
    }
}

/// Parses a log with explicit [`ParseOptions`]; [`crate::from_str`] is
/// this with the defaults.
///
/// # Errors
///
/// Identical to the serial parser, byte for byte: malformed headers,
/// malformed rows (first in declaration order, global line numbers),
/// and record-invariant violations.
///
/// # Examples
///
/// ```
/// use failsim::{Simulator, SystemModel};
///
/// let log = Simulator::new(SystemModel::tsubame3(), 5).generate().unwrap();
/// let text = faillog::to_string(&log)?;
/// let opts = faillog::ParseOptions::new().threads(4).chunk_bytes(4096);
/// assert_eq!(faillog::from_str_with(&text, &opts)?, log);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn from_str_with(s: &str, opts: &ParseOptions) -> Result<FailureLog> {
    from_str_traced(s, opts, None)
}

/// [`from_str_with`] plus chunk instrumentation: records `parse.chunks`
/// and `parse.chunk_bytes` counters. Both depend only on the input and
/// chunk size — never on thread count — preserving the byte-identical
/// trace guarantee.
pub(crate) fn from_str_traced(
    s: &str,
    opts: &ParseOptions,
    trace: Option<&failtrace::Collector>,
) -> Result<FailureLog> {
    let (generation, spec, window, header_lines, body_start) = parse_header(s)?;
    let body = &s[body_start..];

    let chunks = line_chunks(body.as_bytes(), opts.chunk_bytes);
    if let Some(trace) = trace {
        trace.incr("parse.chunks", chunks.len() as u64);
        trace.incr("parse.chunk_bytes", body.len() as u64);
    }

    let filter = opts.filter.as_ref();
    let outcomes = par_map_ordered(chunks.len(), opts.threads, |i| {
        parse_chunk(&body[chunks[i].clone()], generation, &spec, window, filter)
    });

    // Declaration-order merge. The first erroring chunk wins; every
    // chunk before it completed, so their line counts are known and the
    // chunk-relative error line remaps exactly onto the serial parser's
    // global number.
    let mut records = Vec::new();
    let mut lines_before = header_lines;
    let mut records_in = 0u64;
    for outcome in outcomes {
        match outcome {
            Ok((mut chunk_records, chunk_lines, chunk_seen)) => {
                records_in += chunk_seen as u64;
                records.append(&mut chunk_records);
                lines_before += chunk_lines;
            }
            Err(err) => return Err(offset_error_line(err, lines_before)),
        }
    }
    if let (Some(trace), Some(_)) = (trace, filter) {
        trace.incr("filter.records_in", records_in);
        trace.incr("filter.records_kept", records.len() as u64);
    }
    Ok(FailureLog::with_spec(generation, spec, window, records)?)
}

/// Serially parses the header block. Returns the metadata plus the
/// number of lines the header occupies and the byte offset where the
/// body begins.
fn parse_header(
    s: &str,
) -> Result<(Generation, SystemSpec, ObservationWindow, usize, usize)> {
    let mut header = HeaderParser::new();
    let mut offset = 0usize;
    for (lines, raw) in s.split_inclusive('\n').enumerate() {
        offset += raw.len();
        if header.feed(lines, raw)? {
            let (generation, spec, window) = header.finish()?;
            return Ok((generation, spec, window, lines + 1, offset));
        }
    }
    Err(Error::Header("unexpected end of file".into()))
}

/// Parses one chunk with chunk-relative 1-based line numbers. Returns
/// the kept records, the number of lines in the chunk (blank lines
/// included — they advance the global numbering), and the pre-filter
/// record count (for the `filter.records_in` counter).
fn parse_chunk(
    chunk: &str,
    generation: Generation,
    spec: &SystemSpec,
    window: ObservationWindow,
    filter: Option<&CompiledPredicate>,
) -> Result<(Vec<FailureRecord>, usize, usize)> {
    let mut records = Vec::new();
    let mut lines = 0usize;
    let mut seen = 0usize;
    for raw in chunk.split_inclusive('\n') {
        lines += 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let rec = parse_row(lines, line, generation)?;
        rec.validate(generation, spec, window)
            .map_err(|e| Error::invalid_row(lines, e))?;
        seen += 1;
        if filter.is_none_or(|f| f.matches(&rec, spec, window)) {
            records.push(rec);
        }
    }
    Ok((records, lines, seen))
}

/// Shifts a chunk-relative row error to its global line number. Only
/// the row-shaped variants carry a line; anything else passes through.
fn offset_error_line(err: Error, delta: usize) -> Error {
    match err {
        Error::Row {
            line,
            field,
            message,
        } => Error::Row {
            line: line + delta,
            field,
            message,
        },
        Error::InvalidRow { line, error } => Error::InvalidRow {
            line: line + delta,
            error,
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv::parse_serial;
    use failsim::{Simulator, SystemModel};

    fn t3_text() -> String {
        let log = Simulator::new(SystemModel::tsubame3(), 31).generate().unwrap();
        crate::to_string(&log).unwrap()
    }

    #[test]
    fn matches_serial_oracle_across_threads_and_chunks() {
        let text = t3_text();
        let oracle = parse_serial(&text).unwrap();
        for threads in [1, 2, 3, 4, 8] {
            for chunk_bytes in [1, 64, 4096, DEFAULT_CHUNK_BYTES, usize::MAX] {
                let opts = ParseOptions::new().threads(threads).chunk_bytes(chunk_bytes);
                let parsed = from_str_with(&text, &opts).unwrap();
                assert_eq!(
                    parsed, oracle,
                    "threads = {threads}, chunk_bytes = {chunk_bytes}"
                );
            }
        }
    }

    #[test]
    fn default_from_str_goes_through_the_chunked_path() {
        let text = t3_text();
        assert_eq!(crate::from_str(&text).unwrap(), parse_serial(&text).unwrap());
    }

    #[test]
    fn error_lines_are_global_at_any_chunk_size() {
        // Header is 7 lines; rows start at line 8.
        let mut text = t3_text();
        text.push_str("0,1.0,zz,GPU,0,,\n");
        let total_lines = text.lines().count();
        let serial_err = parse_serial(&text).unwrap_err();
        assert_eq!(serial_err.line(), Some(total_lines));
        for chunk_bytes in [1, 17, 256, 4096, usize::MAX] {
            for threads in [1, 3] {
                let opts = ParseOptions::new().threads(threads).chunk_bytes(chunk_bytes);
                let err = from_str_with(&text, &opts).unwrap_err();
                assert_eq!(
                    err.to_string(),
                    serial_err.to_string(),
                    "chunk_bytes = {chunk_bytes}, threads = {threads}"
                );
            }
        }
    }

    #[test]
    fn first_error_in_declaration_order_wins() {
        // Two bad rows far apart; with 1-byte chunks they land in
        // different chunks, and every thread count must report the
        // earlier one.
        let mut text = t3_text();
        let insert_at = text.find("\n100,").unwrap() + 1;
        text.insert_str(insert_at, "9999,bad-time,1.0,GPU,0,,\n");
        text.push_str("0,1.0,1.0,NotACategory,0,,\n");
        let serial_err = parse_serial(&text).unwrap_err();
        assert!(serial_err.to_string().contains("time"), "{serial_err}");
        for threads in [1, 2, 4] {
            let opts = ParseOptions::new().threads(threads).chunk_bytes(1);
            let err = from_str_with(&text, &opts).unwrap_err();
            assert_eq!(err.to_string(), serial_err.to_string(), "threads = {threads}");
        }
    }

    #[test]
    fn invariant_violations_keep_global_lines_too() {
        let header = "# failscope-log v1\n# generation: Tsubame-3\n# window: 2017-05-09..2020-02-22\nid,time_h,ttr_h,category,node,gpus,locus\n";
        let mut text = String::from(header);
        for i in 0..50 {
            text.push_str(&format!("{i},1.5,1.0,GPU,0,,\n"));
        }
        text.push_str("50,1.0,1.0,GPU,99999,,\n"); // node out of range, line 55
        for chunk_bytes in [1, 32, usize::MAX] {
            let opts = ParseOptions::new().threads(4).chunk_bytes(chunk_bytes);
            let err = from_str_with(&text, &opts).unwrap_err();
            assert!(
                matches!(err, Error::InvalidRow { line: 55, .. }),
                "chunk_bytes = {chunk_bytes}: {err}"
            );
        }
    }

    #[test]
    fn blank_lines_and_missing_trailing_newline() {
        let header = "# failscope-log v1\n# generation: Tsubame-3\n# window: 2017-05-09..2020-02-22\nid,time_h,ttr_h,category,node,gpus,locus\n";
        // Blank lines between rows, no trailing newline on the last row.
        let text = format!("{header}\n0,1.0,1.0,GPU,0,0|2,\n\n1,2.0,1.0,GPU,1,,");
        let oracle = parse_serial(&text).unwrap();
        assert_eq!(oracle.len(), 2);
        for chunk_bytes in [1, 3, usize::MAX] {
            let opts = ParseOptions::new().threads(4).chunk_bytes(chunk_bytes);
            assert_eq!(from_str_with(&text, &opts).unwrap(), oracle);
        }
    }

    #[test]
    fn header_errors_are_unchanged() {
        assert!(matches!(
            from_str_with("nope", &ParseOptions::default()),
            Err(Error::Header(_))
        ));
        assert!(matches!(
            from_str_with("# failscope-log v1\n# generation: Tsubame-3\n", &ParseOptions::default()),
            Err(Error::Header(_))
        ));
    }

    #[test]
    fn filtered_parse_matches_post_hoc_filter_at_any_configuration() {
        let text = t3_text();
        let pred = failfilter::compile("category == gpu && ttr > 24").unwrap();
        let oracle = parse_serial(&text).unwrap();
        let expected: Vec<_> = oracle
            .iter()
            .filter(|r| pred.matches(r, oracle.spec(), oracle.window()))
            .cloned()
            .collect();
        assert!(!expected.is_empty() && expected.len() < oracle.len());
        for threads in [1, 2, 4] {
            for chunk_bytes in [1, 4096, usize::MAX] {
                let opts = ParseOptions::new()
                    .threads(threads)
                    .chunk_bytes(chunk_bytes)
                    .filter(pred.clone());
                let filtered = from_str_with(&text, &opts).unwrap();
                assert_eq!(
                    filtered.records(),
                    expected.as_slice(),
                    "threads = {threads}, chunk_bytes = {chunk_bytes}"
                );
                assert_eq!(filtered.spec(), oracle.spec());
                assert_eq!(filtered.window(), oracle.window());
            }
        }
    }

    #[test]
    fn filtered_parse_reports_the_same_errors() {
        // The filter would drop the malformed row's category — but rows
        // are validated before the predicate runs, so the error is
        // byte-identical to the unfiltered parse.
        let mut text = t3_text();
        text.push_str("0,1.0,zz,Memory,0,,\n");
        let serial_err = parse_serial(&text).unwrap_err();
        let pred = failfilter::compile("category == gpu").unwrap();
        for chunk_bytes in [1, 4096, usize::MAX] {
            let opts = ParseOptions::new()
                .threads(4)
                .chunk_bytes(chunk_bytes)
                .filter(pred.clone());
            let err = from_str_with(&text, &opts).unwrap_err();
            assert_eq!(err.to_string(), serial_err.to_string(), "chunk_bytes = {chunk_bytes}");
        }
    }

    #[test]
    fn filter_counters_are_thread_invariant_and_tally_the_pushdown() {
        let text = t3_text();
        let pred = failfilter::compile("ttr > 24").unwrap();
        let run = |threads: usize| {
            let trace = failtrace::Collector::new();
            let opts = ParseOptions::new()
                .threads(threads)
                .chunk_bytes(512)
                .filter(pred.clone());
            let log = from_str_traced(&text, &opts, Some(&trace)).unwrap();
            (
                log.len(),
                trace.counter("filter.records_in"),
                trace.counter("filter.records_kept"),
                trace.export(),
            )
        };
        let (kept, records_in, records_kept, one) = run(1);
        assert_eq!((kept, records_in, records_kept, one), run(4));
        assert_eq!(records_in, parse_serial(&text).unwrap().len() as u64);
        assert_eq!(records_kept, kept as u64);
        assert!(records_kept < records_in);
        // No filter, no filter counters.
        let trace = failtrace::Collector::new();
        from_str_traced(&text, &ParseOptions::default(), Some(&trace)).unwrap();
        assert!(!trace.export().contains("filter."));
    }

    #[test]
    fn chunk_counters_are_thread_invariant() {
        let text = t3_text();
        let export = |threads: usize| {
            let trace = failtrace::Collector::new();
            let opts = ParseOptions::new().threads(threads).chunk_bytes(512);
            from_str_traced(&text, &opts, Some(&trace)).unwrap();
            trace.export()
        };
        let one = export(1);
        assert_eq!(one, export(4));
        assert!(one.contains("parse.chunks"), "{one}");
        assert!(one.contains("parse.chunk_bytes"), "{one}");
    }
}
