//! Failure-log ingestion and serialization for the `failscope` workspace.
//!
//! Production failure logs arrive as flat files; this crate defines the
//! `failscope-log v1` text format (a small self-describing CSV, see
//! [`write_log`]), parses it back into validated
//! [`failtypes::FailureLog`]s, and provides the operational helpers a
//! center needs before sharing data: keyed node anonymization
//! ([`anonymize_nodes`]) — the paper's own dataset was released in exactly
//! this shape for business-sensitivity reasons — and quick summaries
//! ([`summarize`]).
//!
//! For live monitoring, [`LogTailer`] reads the same format (plus NDJSON
//! body rows) incrementally with follow-mode polling. Record filtering
//! (`--where`, and the `--since`/`--until` sugar that desugars into it)
//! is pushed down into the parser itself: a compiled
//! [`failfilter::CompiledPredicate`] carried in [`ParseOptions::filter`]
//! drops non-matching records during chunked ingest.
//!
//! # Examples
//!
//! ```
//! use failsim::{Simulator, SystemModel};
//!
//! // Generate, serialize, anonymize, reparse.
//! let log = Simulator::new(SystemModel::tsubame2(), 5).generate().unwrap();
//! let anon = faillog::anonymize_nodes(&log, 1234);
//! let text = faillog::to_string(&anon)?;
//! let parsed = faillog::from_str(&text)?;
//! assert_eq!(parsed.len(), 897);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

mod csv;
mod inflate;
mod input;
mod ops;
mod parallel;
mod stream;

pub use csv::{from_str, read_log, to_string, write_log};
pub use inflate::{crc32, gzip_compress, gzip_decompress, Crc32};
pub use input::{read_input, Compression, InputReader, FSIDX_MAGIC};
pub use ops::{
    anonymize_nodes, load, load_traced, load_traced_with, load_with, save, summarize, LogSummary,
};
pub use parallel::{from_str_with, ParseOptions, DEFAULT_CHUNK_BYTES};
pub use stream::{parse_body_rows, parse_ndjson_row, record_to_ndjson, LogTailer, TailProgress};

#[cfg(test)]
mod tests {
    #[test]
    fn errors_are_the_unified_failtypes_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<failtypes::Error>();
        let err = crate::from_str("not a log").unwrap_err();
        assert!(matches!(err, failtypes::Error::Header(_)), "{err}");
    }
}
