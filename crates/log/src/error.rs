//! Error types for log serialization and parsing.

use std::error::Error;
use std::fmt;

/// Error produced while parsing a serialized failure log.
#[derive(Debug)]
pub enum ParseLogError {
    /// An underlying I/O error.
    Io(std::io::Error),
    /// The header is missing or malformed.
    Header(String),
    /// A data row is malformed; carries the 1-based line number, the
    /// offending column when known, and a description.
    Row {
        /// 1-based line number in the input.
        line: usize,
        /// Column name of the offending field, when attributable to one.
        field: Option<&'static str>,
        /// What was wrong.
        message: String,
    },
    /// A row parsed but its record violates an invariant (node out of
    /// range, time outside the window, ...); carries the 1-based line
    /// number so the operator can find the row.
    InvalidRow {
        /// 1-based line number in the input.
        line: usize,
        /// The violated invariant.
        error: failtypes::InvalidRecordError,
    },
    /// The rows parsed individually but the assembled log violates an
    /// invariant (e.g. duplicate record ids).
    Invalid(failtypes::InvalidRecordError),
}

impl ParseLogError {
    pub(crate) fn row(line: usize, message: impl Into<String>) -> Self {
        ParseLogError::Row {
            line,
            field: None,
            message: message.into(),
        }
    }

    pub(crate) fn row_field(line: usize, field: &'static str, message: impl Into<String>) -> Self {
        ParseLogError::Row {
            line,
            field: Some(field),
            message: message.into(),
        }
    }

    pub(crate) fn invalid_row(line: usize, error: failtypes::InvalidRecordError) -> Self {
        ParseLogError::InvalidRow { line, error }
    }

    /// The 1-based line number the error points at, when it is
    /// attributable to a specific row.
    pub fn line(&self) -> Option<usize> {
        match self {
            ParseLogError::Row { line, .. } | ParseLogError::InvalidRow { line, .. } => Some(*line),
            _ => None,
        }
    }
}

impl fmt::Display for ParseLogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseLogError::Io(e) => write!(f, "i/o error while reading log: {e}"),
            ParseLogError::Header(msg) => write!(f, "malformed log header: {msg}"),
            ParseLogError::Row {
                line,
                field: Some(field),
                message,
            } => write!(f, "malformed log row at line {line}, field `{field}`: {message}"),
            ParseLogError::Row {
                line,
                field: None,
                message,
            } => write!(f, "malformed log row at line {line}: {message}"),
            ParseLogError::InvalidRow { line, error } => {
                write!(f, "invalid record at line {line}: {error}")
            }
            ParseLogError::Invalid(e) => write!(f, "log violates an invariant: {e}"),
        }
    }
}

impl Error for ParseLogError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseLogError::Io(e) => Some(e),
            ParseLogError::Invalid(e) => Some(e),
            ParseLogError::InvalidRow { error, .. } => Some(error),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ParseLogError {
    fn from(e: std::io::Error) -> Self {
        ParseLogError::Io(e)
    }
}

impl From<failtypes::InvalidRecordError> for ParseLogError {
    fn from(e: failtypes::InvalidRecordError) -> Self {
        ParseLogError::Invalid(e)
    }
}

/// Error produced while writing a serialized failure log.
#[derive(Debug)]
pub enum WriteLogError {
    /// An underlying I/O error.
    Io(std::io::Error),
}

impl fmt::Display for WriteLogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WriteLogError::Io(e) => write!(f, "i/o error while writing log: {e}"),
        }
    }
}

impl Error for WriteLogError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WriteLogError::Io(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for WriteLogError {
    fn from(e: std::io::Error) -> Self {
        WriteLogError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ParseLogError::Header("no version".into());
        assert!(e.to_string().contains("no version"));
        let e = ParseLogError::row(7, "bad field");
        assert!(e.to_string().contains("line 7"));
        assert_eq!(e.line(), Some(7));
        let e = ParseLogError::row_field(9, "ttr_h", "not a number");
        let text = e.to_string();
        assert!(text.contains("line 9"), "{text}");
        assert!(text.contains("`ttr_h`"), "{text}");
        assert!(ParseLogError::Header("x".into()).line().is_none());
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        assert!(ParseLogError::from(io).to_string().contains("gone"));
        let io = std::io::Error::other("disk full");
        assert!(WriteLogError::from(io).to_string().contains("disk full"));
    }

    #[test]
    fn sources_are_preserved() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = ParseLogError::from(io);
        assert!(e.source().is_some());
        assert!(ParseLogError::Header("x".into()).source().is_none());
    }

    #[test]
    fn invalid_row_keeps_line_and_source() {
        let e = ParseLogError::invalid_row(12, failtypes::InvalidRecordError::CategorySystemMismatch);
        assert_eq!(e.line(), Some(12));
        assert!(e.to_string().contains("line 12"));
        assert!(e.source().is_some());
    }
}
