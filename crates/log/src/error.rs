//! Error types for log serialization and parsing.

use std::error::Error;
use std::fmt;

/// Error produced while parsing a serialized failure log.
#[derive(Debug)]
pub enum ParseLogError {
    /// An underlying I/O error.
    Io(std::io::Error),
    /// The header is missing or malformed.
    Header(String),
    /// A data row is malformed; carries the 1-based line number and a
    /// description.
    Row {
        /// 1-based line number in the input.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// The rows parsed but violate a log invariant.
    Invalid(failtypes::InvalidRecordError),
}

impl ParseLogError {
    pub(crate) fn row(line: usize, message: impl Into<String>) -> Self {
        ParseLogError::Row {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseLogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseLogError::Io(e) => write!(f, "i/o error while reading log: {e}"),
            ParseLogError::Header(msg) => write!(f, "malformed log header: {msg}"),
            ParseLogError::Row { line, message } => {
                write!(f, "malformed log row at line {line}: {message}")
            }
            ParseLogError::Invalid(e) => write!(f, "log violates an invariant: {e}"),
        }
    }
}

impl Error for ParseLogError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseLogError::Io(e) => Some(e),
            ParseLogError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ParseLogError {
    fn from(e: std::io::Error) -> Self {
        ParseLogError::Io(e)
    }
}

impl From<failtypes::InvalidRecordError> for ParseLogError {
    fn from(e: failtypes::InvalidRecordError) -> Self {
        ParseLogError::Invalid(e)
    }
}

/// Error produced while writing a serialized failure log.
#[derive(Debug)]
pub enum WriteLogError {
    /// An underlying I/O error.
    Io(std::io::Error),
}

impl fmt::Display for WriteLogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WriteLogError::Io(e) => write!(f, "i/o error while writing log: {e}"),
        }
    }
}

impl Error for WriteLogError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WriteLogError::Io(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for WriteLogError {
    fn from(e: std::io::Error) -> Self {
        WriteLogError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ParseLogError::Header("no version".into());
        assert!(e.to_string().contains("no version"));
        let e = ParseLogError::row(7, "bad field");
        assert!(e.to_string().contains("line 7"));
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        assert!(ParseLogError::from(io).to_string().contains("gone"));
        let io = std::io::Error::other("disk full");
        assert!(WriteLogError::from(io).to_string().contains("disk full"));
    }

    #[test]
    fn sources_are_preserved() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = ParseLogError::from(io);
        assert!(e.source().is_some());
        assert!(ParseLogError::Header("x".into()).source().is_none());
    }
}
