//! Root loci of Tsubame-3 software failures (Fig. 3 of the paper).
//!
//! The paper breaks the 171 Tsubame-3 `Software`-category failures down into
//! reported root loci and plots the top 16 causes. About 43% are GPU-driver
//! related and about 20% have no known cause. This module models that
//! taxonomy.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

use crate::error::ParseCategoryError;

/// The root locus of a Tsubame-3 software failure (Fig. 3).
///
/// # Examples
///
/// ```
/// use failtypes::SoftwareLocus;
///
/// assert!(SoftwareLocus::GpuDriverProblem.is_gpu_driver_related());
/// assert!(SoftwareLocus::CudaVersionMismatch.is_gpu_driver_related());
/// assert!(!SoftwareLocus::KernelPanic.is_gpu_driver_related());
/// assert_eq!(SoftwareLocus::ALL.len(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SoftwareLocus {
    /// GPU driver update/upgrade problems and software/driver mismatches.
    GpuDriverProblem,
    /// Application run with an incorrect CUDA version.
    CudaVersionMismatch,
    /// Omni-Path driver interacting badly with the GPU software stack.
    OmniPathDriver,
    /// GPUDirect problems (NVIDIA supported InfiniBand before Omni-Path).
    GpuDirect,
    /// MPI library faults.
    MpiLibrary,
    /// Parallel-filesystem client faults other than Lustre server bugs.
    FilesystemClient,
    /// Job scheduler / resource manager faults.
    JobScheduler,
    /// Operating-system service faults.
    OsService,
    /// Node health-check scripts mis-reporting.
    NodeHealthCheck,
    /// Container runtime faults.
    ContainerRuntime,
    /// Python / ML framework stack faults.
    MlFrameworkStack,
    /// Firmware version mismatches.
    FirmwareMismatch,
    /// Kernel panics (relatively low on Tsubame-3 per the paper).
    KernelPanic,
    /// Lustre client bugs (relatively low on Tsubame-3 per the paper).
    LustreClientBug,
    /// Authentication / LDAP faults.
    AuthLdap,
    /// No known cause; could not be classified or reproduced.
    UnknownCause,
}

impl SoftwareLocus {
    /// All sixteen root loci, matching the number of causes Fig. 3 plots.
    pub const ALL: &'static [SoftwareLocus] = &[
        SoftwareLocus::GpuDriverProblem,
        SoftwareLocus::CudaVersionMismatch,
        SoftwareLocus::OmniPathDriver,
        SoftwareLocus::GpuDirect,
        SoftwareLocus::MpiLibrary,
        SoftwareLocus::FilesystemClient,
        SoftwareLocus::JobScheduler,
        SoftwareLocus::OsService,
        SoftwareLocus::NodeHealthCheck,
        SoftwareLocus::ContainerRuntime,
        SoftwareLocus::MlFrameworkStack,
        SoftwareLocus::FirmwareMismatch,
        SoftwareLocus::KernelPanic,
        SoftwareLocus::LustreClientBug,
        SoftwareLocus::AuthLdap,
        SoftwareLocus::UnknownCause,
    ];

    /// Returns the short label used in serialized logs and reports.
    pub const fn label(self) -> &'static str {
        match self {
            SoftwareLocus::GpuDriverProblem => "GPUDriverProblem",
            SoftwareLocus::CudaVersionMismatch => "CUDAVersionMismatch",
            SoftwareLocus::OmniPathDriver => "OmniPathDriver",
            SoftwareLocus::GpuDirect => "GPUDirect",
            SoftwareLocus::MpiLibrary => "MPILibrary",
            SoftwareLocus::FilesystemClient => "FilesystemClient",
            SoftwareLocus::JobScheduler => "JobScheduler",
            SoftwareLocus::OsService => "OSService",
            SoftwareLocus::NodeHealthCheck => "NodeHealthCheck",
            SoftwareLocus::ContainerRuntime => "ContainerRuntime",
            SoftwareLocus::MlFrameworkStack => "MLFrameworkStack",
            SoftwareLocus::FirmwareMismatch => "FirmwareMismatch",
            SoftwareLocus::KernelPanic => "KernelPanic",
            SoftwareLocus::LustreClientBug => "LustreClientBug",
            SoftwareLocus::AuthLdap => "AuthLDAP",
            SoftwareLocus::UnknownCause => "UnknownCause",
        }
    }

    /// Returns a longer human-readable description for reports.
    pub const fn description(self) -> &'static str {
        match self {
            SoftwareLocus::GpuDriverProblem => "GPU driver-related problem",
            SoftwareLocus::CudaVersionMismatch => "incorrect CUDA version",
            SoftwareLocus::OmniPathDriver => "Omni-Path driver issue",
            SoftwareLocus::GpuDirect => "GPUDirect issue",
            SoftwareLocus::MpiLibrary => "MPI library fault",
            SoftwareLocus::FilesystemClient => "filesystem client fault",
            SoftwareLocus::JobScheduler => "job scheduler fault",
            SoftwareLocus::OsService => "operating-system service fault",
            SoftwareLocus::NodeHealthCheck => "node health-check fault",
            SoftwareLocus::ContainerRuntime => "container runtime fault",
            SoftwareLocus::MlFrameworkStack => "Python/ML framework fault",
            SoftwareLocus::FirmwareMismatch => "firmware version mismatch",
            SoftwareLocus::KernelPanic => "kernel panic",
            SoftwareLocus::LustreClientBug => "Lustre client bug",
            SoftwareLocus::AuthLdap => "authentication/LDAP fault",
            SoftwareLocus::UnknownCause => "no known cause",
        }
    }

    /// Returns `true` when the locus is GPU-driver related.
    ///
    /// The paper attributes roughly 43% of Tsubame-3 software failures to
    /// this group (driver updates/upgrades, software-driver mismatch, wrong
    /// CUDA versions, and the GPUDirect/Omni-Path interplay).
    pub const fn is_gpu_driver_related(self) -> bool {
        matches!(
            self,
            SoftwareLocus::GpuDriverProblem
                | SoftwareLocus::CudaVersionMismatch
                | SoftwareLocus::GpuDirect
        )
    }

    /// Returns `true` when the root cause could not be determined.
    ///
    /// Roughly 20% of the paper's software failures fall here, which it
    /// flags as an increasing operational problem.
    pub const fn is_unknown(self) -> bool {
        matches!(self, SoftwareLocus::UnknownCause)
    }
}

impl fmt::Display for SoftwareLocus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for SoftwareLocus {
    type Err = ParseCategoryError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        SoftwareLocus::ALL
            .iter()
            .copied()
            .find(|l| l.label() == s)
            .ok_or_else(|| ParseCategoryError::new(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_loci_like_fig3() {
        assert_eq!(SoftwareLocus::ALL.len(), 16);
    }

    #[test]
    fn labels_unique_and_roundtrip() {
        let mut seen = std::collections::HashSet::new();
        for &l in SoftwareLocus::ALL {
            assert!(seen.insert(l.label()));
            assert_eq!(l.label().parse::<SoftwareLocus>().unwrap(), l);
            assert!(!l.description().is_empty());
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("definitely-not-a-locus".parse::<SoftwareLocus>().is_err());
    }

    #[test]
    fn driver_related_group() {
        let related: Vec<_> = SoftwareLocus::ALL
            .iter()
            .filter(|l| l.is_gpu_driver_related())
            .collect();
        assert_eq!(related.len(), 3);
        assert!(!SoftwareLocus::UnknownCause.is_gpu_driver_related());
        assert!(SoftwareLocus::UnknownCause.is_unknown());
        assert!(!SoftwareLocus::KernelPanic.is_unknown());
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(SoftwareLocus::OsService.to_string(), "OSService");
    }
}
