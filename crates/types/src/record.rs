//! Failure records and failure logs.
//!
//! A [`FailureRecord`] mirrors one line of the Tsubame logs: the time of
//! failure occurrence, the time to recovery, the failure category, and where
//! available the affected node, the set of GPU slots involved, and the
//! software root locus. A [`FailureLog`] is a validated, time-ordered
//! collection of records together with the system specification and
//! observation window they belong to.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::category::Category;
use crate::error::InvalidRecordError;
use crate::software::SoftwareLocus;
use crate::system::{Generation, GpuSlot, NodeId, SystemSpec};
use crate::time::{Hours, ObservationWindow};

/// One failure event.
///
/// # Examples
///
/// ```
/// use failtypes::{Category, FailureRecord, GpuSlot, Hours, NodeId, T3Category};
///
/// let rec = FailureRecord::new(
///     7,
///     Hours::new(120.5),
///     Hours::new(48.0),
///     Category::T3(T3Category::Gpu),
///     NodeId::new(12),
/// )
/// .with_gpus([GpuSlot::new(0), GpuSlot::new(3)]);
///
/// assert!(rec.is_multi_gpu());
/// assert_eq!(rec.gpus().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureRecord {
    id: u32,
    time: Hours,
    ttr: Hours,
    category: Category,
    node: NodeId,
    gpus: Vec<GpuSlot>,
    locus: Option<SoftwareLocus>,
}

impl FailureRecord {
    /// Creates a record with no GPU involvement and no software root locus.
    pub fn new(id: u32, time: Hours, ttr: Hours, category: Category, node: NodeId) -> Self {
        FailureRecord {
            id,
            time,
            ttr,
            category,
            node,
            gpus: Vec::new(),
            locus: None,
        }
    }

    /// Attaches the set of GPU slots involved in this failure.
    ///
    /// Only meaningful for GPU failures; [`FailureRecord::validate`]
    /// rejects GPU involvement on other categories.
    pub fn with_gpus(mut self, gpus: impl IntoIterator<Item = GpuSlot>) -> Self {
        self.gpus = gpus.into_iter().collect();
        self
    }

    /// Attaches the software root locus (Fig. 3).
    ///
    /// Only meaningful for software-domain failures.
    pub fn with_locus(mut self, locus: SoftwareLocus) -> Self {
        self.locus = Some(locus);
        self
    }

    /// Returns the stable record id within its log.
    pub const fn id(&self) -> u32 {
        self.id
    }

    /// Returns the failure time as an offset into the observation window.
    pub const fn time(&self) -> Hours {
        self.time
    }

    /// Returns the time to recovery.
    pub const fn ttr(&self) -> Hours {
        self.ttr
    }

    /// Returns the failure category.
    pub const fn category(&self) -> Category {
        self.category
    }

    /// Returns the affected node.
    pub const fn node(&self) -> NodeId {
        self.node
    }

    /// Returns the GPU slots involved (empty when unknown or not a GPU
    /// failure).
    pub fn gpus(&self) -> &[GpuSlot] {
        &self.gpus
    }

    /// Returns the software root locus, when recorded.
    pub const fn locus(&self) -> Option<SoftwareLocus> {
        self.locus
    }

    /// Returns `true` when more than one GPU was involved — the
    /// simultaneous multi-GPU failure mode RQ3 studies.
    pub fn is_multi_gpu(&self) -> bool {
        self.gpus.len() > 1
    }

    /// Returns the moment the repair completed.
    pub fn recovery_time(&self) -> Hours {
        self.time + self.ttr
    }

    /// Checks this record against the log invariants.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant: the failure time must lie in
    /// `window`, the TTR must be a valid duration, the node and every GPU
    /// slot must exist in `spec`, slots must be unique, GPU involvement is
    /// only allowed on GPU failures, a root locus only on software-domain
    /// failures, and the category vocabulary must match `generation`.
    pub fn validate(
        &self,
        generation: Generation,
        spec: &SystemSpec,
        window: ObservationWindow,
    ) -> Result<(), InvalidRecordError> {
        if !self.time.is_valid() || !window.contains(self.time) {
            return Err(InvalidRecordError::TimeOutOfWindow {
                offset: self.time.get(),
                window: window.duration().get(),
            });
        }
        if !self.ttr.is_valid() {
            return Err(InvalidRecordError::InvalidTtr {
                ttr: self.ttr.get(),
            });
        }
        match (generation, self.category) {
            (Generation::Tsubame2, Category::T2(_)) | (Generation::Tsubame3, Category::T3(_)) => {}
            _ => return Err(InvalidRecordError::CategorySystemMismatch),
        }
        if !spec.contains_node(self.node) {
            return Err(InvalidRecordError::NodeOutOfRange {
                node: self.node.index(),
                nodes: spec.nodes(),
            });
        }
        if !self.gpus.is_empty() && !self.category.is_gpu() {
            return Err(InvalidRecordError::UnexpectedGpuInvolvement);
        }
        let mut seen = [false; 256];
        for &slot in &self.gpus {
            if !spec.contains_slot(slot) {
                return Err(InvalidRecordError::SlotOutOfRange {
                    slot: slot.index(),
                    slots: spec.gpus_per_node(),
                });
            }
            let i = slot.index() as usize;
            if seen[i] {
                return Err(InvalidRecordError::DuplicateSlot { slot: slot.index() });
            }
            seen[i] = true;
        }
        if self.locus.is_some() && !self.category.is_software() {
            return Err(InvalidRecordError::UnexpectedSoftwareLocus);
        }
        Ok(())
    }
}

impl fmt::Display for FailureRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} t={} {} on {} (ttr {})",
            self.id, self.time, self.category, self.node, self.ttr
        )?;
        if !self.gpus.is_empty() {
            write!(f, " gpus=[")?;
            for (i, g) in self.gpus.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{}", g.index())?;
            }
            write!(f, "]")?;
        }
        if let Some(l) = self.locus {
            write!(f, " locus={l}")?;
        }
        Ok(())
    }
}

/// A validated, time-ordered failure log for one system.
///
/// # Examples
///
/// ```
/// use failtypes::{
///     Category, Date, FailureLog, FailureRecord, Generation, Hours, NodeId,
///     ObservationWindow, T3Category,
/// };
///
/// let window = ObservationWindow::new(
///     Date::new(2017, 5, 9).unwrap(),
///     Date::new(2020, 2, 22).unwrap(),
/// )
/// .unwrap();
/// let records = vec![FailureRecord::new(
///     0,
///     Hours::new(10.0),
///     Hours::new(4.0),
///     Category::T3(T3Category::Software),
///     NodeId::new(3),
/// )];
/// let log = FailureLog::new(Generation::Tsubame3, window, records)?;
/// assert_eq!(log.len(), 1);
/// # Ok::<(), failtypes::InvalidRecordError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureLog {
    generation: Generation,
    spec: SystemSpec,
    window: ObservationWindow,
    records: Vec<FailureRecord>,
}

impl FailureLog {
    /// Creates a log over the canonical system specification of
    /// `generation`, validating and time-sorting `records`.
    ///
    /// # Errors
    ///
    /// Returns the first record-invariant violation encountered; see
    /// [`FailureRecord::validate`].
    pub fn new(
        generation: Generation,
        window: ObservationWindow,
        records: Vec<FailureRecord>,
    ) -> Result<Self, InvalidRecordError> {
        Self::with_spec(generation, generation.spec(), window, records)
    }

    /// Creates a log over a custom system specification (what-if studies).
    ///
    /// The `generation` still selects the category vocabulary the records
    /// must use.
    ///
    /// # Errors
    ///
    /// Returns the first record-invariant violation encountered.
    pub fn with_spec(
        generation: Generation,
        spec: SystemSpec,
        window: ObservationWindow,
        mut records: Vec<FailureRecord>,
    ) -> Result<Self, InvalidRecordError> {
        for rec in &records {
            rec.validate(generation, &spec, window)?;
        }
        records.sort_by(|a, b| {
            a.time
                .get()
                .partial_cmp(&b.time.get())
                .expect("validated times are finite")
        });
        Ok(FailureLog {
            generation,
            spec,
            window,
            records,
        })
    }

    /// Returns the system generation (category vocabulary) of this log.
    pub const fn generation(&self) -> Generation {
        self.generation
    }

    /// Returns the system specification the log belongs to.
    pub fn spec(&self) -> &SystemSpec {
        &self.spec
    }

    /// Returns the observation window.
    pub const fn window(&self) -> ObservationWindow {
        self.window
    }

    /// Returns the records in ascending time order.
    pub fn records(&self) -> &[FailureRecord] {
        &self.records
    }

    /// Returns the number of failures in the log.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` when the log holds no failures.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over the records in time order.
    pub fn iter(&self) -> std::slice::Iter<'_, FailureRecord> {
        self.records.iter()
    }

    /// Returns a new log containing only records satisfying `keep`.
    ///
    /// The window and specification carry over, so rates computed on the
    /// filtered log still refer to the full observation period — exactly
    /// how the paper computes per-category MTBF.
    pub fn filtered(&self, mut keep: impl FnMut(&FailureRecord) -> bool) -> FailureLog {
        FailureLog {
            generation: self.generation,
            spec: self.spec.clone(),
            window: self.window,
            records: self.records.iter().filter(|r| keep(r)).cloned().collect(),
        }
    }

    /// Returns the records of GPU hardware failures.
    pub fn gpu_records(&self) -> impl Iterator<Item = &FailureRecord> {
        self.records.iter().filter(|r| r.category().is_gpu())
    }

    /// Returns the per-record failure times, ascending.
    pub fn times(&self) -> impl Iterator<Item = Hours> + '_ {
        self.records.iter().map(|r| r.time())
    }
}

impl<'a> IntoIterator for &'a FailureLog {
    type Item = &'a FailureRecord;
    type IntoIter = std::slice::Iter<'a, FailureRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

impl fmt::Display for FailureLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} failure log: {} failures over {}",
            self.generation,
            self.records.len(),
            self.window
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::category::{T2Category, T3Category};
    use crate::time::Date;

    fn t3_window() -> ObservationWindow {
        ObservationWindow::new(
            Date::new(2017, 5, 9).unwrap(),
            Date::new(2020, 2, 22).unwrap(),
        )
        .unwrap()
    }

    fn gpu_record(id: u32, time: f64) -> FailureRecord {
        FailureRecord::new(
            id,
            Hours::new(time),
            Hours::new(10.0),
            Category::T3(T3Category::Gpu),
            NodeId::new(1),
        )
    }

    #[test]
    fn record_accessors() {
        let rec = gpu_record(3, 5.0)
            .with_gpus([GpuSlot::new(1), GpuSlot::new(2)])
            .clone();
        assert_eq!(rec.id(), 3);
        assert_eq!(rec.time(), Hours::new(5.0));
        assert_eq!(rec.ttr(), Hours::new(10.0));
        assert_eq!(rec.node(), NodeId::new(1));
        assert_eq!(rec.recovery_time(), Hours::new(15.0));
        assert!(rec.is_multi_gpu());
        assert_eq!(rec.locus(), None);
    }

    #[test]
    fn single_gpu_is_not_multi() {
        let rec = gpu_record(0, 5.0).with_gpus([GpuSlot::new(0)]);
        assert!(!rec.is_multi_gpu());
        let rec = gpu_record(0, 5.0);
        assert!(!rec.is_multi_gpu());
    }

    #[test]
    fn validate_accepts_good_record() {
        let rec = gpu_record(0, 5.0).with_gpus([GpuSlot::new(0), GpuSlot::new(3)]);
        assert!(rec
            .validate(Generation::Tsubame3, &SystemSpec::tsubame3(), t3_window())
            .is_ok());
    }

    #[test]
    fn validate_rejects_time_outside_window() {
        let rec = gpu_record(0, -1.0);
        let err = rec
            .validate(Generation::Tsubame3, &SystemSpec::tsubame3(), t3_window())
            .unwrap_err();
        assert!(matches!(err, InvalidRecordError::TimeOutOfWindow { .. }));
        let rec = gpu_record(0, 1e9);
        assert!(rec
            .validate(Generation::Tsubame3, &SystemSpec::tsubame3(), t3_window())
            .is_err());
    }

    #[test]
    fn validate_rejects_bad_ttr() {
        let rec = FailureRecord::new(
            0,
            Hours::new(5.0),
            Hours::new(-2.0),
            Category::T3(T3Category::Gpu),
            NodeId::new(0),
        );
        let err = rec
            .validate(Generation::Tsubame3, &SystemSpec::tsubame3(), t3_window())
            .unwrap_err();
        assert!(matches!(err, InvalidRecordError::InvalidTtr { .. }));
    }

    #[test]
    fn validate_rejects_wrong_vocabulary() {
        let rec = FailureRecord::new(
            0,
            Hours::new(5.0),
            Hours::new(2.0),
            Category::T2(T2Category::Gpu),
            NodeId::new(0),
        );
        let err = rec
            .validate(Generation::Tsubame3, &SystemSpec::tsubame3(), t3_window())
            .unwrap_err();
        assert_eq!(err, InvalidRecordError::CategorySystemMismatch);
    }

    #[test]
    fn validate_rejects_node_and_slot_out_of_range() {
        let rec = gpu_record(0, 5.0);
        let rec = FailureRecord::new(
            rec.id(),
            rec.time(),
            rec.ttr(),
            rec.category(),
            NodeId::new(100_000),
        );
        assert!(matches!(
            rec.validate(Generation::Tsubame3, &SystemSpec::tsubame3(), t3_window())
                .unwrap_err(),
            InvalidRecordError::NodeOutOfRange { .. }
        ));

        let rec = gpu_record(0, 5.0).with_gpus([GpuSlot::new(4)]);
        assert!(matches!(
            rec.validate(Generation::Tsubame3, &SystemSpec::tsubame3(), t3_window())
                .unwrap_err(),
            InvalidRecordError::SlotOutOfRange { .. }
        ));
    }

    #[test]
    fn validate_rejects_duplicate_slots() {
        let rec = gpu_record(0, 5.0).with_gpus([GpuSlot::new(2), GpuSlot::new(2)]);
        assert_eq!(
            rec.validate(Generation::Tsubame3, &SystemSpec::tsubame3(), t3_window())
                .unwrap_err(),
            InvalidRecordError::DuplicateSlot { slot: 2 }
        );
    }

    #[test]
    fn validate_rejects_misplaced_metadata() {
        let rec = FailureRecord::new(
            0,
            Hours::new(5.0),
            Hours::new(1.0),
            Category::T3(T3Category::Memory),
            NodeId::new(0),
        )
        .with_gpus([GpuSlot::new(0)]);
        assert_eq!(
            rec.validate(Generation::Tsubame3, &SystemSpec::tsubame3(), t3_window())
                .unwrap_err(),
            InvalidRecordError::UnexpectedGpuInvolvement
        );

        let rec = FailureRecord::new(
            0,
            Hours::new(5.0),
            Hours::new(1.0),
            Category::T3(T3Category::Memory),
            NodeId::new(0),
        )
        .with_locus(SoftwareLocus::KernelPanic);
        assert_eq!(
            rec.validate(Generation::Tsubame3, &SystemSpec::tsubame3(), t3_window())
                .unwrap_err(),
            InvalidRecordError::UnexpectedSoftwareLocus
        );
    }

    #[test]
    fn locus_allowed_on_software_categories() {
        let rec = FailureRecord::new(
            0,
            Hours::new(5.0),
            Hours::new(1.0),
            Category::T3(T3Category::Software),
            NodeId::new(0),
        )
        .with_locus(SoftwareLocus::GpuDriverProblem);
        assert!(rec
            .validate(Generation::Tsubame3, &SystemSpec::tsubame3(), t3_window())
            .is_ok());
    }

    #[test]
    fn log_sorts_records_by_time() {
        let records = vec![gpu_record(0, 50.0), gpu_record(1, 10.0), gpu_record(2, 30.0)];
        let log = FailureLog::new(Generation::Tsubame3, t3_window(), records).unwrap();
        let times: Vec<f64> = log.times().map(Hours::get).collect();
        assert_eq!(times, vec![10.0, 30.0, 50.0]);
        assert_eq!(log.len(), 3);
        assert!(!log.is_empty());
    }

    #[test]
    fn log_rejects_bad_records() {
        let records = vec![gpu_record(0, 50.0), gpu_record(1, -1.0)];
        assert!(FailureLog::new(Generation::Tsubame3, t3_window(), records).is_err());
    }

    #[test]
    fn empty_log_is_fine() {
        let log = FailureLog::new(Generation::Tsubame3, t3_window(), Vec::new()).unwrap();
        assert!(log.is_empty());
        assert_eq!(log.iter().count(), 0);
    }

    #[test]
    fn filtered_keeps_window_and_spec() {
        let records = vec![
            gpu_record(0, 10.0),
            FailureRecord::new(
                1,
                Hours::new(20.0),
                Hours::new(1.0),
                Category::T3(T3Category::Software),
                NodeId::new(0),
            ),
        ];
        let log = FailureLog::new(Generation::Tsubame3, t3_window(), records).unwrap();
        let gpus = log.filtered(|r| r.category().is_gpu());
        assert_eq!(gpus.len(), 1);
        assert_eq!(gpus.window(), log.window());
        assert_eq!(gpus.spec(), log.spec());
        assert_eq!(log.gpu_records().count(), 1);
    }

    #[test]
    fn log_iteration_and_display() {
        let records = vec![gpu_record(0, 10.0)];
        let log = FailureLog::new(Generation::Tsubame3, t3_window(), records).unwrap();
        let collected: Vec<_> = (&log).into_iter().collect();
        assert_eq!(collected.len(), 1);
        assert!(log.to_string().contains("Tsubame-3"));
        assert!(log.to_string().contains("1 failures"));
    }

    #[test]
    fn record_display_mentions_gpus_and_locus() {
        let rec = gpu_record(5, 1.0).with_gpus([GpuSlot::new(0), GpuSlot::new(2)]);
        let text = rec.to_string();
        assert!(text.contains("gpus=[0,2]"), "{text}");
        let rec = FailureRecord::new(
            6,
            Hours::new(2.0),
            Hours::new(1.0),
            Category::T3(T3Category::Software),
            NodeId::new(0),
        )
        .with_locus(SoftwareLocus::UnknownCause);
        assert!(rec.to_string().contains("locus=UnknownCause"));
    }

    #[test]
    fn custom_spec_logs() {
        let spec = SystemSpec::builder("Test").nodes(2).gpus_per_node(8).build().unwrap();
        let rec = gpu_record(0, 5.0).with_gpus([GpuSlot::new(7)]);
        let log =
            FailureLog::with_spec(Generation::Tsubame3, spec, t3_window(), vec![rec]).unwrap();
        assert_eq!(log.spec().gpus_per_node(), 8);
    }
}
