//! System and node models for the two Tsubame generations (Table I).
//!
//! The analyses need exactly the topology facts Table I and Section III
//! use: node count, CPUs and GPUs per node, aggregate component counts, and
//! the peak compute rate (for the performance-error-proportionality metric).

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::error::InvalidSpecError;

/// Identifies one of the two studied supercomputer generations.
///
/// ```
/// use failtypes::Generation;
/// assert_eq!(Generation::Tsubame2.to_string(), "Tsubame-2");
/// assert!(Generation::Tsubame3.spec().gpus_per_node() == 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Generation {
    /// Tsubame-2 (2010; NVIDIA K20X, three GPUs per node).
    Tsubame2,
    /// Tsubame-3 (2017; NVIDIA P100, four GPUs per node).
    Tsubame3,
}

impl Generation {
    /// Both generations, oldest first.
    pub const ALL: [Generation; 2] = [Generation::Tsubame2, Generation::Tsubame3];

    /// Returns the canonical system specification (Table I).
    pub fn spec(self) -> SystemSpec {
        match self {
            Generation::Tsubame2 => SystemSpec::tsubame2(),
            Generation::Tsubame3 => SystemSpec::tsubame3(),
        }
    }

    /// Returns the display name used in the paper.
    pub const fn name(self) -> &'static str {
        match self {
            Generation::Tsubame2 => "Tsubame-2",
            Generation::Tsubame3 => "Tsubame-3",
        }
    }
}

impl fmt::Display for Generation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A zero-based node index within a system.
///
/// ```
/// use failtypes::NodeId;
/// let n = NodeId::new(17);
/// assert_eq!(n.index(), 17);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a zero-based index.
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// Returns the zero-based index.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(index: u32) -> Self {
        NodeId(index)
    }
}

/// A zero-based GPU slot within a node (`GPU 0` .. `GPU 3` in Fig. 1).
///
/// Slot indices are meaningful: Fig. 5 shows that failure rates differ per
/// slot, which is why the analyses keep the slot rather than collapsing to a
/// per-node GPU count.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct GpuSlot(u8);

impl GpuSlot {
    /// Creates a GPU slot from a zero-based index.
    pub const fn new(index: u8) -> Self {
        GpuSlot(index)
    }

    /// Returns the zero-based slot index.
    pub const fn index(self) -> u8 {
        self.0
    }
}

impl fmt::Display for GpuSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GPU {}", self.0)
    }
}

impl From<u8> for GpuSlot {
    fn from(index: u8) -> Self {
        GpuSlot(index)
    }
}

/// A zero-based rack index within a system.
///
/// Racks group consecutive node ids ([`SystemSpec::rack_of`]); the
/// rack-level failure distribution is one of the spatial analyses field
/// studies report (failures are not uniform across racks).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct RackId(u32);

impl RackId {
    /// Creates a rack id from a zero-based index.
    pub const fn new(index: u32) -> Self {
        RackId(index)
    }

    /// Returns the zero-based rack index.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for RackId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rack{}", self.0)
    }
}

impl From<u32> for RackId {
    fn from(index: u32) -> Self {
        RackId(index)
    }
}

/// The full node and system specification of one generation (Table I).
///
/// Construct the two studied systems with [`SystemSpec::tsubame2`] /
/// [`SystemSpec::tsubame3`], or model a hypothetical system with
/// [`SystemSpec::builder`] (used by the what-if studies).
///
/// # Examples
///
/// ```
/// use failtypes::SystemSpec;
///
/// let t2 = SystemSpec::tsubame2();
/// let t3 = SystemSpec::tsubame3();
/// // Section III: 7040 vs 3240 CPU+GPU components.
/// assert_eq!(t2.component_count(), 7040);
/// assert_eq!(t3.component_count(), 3240);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemSpec {
    name: String,
    nodes: u32,
    cpus_per_node: u8,
    gpus_per_node: u8,
    cores_per_cpu: u8,
    cpu_model: String,
    gpu_model: String,
    memory_per_node_gb: u32,
    ssd_per_node_gb: u32,
    nodes_per_rack: u32,
    interconnect: String,
    rpeak_pflops: f64,
    power_mw: f64,
}

impl SystemSpec {
    /// Returns the Tsubame-2 specification exactly as Table I reports it.
    ///
    /// The node count (1408) comes from Section II.
    pub fn tsubame2() -> Self {
        SystemSpec {
            name: "Tsubame-2".to_owned(),
            nodes: 1408,
            cpus_per_node: 2,
            gpus_per_node: 3,
            cores_per_cpu: 6,
            cpu_model: "Intel Xeon X5670 (Westmere-EP, 2.93GHz)".to_owned(),
            gpu_model: "NVIDIA Tesla K20X (GK110)".to_owned(),
            memory_per_node_gb: 58,
            ssd_per_node_gb: 120,
            nodes_per_rack: 32,
            interconnect: "4X QDR InfiniBand - 2 ports".to_owned(),
            rpeak_pflops: 2.3,
            power_mw: 1.4,
        }
    }

    /// Returns the Tsubame-3 specification exactly as Table I reports it.
    ///
    /// The node count (540) follows from Section III's aggregate component
    /// count: 3240 CPUs+GPUs at 2 CPUs and 4 GPUs per node.
    pub fn tsubame3() -> Self {
        SystemSpec {
            name: "Tsubame-3".to_owned(),
            nodes: 540,
            cpus_per_node: 2,
            gpus_per_node: 4,
            cores_per_cpu: 14,
            cpu_model: "Intel Xeon E5-2680 V4 (Broadwell-EP, 2.4GHz)".to_owned(),
            gpu_model: "NVIDIA Tesla P100 (NVLink-Optimized)".to_owned(),
            memory_per_node_gb: 256,
            ssd_per_node_gb: 2048,
            nodes_per_rack: 36,
            interconnect: "Intel Omni-Path HFI 100Gbps - 4 ports".to_owned(),
            rpeak_pflops: 12.1,
            power_mw: 0.792,
        }
    }

    /// Starts building a custom system specification.
    ///
    /// ```
    /// use failtypes::SystemSpec;
    ///
    /// let spec = SystemSpec::builder("Hypothetical-8GPU")
    ///     .nodes(256)
    ///     .gpus_per_node(8)
    ///     .rpeak_pflops(40.0)
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(spec.gpu_count(), 2048);
    /// ```
    pub fn builder(name: impl Into<String>) -> SystemSpecBuilder {
        SystemSpecBuilder::new(name)
    }

    /// Returns the system name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the number of compute nodes.
    pub const fn nodes(&self) -> u32 {
        self.nodes
    }

    /// Returns the number of host CPUs per node.
    pub const fn cpus_per_node(&self) -> u8 {
        self.cpus_per_node
    }

    /// Returns the number of GPUs per node.
    pub const fn gpus_per_node(&self) -> u8 {
        self.gpus_per_node
    }

    /// Returns the number of cores per CPU.
    pub const fn cores_per_cpu(&self) -> u8 {
        self.cores_per_cpu
    }

    /// Returns the CPU model string.
    pub fn cpu_model(&self) -> &str {
        &self.cpu_model
    }

    /// Returns the GPU model string.
    pub fn gpu_model(&self) -> &str {
        &self.gpu_model
    }

    /// Returns the memory per node in GiB.
    pub const fn memory_per_node_gb(&self) -> u32 {
        self.memory_per_node_gb
    }

    /// Returns the local SSD capacity per node in GiB.
    pub const fn ssd_per_node_gb(&self) -> u32 {
        self.ssd_per_node_gb
    }

    /// Returns the number of nodes per rack (consecutive node ids share a
    /// rack).
    pub const fn nodes_per_rack(&self) -> u32 {
        self.nodes_per_rack
    }

    /// Returns the number of racks (the last rack may be partial).
    pub const fn racks(&self) -> u32 {
        self.nodes.div_ceil(self.nodes_per_rack)
    }

    /// Returns the rack housing a node.
    ///
    /// ```
    /// use failtypes::{NodeId, RackId, SystemSpec};
    /// let t2 = SystemSpec::tsubame2();
    /// assert_eq!(t2.rack_of(NodeId::new(0)), RackId::new(0));
    /// assert_eq!(t2.rack_of(NodeId::new(32)), RackId::new(1));
    /// ```
    pub const fn rack_of(&self, node: NodeId) -> RackId {
        RackId::new(node.index() / self.nodes_per_rack)
    }

    /// Iterates over the node ids housed in a rack.
    pub fn rack_nodes(&self, rack: RackId) -> impl Iterator<Item = NodeId> {
        let start = rack.index() * self.nodes_per_rack;
        let end = (start + self.nodes_per_rack).min(self.nodes);
        (start..end).map(NodeId::new)
    }

    /// Returns the interconnect description.
    pub fn interconnect(&self) -> &str {
        &self.interconnect
    }

    /// Returns the theoretical peak in PFLOP/s.
    pub const fn rpeak_pflops(&self) -> f64 {
        self.rpeak_pflops
    }

    /// Returns the power consumption in MW.
    pub const fn power_mw(&self) -> f64 {
        self.power_mw
    }

    /// Returns the total number of GPUs in the system.
    pub const fn gpu_count(&self) -> u32 {
        self.nodes * self.gpus_per_node as u32
    }

    /// Returns the total number of host CPUs in the system.
    pub const fn cpu_count(&self) -> u32 {
        self.nodes * self.cpus_per_node as u32
    }

    /// Returns the total number of CPU and GPU components.
    ///
    /// This is the size measure Section III uses when arguing that the
    /// Tsubame-3 MTBF gain is not merely a side effect of fewer components.
    pub const fn component_count(&self) -> u32 {
        self.gpu_count() + self.cpu_count()
    }

    /// Returns `true` when `node` addresses a node of this system.
    pub fn contains_node(&self, node: NodeId) -> bool {
        node.index() < self.nodes
    }

    /// Returns `true` when `slot` addresses a GPU slot of this system's
    /// nodes.
    pub fn contains_slot(&self, slot: GpuSlot) -> bool {
        slot.index() < self.gpus_per_node
    }

    /// Iterates over all GPU slots of a node of this system.
    pub fn gpu_slots(&self) -> impl Iterator<Item = GpuSlot> {
        (0..self.gpus_per_node).map(GpuSlot::new)
    }
}

impl fmt::Display for SystemSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} nodes x [{} CPU + {} GPU], {:.1} PFLOP/s)",
            self.name, self.nodes, self.cpus_per_node, self.gpus_per_node, self.rpeak_pflops
        )
    }
}

/// Builder for [`SystemSpec`], used to model hypothetical systems in the
/// what-if studies.
///
/// Unset fields default to the Tsubame-3 values, so a what-if study only
/// states what it varies.
#[derive(Debug, Clone)]
pub struct SystemSpecBuilder {
    spec: SystemSpec,
}

impl SystemSpecBuilder {
    fn new(name: impl Into<String>) -> Self {
        let mut spec = SystemSpec::tsubame3();
        spec.name = name.into();
        SystemSpecBuilder { spec }
    }

    /// Sets the number of compute nodes.
    pub fn nodes(mut self, nodes: u32) -> Self {
        self.spec.nodes = nodes;
        self
    }

    /// Sets the number of CPUs per node.
    pub fn cpus_per_node(mut self, cpus: u8) -> Self {
        self.spec.cpus_per_node = cpus;
        self
    }

    /// Sets the number of GPUs per node.
    pub fn gpus_per_node(mut self, gpus: u8) -> Self {
        self.spec.gpus_per_node = gpus;
        self
    }

    /// Sets the number of cores per CPU.
    pub fn cores_per_cpu(mut self, cores: u8) -> Self {
        self.spec.cores_per_cpu = cores;
        self
    }

    /// Sets the CPU model string.
    pub fn cpu_model(mut self, model: impl Into<String>) -> Self {
        self.spec.cpu_model = model.into();
        self
    }

    /// Sets the GPU model string.
    pub fn gpu_model(mut self, model: impl Into<String>) -> Self {
        self.spec.gpu_model = model.into();
        self
    }

    /// Sets the memory per node in GiB.
    pub fn memory_per_node_gb(mut self, gb: u32) -> Self {
        self.spec.memory_per_node_gb = gb;
        self
    }

    /// Sets the SSD capacity per node in GiB.
    pub fn ssd_per_node_gb(mut self, gb: u32) -> Self {
        self.spec.ssd_per_node_gb = gb;
        self
    }

    /// Sets the number of nodes per rack.
    pub fn nodes_per_rack(mut self, nodes: u32) -> Self {
        self.spec.nodes_per_rack = nodes;
        self
    }

    /// Sets the interconnect description.
    pub fn interconnect(mut self, text: impl Into<String>) -> Self {
        self.spec.interconnect = text.into();
        self
    }

    /// Sets the theoretical peak in PFLOP/s.
    pub fn rpeak_pflops(mut self, pflops: f64) -> Self {
        self.spec.rpeak_pflops = pflops;
        self
    }

    /// Sets the power consumption in MW.
    pub fn power_mw(mut self, mw: f64) -> Self {
        self.spec.power_mw = mw;
        self
    }

    /// Validates and returns the specification.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidSpecError`] when the system has zero nodes, zero
    /// GPUs per node, zero CPUs per node, or a non-positive peak rate.
    pub fn build(self) -> Result<SystemSpec, InvalidSpecError> {
        let s = &self.spec;
        if s.nodes == 0 {
            return Err(InvalidSpecError::new("system must have at least one node"));
        }
        if s.gpus_per_node == 0 {
            return Err(InvalidSpecError::new(
                "multi-GPU analyses need at least one GPU per node",
            ));
        }
        if s.cpus_per_node == 0 {
            return Err(InvalidSpecError::new("node must have at least one CPU"));
        }
        if s.rpeak_pflops <= 0.0 || s.rpeak_pflops.is_nan() {
            return Err(InvalidSpecError::new("Rpeak must be positive"));
        }
        if s.nodes_per_rack == 0 {
            return Err(InvalidSpecError::new("rack must hold at least one node"));
        }
        Ok(self.spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let t2 = SystemSpec::tsubame2();
        assert_eq!(t2.nodes(), 1408);
        assert_eq!(t2.cpus_per_node(), 2);
        assert_eq!(t2.gpus_per_node(), 3);
        assert_eq!(t2.cores_per_cpu(), 6);
        assert_eq!(t2.memory_per_node_gb(), 58);
        assert_eq!(t2.ssd_per_node_gb(), 120);
        assert!((t2.rpeak_pflops() - 2.3).abs() < 1e-12);
        assert!((t2.power_mw() - 1.4).abs() < 1e-12);

        let t3 = SystemSpec::tsubame3();
        assert_eq!(t3.nodes(), 540);
        assert_eq!(t3.gpus_per_node(), 4);
        assert_eq!(t3.cores_per_cpu(), 14);
        assert_eq!(t3.memory_per_node_gb(), 256);
        assert_eq!(t3.ssd_per_node_gb(), 2048);
        assert!((t3.rpeak_pflops() - 12.1).abs() < 1e-12);
    }

    #[test]
    fn component_counts_match_section3() {
        assert_eq!(SystemSpec::tsubame2().component_count(), 7040);
        assert_eq!(SystemSpec::tsubame3().component_count(), 3240);
        // GPU count decreased ~2x, CPU count ~2.6x — the paper's context for
        // the per-component MTBF improvements.
        let t2 = SystemSpec::tsubame2();
        let t3 = SystemSpec::tsubame3();
        assert_eq!(t2.gpu_count(), 4224);
        assert_eq!(t3.gpu_count(), 2160);
        assert_eq!(t2.cpu_count(), 2816);
        assert_eq!(t3.cpu_count(), 1080);
    }

    #[test]
    fn node_and_slot_membership() {
        let t3 = SystemSpec::tsubame3();
        assert!(t3.contains_node(NodeId::new(0)));
        assert!(t3.contains_node(NodeId::new(539)));
        assert!(!t3.contains_node(NodeId::new(540)));
        assert!(t3.contains_slot(GpuSlot::new(3)));
        assert!(!t3.contains_slot(GpuSlot::new(4)));
        let slots: Vec<_> = t3.gpu_slots().collect();
        assert_eq!(slots.len(), 4);
        assert_eq!(slots[3], GpuSlot::new(3));
    }

    #[test]
    fn generation_round_trips_to_spec() {
        assert_eq!(Generation::Tsubame2.spec(), SystemSpec::tsubame2());
        assert_eq!(Generation::Tsubame3.spec(), SystemSpec::tsubame3());
        assert_eq!(Generation::ALL.len(), 2);
    }

    #[test]
    fn builder_defaults_and_overrides() {
        let spec = SystemSpec::builder("Test")
            .nodes(10)
            .gpus_per_node(8)
            .cpus_per_node(1)
            .rpeak_pflops(1.0)
            .build()
            .unwrap();
        assert_eq!(spec.name(), "Test");
        assert_eq!(spec.component_count(), 90);
        // Unset fields default to Tsubame-3 values.
        assert_eq!(spec.cores_per_cpu(), 14);
    }

    #[test]
    fn builder_rejects_degenerate_systems() {
        assert!(SystemSpec::builder("x").nodes(0).build().is_err());
        assert!(SystemSpec::builder("x").gpus_per_node(0).build().is_err());
        assert!(SystemSpec::builder("x").cpus_per_node(0).build().is_err());
        assert!(SystemSpec::builder("x").rpeak_pflops(0.0).build().is_err());
        assert!(SystemSpec::builder("x").rpeak_pflops(-2.0).build().is_err());
    }

    #[test]
    fn builder_string_setters() {
        let spec = SystemSpec::builder("Custom")
            .cpu_model("TestCPU")
            .gpu_model("TestGPU")
            .interconnect("TestNet")
            .memory_per_node_gb(1)
            .ssd_per_node_gb(2)
            .cores_per_cpu(3)
            .power_mw(0.5)
            .build()
            .unwrap();
        assert_eq!(spec.cpu_model(), "TestCPU");
        assert_eq!(spec.gpu_model(), "TestGPU");
        assert_eq!(spec.interconnect(), "TestNet");
        assert_eq!(spec.memory_per_node_gb(), 1);
        assert_eq!(spec.ssd_per_node_gb(), 2);
        assert_eq!(spec.cores_per_cpu(), 3);
        assert!((spec.power_mw() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rack_topology() {
        let t2 = SystemSpec::tsubame2();
        assert_eq!(t2.nodes_per_rack(), 32);
        assert_eq!(t2.racks(), 44); // 1408 / 32
        assert_eq!(t2.rack_of(NodeId::new(31)), RackId::new(0));
        assert_eq!(t2.rack_of(NodeId::new(1407)), RackId::new(43));
        let t3 = SystemSpec::tsubame3();
        assert_eq!(t3.nodes_per_rack(), 36);
        assert_eq!(t3.racks(), 15); // 540 / 36
        // Rack node enumeration covers the rack exactly.
        let nodes: Vec<NodeId> = t3.rack_nodes(RackId::new(14)).collect();
        assert_eq!(nodes.len(), 36);
        assert_eq!(nodes[0], NodeId::new(504));
        // Partial final rack.
        let spec = SystemSpec::builder("partial")
            .nodes(10)
            .nodes_per_rack(4)
            .build()
            .unwrap();
        assert_eq!(spec.racks(), 3);
        assert_eq!(spec.rack_nodes(RackId::new(2)).count(), 2);
        assert!(SystemSpec::builder("x").nodes_per_rack(0).build().is_err());
        assert_eq!(RackId::from(3u32), RackId::new(3));
        assert_eq!(RackId::new(5).to_string(), "rack5");
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId::new(7).to_string(), "node7");
        assert_eq!(GpuSlot::new(2).to_string(), "GPU 2");
        let text = SystemSpec::tsubame2().to_string();
        assert!(text.contains("Tsubame-2"));
        assert!(text.contains("1408"));
    }

    #[test]
    fn id_conversions() {
        assert_eq!(NodeId::from(5u32), NodeId::new(5));
        assert_eq!(GpuSlot::from(2u8), GpuSlot::new(2));
        assert_eq!(NodeId::new(9).index(), 9);
        assert_eq!(GpuSlot::new(1).index(), 1);
    }
}
