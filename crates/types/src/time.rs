//! Time handling for failure logs.
//!
//! Failure records carry an offset in [`Hours`] since the log's start date.
//! Calendar math (needed for the monthly/seasonal analyses of Figs. 11-12)
//! is provided by a small proleptic-Gregorian [`Date`] type, so the crate
//! does not depend on an external date-time library.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A duration or offset expressed in hours.
///
/// This is the native unit of the Tsubame failure logs: both the time of a
/// failure (as an offset from the log start) and the time to recovery are
/// reported in hours.
///
/// # Examples
///
/// ```
/// use failtypes::Hours;
///
/// let mtbf = Hours::new(15.0);
/// let window = mtbf * 4.0;
/// assert_eq!(window, Hours::new(60.0));
/// assert_eq!(window.get(), 60.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Hours(f64);

impl Hours {
    /// The zero duration.
    pub const ZERO: Hours = Hours(0.0);

    /// Creates a duration of `h` hours.
    ///
    /// Negative and non-finite values are representable (so that raw log
    /// data can be round-tripped); use [`Hours::is_valid`] to check.
    pub const fn new(h: f64) -> Self {
        Hours(h)
    }

    /// Returns the raw number of hours.
    pub const fn get(self) -> f64 {
        self.0
    }

    /// Returns the duration in days (24-hour days).
    ///
    /// ```
    /// use failtypes::Hours;
    /// assert_eq!(Hours::new(48.0).days(), 2.0);
    /// ```
    pub fn days(self) -> f64 {
        self.0 / 24.0
    }

    /// Creates a duration from a number of 24-hour days.
    pub fn from_days(days: f64) -> Self {
        Hours(days * 24.0)
    }

    /// Returns `true` when the value is finite and non-negative, which is
    /// what every analysis in this workspace requires.
    pub fn is_valid(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: Hours) -> Hours {
        Hours(self.0.min(other.0))
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: Hours) -> Hours {
        Hours(self.0.max(other.0))
    }
}

impl fmt::Display for Hours {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} h", self.0)
    }
}

impl Add for Hours {
    type Output = Hours;
    fn add(self, rhs: Hours) -> Hours {
        Hours(self.0 + rhs.0)
    }
}

impl AddAssign for Hours {
    fn add_assign(&mut self, rhs: Hours) {
        self.0 += rhs.0;
    }
}

impl Sub for Hours {
    type Output = Hours;
    fn sub(self, rhs: Hours) -> Hours {
        Hours(self.0 - rhs.0)
    }
}

impl SubAssign for Hours {
    fn sub_assign(&mut self, rhs: Hours) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for Hours {
    type Output = Hours;
    fn mul(self, rhs: f64) -> Hours {
        Hours(self.0 * rhs)
    }
}

impl Div<f64> for Hours {
    type Output = Hours;
    fn div(self, rhs: f64) -> Hours {
        Hours(self.0 / rhs)
    }
}

impl Div for Hours {
    /// Dividing two durations yields a dimensionless ratio.
    type Output = f64;
    fn div(self, rhs: Hours) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Hours {
    fn sum<I: Iterator<Item = Hours>>(iter: I) -> Hours {
        Hours(iter.map(|h| h.0).sum())
    }
}

impl From<f64> for Hours {
    fn from(h: f64) -> Self {
        Hours(h)
    }
}

impl From<Hours> for f64 {
    fn from(h: Hours) -> f64 {
        h.0
    }
}

/// A calendar month, `1..=12`.
///
/// ```
/// use failtypes::Month;
/// let m = Month::new(7).unwrap();
/// assert_eq!(m.name(), "Jul");
/// assert!(Month::new(13).is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Month(u8);

impl Month {
    /// Creates a month from its 1-based number, returning `None` when the
    /// number is outside `1..=12`.
    pub fn new(m: u8) -> Option<Self> {
        (1..=12).contains(&m).then_some(Month(m))
    }

    /// Returns the 1-based month number.
    pub const fn number(self) -> u8 {
        self.0
    }

    /// Returns the zero-based index, convenient for array lookups.
    pub const fn index(self) -> usize {
        self.0 as usize - 1
    }

    /// Returns the conventional three-letter English abbreviation.
    pub const fn name(self) -> &'static str {
        const NAMES: [&str; 12] = [
            "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
        ];
        NAMES[self.0 as usize - 1]
    }

    /// Iterates over all twelve months in calendar order.
    pub fn all() -> impl Iterator<Item = Month> {
        (1..=12).map(Month)
    }

    /// Returns `true` for July through December.
    ///
    /// The paper's seasonal analysis (Fig. 11) contrasts the first and the
    /// second half of the calendar year.
    pub const fn is_second_half(self) -> bool {
        self.0 >= 7
    }
}

impl fmt::Display for Month {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A proleptic-Gregorian calendar date.
///
/// Only year/month/day arithmetic is needed by the analyses, so this type
/// supports exactly that: conversion to and from a day number, adding hours,
/// and extracting the month for seasonal bucketing.
///
/// # Examples
///
/// ```
/// use failtypes::Date;
///
/// let start = Date::new(2012, 1, 7).unwrap();
/// let later = start.plus_hours(failtypes::Hours::from_days(30.0));
/// assert_eq!(later, Date::new(2012, 2, 6).unwrap());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Date {
    year: i32,
    month: u8,
    day: u8,
}

impl Date {
    /// Creates a date, returning `None` when the month/day combination is
    /// not a real calendar date.
    pub fn new(year: i32, month: u8, day: u8) -> Option<Self> {
        if !(1..=12).contains(&month) {
            return None;
        }
        if day == 0 || day > days_in_month(year, month) {
            return None;
        }
        Some(Date { year, month, day })
    }

    /// Returns the year.
    pub const fn year(self) -> i32 {
        self.year
    }

    /// Returns the month.
    pub fn month(self) -> Month {
        Month(self.month)
    }

    /// Returns the day of month, `1..=31`.
    pub const fn day(self) -> u8 {
        self.day
    }

    /// Returns the number of days since the civil epoch 1970-01-01.
    ///
    /// Uses the standard "days from civil" algorithm; exact for all
    /// representable dates.
    pub fn days_from_epoch(self) -> i64 {
        let y = if self.month <= 2 {
            self.year - 1
        } else {
            self.year
        } as i64;
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400; // [0, 399]
        let mp = (self.month as i64 + 9) % 12; // [0, 11], March = 0
        let doy = (153 * mp + 2) / 5 + self.day as i64 - 1; // [0, 365]
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
        era * 146_097 + doe - 719_468
    }

    /// Reconstructs a date from a day number as returned by
    /// [`Date::days_from_epoch`].
    pub fn from_days_from_epoch(z: i64) -> Self {
        let z = z + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097; // [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
        let mp = (5 * doy + 2) / 153; // [0, 11]
        let day = (doy - (153 * mp + 2) / 5 + 1) as u8; // [1, 31]
        let month = if mp < 10 { mp + 3 } else { mp - 9 } as u8; // [1, 12]
        let year = if month <= 2 { y + 1 } else { y } as i32;
        Date { year, month, day }
    }

    /// Returns the calendar date reached by advancing this date by the given
    /// (non-negative or negative) number of hours, truncated to day
    /// granularity.
    pub fn plus_hours(self, hours: Hours) -> Date {
        let days = (hours.get() / 24.0).floor() as i64;
        Date::from_days_from_epoch(self.days_from_epoch() + days)
    }

    /// Returns the whole number of hours between midnight of `self` and
    /// midnight of `other` (positive when `other` is later).
    ///
    /// ```
    /// use failtypes::{Date, Hours};
    /// let a = Date::new(2017, 5, 9).unwrap();
    /// let b = Date::new(2020, 2, 22).unwrap();
    /// assert_eq!(a.hours_until(b), Hours::from_days(1019.0));
    /// ```
    pub fn hours_until(self, other: Date) -> Hours {
        Hours::from_days((other.days_from_epoch() - self.days_from_epoch()) as f64)
    }

    /// Returns the `(year, month)` pair, the bucket key for the paper's
    /// monthly analyses.
    pub fn year_month(self) -> (i32, Month) {
        (self.year, Month(self.month))
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// Returns `true` when `year` is a Gregorian leap year.
///
/// ```
/// assert!(failtypes::is_leap_year(2020));
/// assert!(!failtypes::is_leap_year(1900));
/// assert!(failtypes::is_leap_year(2000));
/// ```
pub const fn is_leap_year(year: i32) -> bool {
    year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
}

/// Returns the number of days in the given month of the given year.
///
/// # Panics
///
/// Panics if `month` is not in `1..=12`.
pub const fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => panic!("month out of range"),
    }
}

/// An observation window anchored at a calendar start date.
///
/// Failure logs record event times as hour offsets into such a window; the
/// window is what turns offsets back into calendar dates and bounds every
/// rate (MTBF) computation.
///
/// # Examples
///
/// ```
/// use failtypes::{Date, Hours, ObservationWindow};
///
/// let w = ObservationWindow::new(
///     Date::new(2012, 1, 7).unwrap(),
///     Date::new(2013, 8, 1).unwrap(),
/// ).unwrap();
/// assert_eq!(w.duration().days(), 572.0);
/// assert!(w.contains(Hours::new(100.0)));
/// assert!(!w.contains(Hours::from_days(600.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObservationWindow {
    start: Date,
    end: Date,
}

impl ObservationWindow {
    /// Creates a window spanning `[start, end)`.
    ///
    /// Returns `None` when `end` is not strictly after `start`.
    pub fn new(start: Date, end: Date) -> Option<Self> {
        (end > start).then_some(ObservationWindow { start, end })
    }

    /// Returns the first day of the window.
    pub const fn start(self) -> Date {
        self.start
    }

    /// Returns the exclusive end day of the window.
    pub const fn end(self) -> Date {
        self.end
    }

    /// Returns the total duration of the window.
    pub fn duration(self) -> Hours {
        self.start.hours_until(self.end)
    }

    /// Returns `true` when an event offset lies inside the window.
    pub fn contains(self, offset: Hours) -> bool {
        offset.get() >= 0.0 && offset.get() < self.duration().get()
    }

    /// Converts an event offset into the calendar date it falls on.
    pub fn date_of(self, offset: Hours) -> Date {
        self.start.plus_hours(offset)
    }

    /// Iterates over the `(year, month)` buckets the window overlaps, in
    /// chronological order. The end month is included when the window ends
    /// mid-month.
    pub fn months(self) -> Vec<(i32, Month)> {
        let mut out = Vec::new();
        let (mut y, mut m) = self.start.year_month();
        let last_day = Date::from_days_from_epoch(self.end.days_from_epoch() - 1);
        let (ey, em) = last_day.year_month();
        loop {
            out.push((y, m));
            if (y, m) == (ey, em) {
                break;
            }
            if m.number() == 12 {
                y += 1;
                m = Month(1);
            } else {
                m = Month(m.number() + 1);
            }
        }
        out
    }
}

impl fmt::Display for ObservationWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {})", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hours_arithmetic() {
        let a = Hours::new(10.0);
        let b = Hours::new(4.0);
        assert_eq!(a + b, Hours::new(14.0));
        assert_eq!(a - b, Hours::new(6.0));
        assert_eq!(a * 2.0, Hours::new(20.0));
        assert_eq!(a / 2.0, Hours::new(5.0));
        assert_eq!(a / b, 2.5);
        let mut c = a;
        c += b;
        assert_eq!(c, Hours::new(14.0));
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn hours_sum_and_validity() {
        let total: Hours = [1.0, 2.0, 3.0].iter().map(|&h| Hours::new(h)).sum();
        assert_eq!(total, Hours::new(6.0));
        assert!(Hours::new(0.0).is_valid());
        assert!(!Hours::new(-1.0).is_valid());
        assert!(!Hours::new(f64::NAN).is_valid());
        assert!(!Hours::new(f64::INFINITY).is_valid());
    }

    #[test]
    fn hours_min_max_days() {
        assert_eq!(Hours::new(3.0).min(Hours::new(5.0)), Hours::new(3.0));
        assert_eq!(Hours::new(3.0).max(Hours::new(5.0)), Hours::new(5.0));
        assert_eq!(Hours::from_days(2.0).get(), 48.0);
        assert_eq!(Hours::new(36.0).days(), 1.5);
    }

    #[test]
    fn month_construction_and_names() {
        assert!(Month::new(0).is_none());
        assert!(Month::new(13).is_none());
        let months: Vec<Month> = Month::all().collect();
        assert_eq!(months.len(), 12);
        assert_eq!(months[0].name(), "Jan");
        assert_eq!(months[11].name(), "Dec");
        assert_eq!(months[6].index(), 6);
        assert!(!months[5].is_second_half());
        assert!(months[6].is_second_half());
    }

    #[test]
    fn date_rejects_invalid() {
        assert!(Date::new(2020, 2, 30).is_none());
        assert!(Date::new(2019, 2, 29).is_none());
        assert!(Date::new(2020, 2, 29).is_some());
        assert!(Date::new(2020, 13, 1).is_none());
        assert!(Date::new(2020, 0, 1).is_none());
        assert!(Date::new(2020, 4, 31).is_none());
        assert!(Date::new(2020, 4, 0).is_none());
    }

    #[test]
    fn date_epoch_roundtrip_known_values() {
        assert_eq!(Date::new(1970, 1, 1).unwrap().days_from_epoch(), 0);
        assert_eq!(Date::new(1970, 1, 2).unwrap().days_from_epoch(), 1);
        assert_eq!(Date::new(1969, 12, 31).unwrap().days_from_epoch(), -1);
        assert_eq!(Date::new(2000, 3, 1).unwrap().days_from_epoch(), 11_017);
    }

    #[test]
    fn date_roundtrip_sweep() {
        // Sweep a few decades of days to make sure the conversion is its own
        // inverse.
        for z in -20_000..40_000 {
            let d = Date::from_days_from_epoch(z);
            assert_eq!(d.days_from_epoch(), z, "roundtrip failed at {z} ({d})");
            assert!(Date::new(d.year(), d.month().number(), d.day()).is_some());
        }
    }

    #[test]
    fn date_plus_hours() {
        let d = Date::new(2012, 1, 7).unwrap();
        assert_eq!(d.plus_hours(Hours::new(23.9)), d);
        assert_eq!(
            d.plus_hours(Hours::new(24.0)),
            Date::new(2012, 1, 8).unwrap()
        );
        assert_eq!(
            d.plus_hours(Hours::from_days(400.0)),
            Date::new(2013, 2, 10).unwrap()
        );
    }

    #[test]
    fn tsubame_window_lengths() {
        // The paper's observation windows.
        let t2 = ObservationWindow::new(
            Date::new(2012, 1, 7).unwrap(),
            Date::new(2013, 8, 1).unwrap(),
        )
        .unwrap();
        assert_eq!(t2.duration().days(), 572.0);
        let t3 = ObservationWindow::new(
            Date::new(2017, 5, 9).unwrap(),
            Date::new(2020, 2, 22).unwrap(),
        )
        .unwrap();
        assert_eq!(t3.duration().days(), 1019.0);
    }

    #[test]
    fn window_rejects_inverted() {
        let a = Date::new(2020, 1, 1).unwrap();
        let b = Date::new(2020, 1, 2).unwrap();
        assert!(ObservationWindow::new(b, a).is_none());
        assert!(ObservationWindow::new(a, a).is_none());
        assert!(ObservationWindow::new(a, b).is_some());
    }

    #[test]
    fn window_date_of_and_contains() {
        let w = ObservationWindow::new(
            Date::new(2017, 5, 9).unwrap(),
            Date::new(2017, 6, 9).unwrap(),
        )
        .unwrap();
        assert!(w.contains(Hours::ZERO));
        assert!(!w.contains(Hours::new(-0.5)));
        assert_eq!(w.date_of(Hours::new(25.0)), Date::new(2017, 5, 10).unwrap());
        assert_eq!(w.duration(), Hours::from_days(31.0));
    }

    #[test]
    fn window_months_enumeration() {
        let w = ObservationWindow::new(
            Date::new(2012, 11, 15).unwrap(),
            Date::new(2013, 2, 2).unwrap(),
        )
        .unwrap();
        let months = w.months();
        let expected = [
            (2012, Month::new(11).unwrap()),
            (2012, Month::new(12).unwrap()),
            (2013, Month::new(1).unwrap()),
            (2013, Month::new(2).unwrap()),
        ];
        assert_eq!(months, expected);
    }

    #[test]
    fn window_months_single_month() {
        let w = ObservationWindow::new(
            Date::new(2012, 3, 2).unwrap(),
            Date::new(2012, 3, 20).unwrap(),
        )
        .unwrap();
        assert_eq!(months_len(&w), 1);
    }

    fn months_len(w: &ObservationWindow) -> usize {
        w.months().len()
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap_year(2004));
        assert!(!is_leap_year(2100));
        assert!(is_leap_year(2400));
        assert_eq!(days_in_month(2020, 2), 29);
        assert_eq!(days_in_month(2021, 2), 28);
        assert_eq!(days_in_month(2021, 9), 30);
        assert_eq!(days_in_month(2021, 12), 31);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            #[test]
            fn date_epoch_roundtrip(z in -1_000_000i64..1_000_000) {
                let d = Date::from_days_from_epoch(z);
                prop_assert_eq!(d.days_from_epoch(), z);
                prop_assert!(Date::new(d.year(), d.month().number(), d.day()).is_some());
            }

            #[test]
            fn hours_until_is_antisymmetric(a in -200_000i64..200_000, b in -200_000i64..200_000) {
                let da = Date::from_days_from_epoch(a);
                let db = Date::from_days_from_epoch(b);
                prop_assert_eq!(da.hours_until(db).get(), -(db.hours_until(da).get()));
                prop_assert_eq!(da.hours_until(db).get(), (b - a) as f64 * 24.0);
            }

            #[test]
            fn window_months_cover_every_event_date(
                start in 10_000i64..20_000,
                len_days in 1i64..2_000,
                offset_frac in 0.0f64..1.0,
            ) {
                let s = Date::from_days_from_epoch(start);
                let e = Date::from_days_from_epoch(start + len_days);
                let w = ObservationWindow::new(s, e).expect("end after start");
                let months = w.months();
                prop_assert!(!months.is_empty());
                // Consecutive months, no gaps.
                for pair in months.windows(2) {
                    let (y0, m0) = pair[0];
                    let (y1, m1) = pair[1];
                    if m0.number() == 12 {
                        prop_assert_eq!((y1, m1.number()), (y0 + 1, 1));
                    } else {
                        prop_assert_eq!((y1, m1.number()), (y0, m0.number() + 1));
                    }
                }
                // Any in-window offset maps to a listed month.
                let offset = Hours::new(w.duration().get() * offset_frac * 0.999_999);
                let date = w.date_of(offset);
                prop_assert!(
                    months.contains(&date.year_month()),
                    "{date} not covered by {months:?}"
                );
            }
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(Hours::new(1.5).to_string(), "1.50 h");
        assert_eq!(Date::new(2012, 1, 7).unwrap().to_string(), "2012-01-07");
        assert_eq!(Month::new(3).unwrap().to_string(), "Mar");
        let w = ObservationWindow::new(
            Date::new(2012, 1, 7).unwrap(),
            Date::new(2013, 8, 1).unwrap(),
        )
        .unwrap();
        assert_eq!(w.to_string(), "[2012-01-07 .. 2013-08-01)");
    }
}
