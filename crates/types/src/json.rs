//! A minimal JSON document model with deterministic rendering.
//!
//! The workspace has no JSON serialization dependency, so structured
//! output (NDJSON alerts, `failctl --format json` report sections) is
//! built by hand. This module centralizes the rules so every producer
//! agrees byte for byte:
//!
//! * object keys keep **insertion order** — no hashing, no sorting
//!   surprises, identical output on every run and at every thread
//!   count;
//! * finite numbers render via `f64`'s `Display` (which round-trips);
//!   non-finite values degrade to `null` since JSON has no NaN/Inf;
//! * strings are escaped exactly like [`crate::Alert::to_ndjson`]
//!   lines.

use std::fmt;

/// A JSON document: the value produced by report sections and consumed
/// by `--format json`.
///
/// # Examples
///
/// ```
/// use failtypes::JsonValue;
///
/// let doc = JsonValue::object()
///     .field("name", "tbf")
///     .field("mtbf_hours", 15.3)
///     .field("failures", 897usize)
///     .field("note", JsonValue::Null)
///     .build();
/// assert_eq!(
///     doc.render(),
///     r#"{"name":"tbf","mtbf_hours":15.3,"failures":897,"note":null}"#
/// );
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (counts, indices); renders without a decimal point.
    Int(i64),
    /// A floating-point number; non-finite values render as `null`.
    Num(f64),
    /// A string; escaped on render.
    Str(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object with keys in insertion order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Starts building an [`JsonValue::Object`] with ordered keys.
    pub fn object() -> JsonObjectBuilder {
        JsonObjectBuilder { pairs: Vec::new() }
    }

    /// Parses one JSON document (the inverse of [`JsonValue::render`]).
    ///
    /// Numbers without a fraction or exponent that fit an `i64` parse
    /// as [`JsonValue::Int`]; everything else numeric parses as
    /// [`JsonValue::Num`]. Object keys keep input order. Trailing
    /// whitespace is allowed, trailing content is not — a whole NDJSON
    /// line is exactly one document.
    ///
    /// ```
    /// use failtypes::JsonValue;
    ///
    /// let doc = JsonValue::parse(r#"{"v":1,"cmd":"report"}"#).unwrap();
    /// assert_eq!(doc.get("v").and_then(JsonValue::as_i64), Some(1));
    /// assert_eq!(doc.get("cmd").and_then(JsonValue::as_str), Some("report"));
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a message naming the byte offset of the first syntax
    /// error.
    pub fn parse(s: &str) -> Result<JsonValue, JsonParseError> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing content after the document"));
        }
        Ok(value)
    }

    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => {
                pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload: an [`JsonValue::Int`], or a
    /// [`JsonValue::Num`] that is exactly integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Int(i) => Some(*i),
            JsonValue::Num(x) if x.fract() == 0.0 && x.abs() < 9e15 => Some(*x as i64),
            _ => None,
        }
    }

    /// The numeric payload as `f64` (ints widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(i) => Some(*i as f64),
            JsonValue::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs in input order, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Builds a [`JsonValue::Array`] from anything convertible to
    /// values.
    pub fn array<T: Into<JsonValue>>(items: impl IntoIterator<Item = T>) -> JsonValue {
        JsonValue::Array(items.into_iter().map(Into::into).collect())
    }

    /// Renders the value as compact JSON (no whitespace, single line
    /// for any input free of embedded newlines — and strings escape
    /// theirs).
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(128);
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => {
                use fmt::Write as _;
                let _ = write!(out, "{i}");
            }
            JsonValue::Num(x) => push_json_number(out, *x),
            JsonValue::Str(s) => {
                out.push('"');
                push_json_escaped(out, s);
                out.push('"');
            }
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    push_json_escaped(out, key);
                    out.push_str("\":");
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

impl From<i64> for JsonValue {
    fn from(i: i64) -> Self {
        JsonValue::Int(i)
    }
}

impl From<i32> for JsonValue {
    fn from(i: i32) -> Self {
        JsonValue::Int(i64::from(i))
    }
}

impl From<u8> for JsonValue {
    fn from(i: u8) -> Self {
        JsonValue::Int(i64::from(i))
    }
}

impl From<u32> for JsonValue {
    fn from(i: u32) -> Self {
        JsonValue::Int(i64::from(i))
    }
}

impl From<u64> for JsonValue {
    fn from(i: u64) -> Self {
        JsonValue::Int(i as i64)
    }
}

impl From<usize> for JsonValue {
    fn from(i: usize) -> Self {
        JsonValue::Int(i as i64)
    }
}

impl From<f64> for JsonValue {
    fn from(x: f64) -> Self {
        JsonValue::Num(x)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_owned())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::Str(s)
    }
}

impl<T: Into<JsonValue>> From<Option<T>> for JsonValue {
    fn from(opt: Option<T>) -> Self {
        opt.map_or(JsonValue::Null, Into::into)
    }
}

impl From<Vec<JsonValue>> for JsonValue {
    fn from(items: Vec<JsonValue>) -> Self {
        JsonValue::Array(items)
    }
}

/// Chainable builder for [`JsonValue::Object`]; keys render in the
/// order `field` was called.
#[derive(Debug, Clone)]
pub struct JsonObjectBuilder {
    pairs: Vec<(String, JsonValue)>,
}

impl JsonObjectBuilder {
    /// Appends one key/value pair.
    pub fn field(mut self, key: impl Into<String>, value: impl Into<JsonValue>) -> Self {
        self.pairs.push((key.into(), value.into()));
        self
    }

    /// Finishes the object.
    pub fn build(self) -> JsonValue {
        JsonValue::Object(self.pairs)
    }
}

/// Error raised by [`JsonValue::parse`]: a description plus the byte
/// offset where parsing stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    message: String,
    offset: usize,
}

impl JsonParseError {
    /// The byte offset in the input where the error was detected.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonParseError {
        JsonParseError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonParseError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected character `{}`", other as char))),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(byte) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            match byte {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.hex4()?;
                            // Surrogate pairs arrive as two \uXXXX units.
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                if !(self.peek() == Some(b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u'))
                                {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.err("invalid code point"))?
                            } else {
                                char::from_u32(unit)
                                    .ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(
                                self.err(format!("unknown escape `\\{}`", other as char))
                            )
                        }
                    }
                }
                _ => {
                    // Consume one whole UTF-8 scalar (input is &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let unit =
            u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(unit)
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(byte) = self.peek() {
            match byte {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII");
        if integral {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(JsonValue::Int(i));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}

/// Writes a finite f64 as a JSON number (`{}` on f64 round-trips);
/// non-finite values degrade to `null` since JSON has no NaN/Inf.
pub(crate) fn push_json_number(out: &mut String, x: f64) {
    if x.is_finite() {
        use fmt::Write as _;
        let _ = write!(out, "{x}");
    } else {
        out.push_str("null");
    }
}

/// Appends `s` with JSON string escaping.
pub(crate) fn push_json_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(JsonValue::Null.render(), "null");
        assert_eq!(JsonValue::from(true).render(), "true");
        assert_eq!(JsonValue::from(false).render(), "false");
        assert_eq!(JsonValue::from(42usize).render(), "42");
        assert_eq!(JsonValue::from(-7i64).render(), "-7");
        assert_eq!(JsonValue::from(1.5).render(), "1.5");
        assert_eq!(JsonValue::from("hi").render(), "\"hi\"");
    }

    #[test]
    fn floats_round_trip_and_non_finite_is_null() {
        for x in [0.1, 1e-9, 12345.6789, 1e300, -0.0] {
            let rendered = JsonValue::from(x).render();
            assert_eq!(rendered.parse::<f64>().unwrap().to_bits(), x.to_bits());
        }
        assert_eq!(JsonValue::from(f64::NAN).render(), "null");
        assert_eq!(JsonValue::from(f64::INFINITY).render(), "null");
        // Integral floats drop the fraction under Display — still a
        // valid JSON number.
        assert_eq!(JsonValue::from(3.0).render(), "3");
    }

    #[test]
    fn options_map_to_null() {
        assert_eq!(JsonValue::from(None::<f64>).render(), "null");
        assert_eq!(JsonValue::from(Some(2.5)).render(), "2.5");
    }

    #[test]
    fn objects_keep_insertion_order() {
        let doc = JsonValue::object()
            .field("z", 1usize)
            .field("a", 2usize)
            .field("m", JsonValue::array([1usize, 2, 3]))
            .build();
        assert_eq!(doc.render(), r#"{"z":1,"a":2,"m":[1,2,3]}"#);
        assert_eq!(doc.to_string(), doc.render());
    }

    #[test]
    fn strings_escape_like_ndjson() {
        let doc = JsonValue::from("a\"b\\c\nd\u{1}e");
        assert_eq!(doc.render(), "\"a\\\"b\\\\c\\nd\\u0001e\"");
    }

    #[test]
    fn nested_arrays_and_objects() {
        let doc = JsonValue::array([
            JsonValue::object().field("k", "v").build(),
            JsonValue::Null,
        ]);
        assert_eq!(doc.render(), r#"[{"k":"v"},null]"#);
    }

    #[test]
    fn parse_round_trips_rendered_documents() {
        let docs = [
            r#"{"v":1,"id":7,"cmd":"report","sections":["header","metrics"]}"#,
            r#"[1,-2,3.5,true,false,null,"x"]"#,
            r#"{"nested":{"a":[{"b":null}]},"t":"a\"b\\c\nd"}"#,
            "42",
            "\"lone\"",
        ];
        for doc in docs {
            let parsed = JsonValue::parse(doc).unwrap();
            assert_eq!(parsed.render(), doc, "round trip of {doc}");
        }
    }

    #[test]
    fn parse_accepts_whitespace_and_preserves_key_order() {
        let parsed = JsonValue::parse(" { \"z\" : 1 ,\n\t\"a\" : [ 2 , 3 ] } ").unwrap();
        assert_eq!(parsed.render(), r#"{"z":1,"a":[2,3]}"#);
    }

    #[test]
    fn parse_number_types() {
        assert_eq!(JsonValue::parse("12").unwrap(), JsonValue::Int(12));
        assert_eq!(JsonValue::parse("-3").unwrap(), JsonValue::Int(-3));
        assert_eq!(JsonValue::parse("1.5").unwrap(), JsonValue::Num(1.5));
        assert_eq!(JsonValue::parse("1e3").unwrap(), JsonValue::Num(1000.0));
        // Too big for i64 falls back to f64 rather than erroring.
        assert!(matches!(
            JsonValue::parse("99999999999999999999").unwrap(),
            JsonValue::Num(_)
        ));
    }

    #[test]
    fn parse_string_escapes() {
        let parsed = JsonValue::parse(r#""a\"b\\c\/d\n\t\r\b\fAé""#).unwrap();
        assert_eq!(
            parsed,
            JsonValue::Str("a\"b\\c/d\n\t\r\u{8}\u{c}A\u{e9}".to_string())
        );
        // Surrogate pair → one astral scalar.
        let pair = JsonValue::parse(r#""😀""#).unwrap();
        assert_eq!(pair, JsonValue::Str("\u{1f600}".to_string()));
    }

    #[test]
    fn parse_accessors() {
        let doc = JsonValue::parse(
            r#"{"v":1,"ok":true,"n":2.5,"rows":[{"id":"header"}],"name":"t2"}"#,
        )
        .unwrap();
        assert_eq!(doc.get("v").and_then(JsonValue::as_i64), Some(1));
        assert_eq!(doc.get("ok").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(doc.get("n").and_then(JsonValue::as_f64), Some(2.5));
        assert_eq!(doc.get("name").and_then(JsonValue::as_str), Some("t2"));
        let rows = doc.get("rows").and_then(JsonValue::as_array).unwrap();
        assert_eq!(rows[0].get("id").and_then(JsonValue::as_str), Some("header"));
        assert!(doc.get("missing").is_none());
        assert!(doc.as_object().is_some());
        assert!(rows[0].as_array().is_none());
    }

    #[test]
    fn parse_errors_carry_offsets() {
        for (doc, what) in [
            ("", "unexpected end"),
            ("{", "expected `\"`"),
            (r#"{"a":1,}"#, "expected `\"`"),
            (r#"{"a" 1}"#, "expected `:`"),
            ("[1 2]", "expected `,` or `]`"),
            ("tru", "expected `true`"),
            ("\"unterminated", "unterminated string"),
            (r#""\q""#, "unknown escape"),
            (r#""\ud800x""#, "unpaired surrogate"),
            ("1 2", "trailing content"),
            ("nullx", "trailing content"),
        ] {
            let err = JsonValue::parse(doc).unwrap_err();
            assert!(
                err.to_string().contains(what),
                "{doc:?} gave {err} (wanted {what})"
            );
            assert!(err.offset() <= doc.len());
        }
    }
}
