//! A minimal JSON document model with deterministic rendering.
//!
//! The workspace has no JSON serialization dependency, so structured
//! output (NDJSON alerts, `failctl --format json` report sections) is
//! built by hand. This module centralizes the rules so every producer
//! agrees byte for byte:
//!
//! * object keys keep **insertion order** — no hashing, no sorting
//!   surprises, identical output on every run and at every thread
//!   count;
//! * finite numbers render via `f64`'s `Display` (which round-trips);
//!   non-finite values degrade to `null` since JSON has no NaN/Inf;
//! * strings are escaped exactly like [`crate::Alert::to_ndjson`]
//!   lines.

use std::fmt;

/// A JSON document: the value produced by report sections and consumed
/// by `--format json`.
///
/// # Examples
///
/// ```
/// use failtypes::JsonValue;
///
/// let doc = JsonValue::object()
///     .field("name", "tbf")
///     .field("mtbf_hours", 15.3)
///     .field("failures", 897usize)
///     .field("note", JsonValue::Null)
///     .build();
/// assert_eq!(
///     doc.render(),
///     r#"{"name":"tbf","mtbf_hours":15.3,"failures":897,"note":null}"#
/// );
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (counts, indices); renders without a decimal point.
    Int(i64),
    /// A floating-point number; non-finite values render as `null`.
    Num(f64),
    /// A string; escaped on render.
    Str(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object with keys in insertion order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Starts building an [`JsonValue::Object`] with ordered keys.
    pub fn object() -> JsonObjectBuilder {
        JsonObjectBuilder { pairs: Vec::new() }
    }

    /// Builds a [`JsonValue::Array`] from anything convertible to
    /// values.
    pub fn array<T: Into<JsonValue>>(items: impl IntoIterator<Item = T>) -> JsonValue {
        JsonValue::Array(items.into_iter().map(Into::into).collect())
    }

    /// Renders the value as compact JSON (no whitespace, single line
    /// for any input free of embedded newlines — and strings escape
    /// theirs).
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(128);
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => {
                use fmt::Write as _;
                let _ = write!(out, "{i}");
            }
            JsonValue::Num(x) => push_json_number(out, *x),
            JsonValue::Str(s) => {
                out.push('"');
                push_json_escaped(out, s);
                out.push('"');
            }
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    push_json_escaped(out, key);
                    out.push_str("\":");
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

impl From<i64> for JsonValue {
    fn from(i: i64) -> Self {
        JsonValue::Int(i)
    }
}

impl From<i32> for JsonValue {
    fn from(i: i32) -> Self {
        JsonValue::Int(i64::from(i))
    }
}

impl From<u8> for JsonValue {
    fn from(i: u8) -> Self {
        JsonValue::Int(i64::from(i))
    }
}

impl From<u32> for JsonValue {
    fn from(i: u32) -> Self {
        JsonValue::Int(i64::from(i))
    }
}

impl From<u64> for JsonValue {
    fn from(i: u64) -> Self {
        JsonValue::Int(i as i64)
    }
}

impl From<usize> for JsonValue {
    fn from(i: usize) -> Self {
        JsonValue::Int(i as i64)
    }
}

impl From<f64> for JsonValue {
    fn from(x: f64) -> Self {
        JsonValue::Num(x)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_owned())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::Str(s)
    }
}

impl<T: Into<JsonValue>> From<Option<T>> for JsonValue {
    fn from(opt: Option<T>) -> Self {
        opt.map_or(JsonValue::Null, Into::into)
    }
}

impl From<Vec<JsonValue>> for JsonValue {
    fn from(items: Vec<JsonValue>) -> Self {
        JsonValue::Array(items)
    }
}

/// Chainable builder for [`JsonValue::Object`]; keys render in the
/// order `field` was called.
#[derive(Debug, Clone)]
pub struct JsonObjectBuilder {
    pairs: Vec<(String, JsonValue)>,
}

impl JsonObjectBuilder {
    /// Appends one key/value pair.
    pub fn field(mut self, key: impl Into<String>, value: impl Into<JsonValue>) -> Self {
        self.pairs.push((key.into(), value.into()));
        self
    }

    /// Finishes the object.
    pub fn build(self) -> JsonValue {
        JsonValue::Object(self.pairs)
    }
}

/// Writes a finite f64 as a JSON number (`{}` on f64 round-trips);
/// non-finite values degrade to `null` since JSON has no NaN/Inf.
pub(crate) fn push_json_number(out: &mut String, x: f64) {
    if x.is_finite() {
        use fmt::Write as _;
        let _ = write!(out, "{x}");
    } else {
        out.push_str("null");
    }
}

/// Appends `s` with JSON string escaping.
pub(crate) fn push_json_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(JsonValue::Null.render(), "null");
        assert_eq!(JsonValue::from(true).render(), "true");
        assert_eq!(JsonValue::from(false).render(), "false");
        assert_eq!(JsonValue::from(42usize).render(), "42");
        assert_eq!(JsonValue::from(-7i64).render(), "-7");
        assert_eq!(JsonValue::from(1.5).render(), "1.5");
        assert_eq!(JsonValue::from("hi").render(), "\"hi\"");
    }

    #[test]
    fn floats_round_trip_and_non_finite_is_null() {
        for x in [0.1, 1e-9, 12345.6789, 1e300, -0.0] {
            let rendered = JsonValue::from(x).render();
            assert_eq!(rendered.parse::<f64>().unwrap().to_bits(), x.to_bits());
        }
        assert_eq!(JsonValue::from(f64::NAN).render(), "null");
        assert_eq!(JsonValue::from(f64::INFINITY).render(), "null");
        // Integral floats drop the fraction under Display — still a
        // valid JSON number.
        assert_eq!(JsonValue::from(3.0).render(), "3");
    }

    #[test]
    fn options_map_to_null() {
        assert_eq!(JsonValue::from(None::<f64>).render(), "null");
        assert_eq!(JsonValue::from(Some(2.5)).render(), "2.5");
    }

    #[test]
    fn objects_keep_insertion_order() {
        let doc = JsonValue::object()
            .field("z", 1usize)
            .field("a", 2usize)
            .field("m", JsonValue::array([1usize, 2, 3]))
            .build();
        assert_eq!(doc.render(), r#"{"z":1,"a":2,"m":[1,2,3]}"#);
        assert_eq!(doc.to_string(), doc.render());
    }

    #[test]
    fn strings_escape_like_ndjson() {
        let doc = JsonValue::from("a\"b\\c\nd\u{1}e");
        assert_eq!(doc.render(), "\"a\\\"b\\\\c\\nd\\u0001e\"");
    }

    #[test]
    fn nested_arrays_and_objects() {
        let doc = JsonValue::array([
            JsonValue::object().field("k", "v").build(),
            JsonValue::Null,
        ]);
        assert_eq!(doc.render(), r#"[{"k":"v"},null]"#);
    }
}
