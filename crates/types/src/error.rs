//! Error types for the domain model, and the workspace-wide unified
//! [`Error`] enum every pipeline crate returns.

use std::error::Error as StdError;
use std::fmt;

/// Error returned when a category or root-locus label fails to parse.
///
/// ```
/// use failtypes::T2Category;
/// let err = "Quantum".parse::<T2Category>().unwrap_err();
/// assert!(err.to_string().contains("Quantum"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCategoryError {
    label: String,
}

impl ParseCategoryError {
    /// Creates an error recording the offending label.
    pub fn new(label: impl Into<String>) -> Self {
        ParseCategoryError {
            label: label.into(),
        }
    }

    /// Returns the label that failed to parse.
    pub fn label(&self) -> &str {
        &self.label
    }
}

impl fmt::Display for ParseCategoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown failure category label `{}`", self.label)
    }
}

impl StdError for ParseCategoryError {}

/// Error returned when building an invalid [`crate::SystemSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidSpecError {
    reason: &'static str,
}

impl InvalidSpecError {
    /// Creates an error with a static reason.
    pub const fn new(reason: &'static str) -> Self {
        InvalidSpecError { reason }
    }

    /// Returns the reason the specification was rejected.
    pub const fn reason(&self) -> &'static str {
        self.reason
    }
}

impl fmt::Display for InvalidSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid system specification: {}", self.reason)
    }
}

impl StdError for InvalidSpecError {}

/// Error returned when a [`crate::FailureRecord`] violates a log invariant.
#[derive(Debug, Clone, PartialEq)]
pub enum InvalidRecordError {
    /// The failure time is negative, non-finite, or outside the log window.
    TimeOutOfWindow {
        /// The offending offset in hours.
        offset: f64,
        /// The window length in hours.
        window: f64,
    },
    /// The time to recovery is negative or non-finite.
    InvalidTtr {
        /// The offending duration in hours.
        ttr: f64,
    },
    /// The record references a node outside the system.
    NodeOutOfRange {
        /// The offending node index.
        node: u32,
        /// The number of nodes in the system.
        nodes: u32,
    },
    /// The record references a GPU slot outside the node.
    SlotOutOfRange {
        /// The offending slot index.
        slot: u8,
        /// The number of GPU slots per node.
        slots: u8,
    },
    /// The record lists the same GPU slot twice.
    DuplicateSlot {
        /// The duplicated slot index.
        slot: u8,
    },
    /// The record carries GPU involvement but is not a GPU failure.
    UnexpectedGpuInvolvement,
    /// The record carries a software root locus but is not a software
    /// failure.
    UnexpectedSoftwareLocus,
    /// The record's category belongs to the other system.
    CategorySystemMismatch,
}

impl fmt::Display for InvalidRecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvalidRecordError::TimeOutOfWindow { offset, window } => write!(
                f,
                "failure time {offset} h lies outside the observation window of {window} h"
            ),
            InvalidRecordError::InvalidTtr { ttr } => {
                write!(f, "time to recovery {ttr} h is not a valid duration")
            }
            InvalidRecordError::NodeOutOfRange { node, nodes } => {
                write!(f, "node index {node} exceeds system size {nodes}")
            }
            InvalidRecordError::SlotOutOfRange { slot, slots } => {
                write!(f, "GPU slot {slot} exceeds {slots} GPUs per node")
            }
            InvalidRecordError::DuplicateSlot { slot } => {
                write!(f, "GPU slot {slot} listed more than once")
            }
            InvalidRecordError::UnexpectedGpuInvolvement => {
                write!(f, "non-GPU failure carries GPU involvement data")
            }
            InvalidRecordError::UnexpectedSoftwareLocus => {
                write!(f, "non-software failure carries a software root locus")
            }
            InvalidRecordError::CategorySystemMismatch => {
                write!(f, "failure category belongs to the other system generation")
            }
        }
    }
}

impl StdError for InvalidRecordError {}

/// Convenience alias used by every public fallible API in the
/// workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// The unified pipeline error: one source-chained enum covering log
/// serialization, simulation, streaming, configuration, and CLI
/// failures.
///
/// Row-level parse errors keep their 1-based line number (and the
/// offending column when attributable to one) so operators can find the
/// bad row; see [`Error::line`].
///
/// ```
/// use failtypes::Error;
/// let err = Error::row_field(9, "ttr_h", "not a number");
/// assert_eq!(err.line(), Some(9));
/// assert!(err.to_string().contains("line 9"));
/// assert!(err.to_string().contains("`ttr_h`"));
/// ```
#[derive(Debug)]
pub enum Error {
    /// An underlying I/O error, optionally tagged with what the
    /// pipeline was doing (e.g. `"writing log"`).
    Io {
        /// What the pipeline was doing, when known.
        context: Option<&'static str>,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A serialized log's header is missing or malformed.
    Header(String),
    /// A serialized log row is malformed; carries the 1-based line
    /// number, the offending column when known, and a description.
    Row {
        /// 1-based line number in the input.
        line: usize,
        /// Column name of the offending field, when attributable to one.
        field: Option<&'static str>,
        /// What was wrong.
        message: String,
    },
    /// A row parsed but its record violates an invariant (node out of
    /// range, time outside the window, ...); carries the 1-based line
    /// number so the operator can find the row.
    InvalidRow {
        /// 1-based line number in the input.
        line: usize,
        /// The violated invariant.
        error: InvalidRecordError,
    },
    /// Records parsed (or were generated) individually but the
    /// assembled log violates an invariant.
    Invalid(InvalidRecordError),
    /// A configuration value was rejected by a validating builder.
    Config {
        /// Which configuration was being built (e.g. `"watch state"`).
        target: &'static str,
        /// Why the value was rejected.
        reason: String,
    },
    /// Command-line arguments failed to parse.
    Args(String),
    /// A command ran but failed.
    Run(String),
    /// Any other failure, wrapped with a static description of the
    /// operation that raised it.
    Other {
        /// What the pipeline was doing.
        context: &'static str,
        /// The underlying error.
        source: Box<dyn StdError + Send + Sync>,
    },
}

impl Error {
    /// An I/O error tagged with the operation that raised it.
    pub fn io(context: &'static str, source: std::io::Error) -> Self {
        Error::Io {
            context: Some(context),
            source,
        }
    }

    /// A malformed-header error.
    pub fn header(message: impl Into<String>) -> Self {
        Error::Header(message.into())
    }

    /// A malformed-row error without a specific field.
    pub fn row(line: usize, message: impl Into<String>) -> Self {
        Error::Row {
            line,
            field: None,
            message: message.into(),
        }
    }

    /// A malformed-row error pointing at one named field.
    pub fn row_field(line: usize, field: &'static str, message: impl Into<String>) -> Self {
        Error::Row {
            line,
            field: Some(field),
            message: message.into(),
        }
    }

    /// An invariant violation attributable to one row.
    pub fn invalid_row(line: usize, error: InvalidRecordError) -> Self {
        Error::InvalidRow { line, error }
    }

    /// A rejected configuration value.
    pub fn config(target: &'static str, reason: impl Into<String>) -> Self {
        Error::Config {
            target,
            reason: reason.into(),
        }
    }

    /// An argument-parsing error.
    pub fn args(message: impl Into<String>) -> Self {
        Error::Args(message.into())
    }

    /// A command failure.
    pub fn run(message: impl Into<String>) -> Self {
        Error::Run(message.into())
    }

    /// Wraps any other error with a static operation description.
    pub fn other(
        context: &'static str,
        source: impl StdError + Send + Sync + 'static,
    ) -> Self {
        Error::Other {
            context,
            source: Box::new(source),
        }
    }

    /// The 1-based line number the error points at, when it is
    /// attributable to a specific row.
    pub fn line(&self) -> Option<usize> {
        match self {
            Error::Row { line, .. } | Error::InvalidRow { line, .. } => Some(*line),
            _ => None,
        }
    }

    /// A stable machine-readable tag naming the error variant, used by
    /// the `faild` protocol's typed error envelope
    /// (`{"error":{"kind":...,"message":...}}`).
    pub fn kind(&self) -> &'static str {
        match self {
            Error::Io { .. } => "io",
            Error::Header(_) => "header",
            Error::Row { .. } => "row",
            Error::InvalidRow { .. } => "invalid_row",
            Error::Invalid(_) => "invalid",
            Error::Config { .. } => "config",
            Error::Args(_) => "args",
            Error::Run(_) => "run",
            Error::Other { .. } => "other",
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io {
                context: Some(context),
                source,
            } => write!(f, "i/o error while {context}: {source}"),
            Error::Io {
                context: None,
                source,
            } => write!(f, "i/o error: {source}"),
            Error::Header(msg) => write!(f, "malformed log header: {msg}"),
            Error::Row {
                line,
                field: Some(field),
                message,
            } => write!(f, "malformed log row at line {line}, field `{field}`: {message}"),
            Error::Row {
                line,
                field: None,
                message,
            } => write!(f, "malformed log row at line {line}: {message}"),
            Error::InvalidRow { line, error } => {
                write!(f, "invalid record at line {line}: {error}")
            }
            Error::Invalid(e) => write!(f, "log violates an invariant: {e}"),
            Error::Config { target, reason } => {
                write!(f, "invalid {target} configuration: {reason}")
            }
            Error::Args(msg) => write!(f, "{msg}"),
            Error::Run(msg) => write!(f, "{msg}"),
            Error::Other { context, source } => write!(f, "{context}: {source}"),
        }
    }
}

impl StdError for Error {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            Error::Io { source, .. } => Some(source),
            Error::Invalid(e) => Some(e),
            Error::InvalidRow { error, .. } => Some(error),
            Error::Other { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io {
            context: None,
            source: e,
        }
    }
}

impl From<InvalidRecordError> for Error {
    fn from(e: InvalidRecordError) -> Self {
        Error::Invalid(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_error_reports_label() {
        let e = ParseCategoryError::new("Foo");
        assert_eq!(e.label(), "Foo");
        assert_eq!(e.to_string(), "unknown failure category label `Foo`");
    }

    #[test]
    fn spec_error_reports_reason() {
        let e = InvalidSpecError::new("nope");
        assert_eq!(e.reason(), "nope");
        assert!(e.to_string().contains("nope"));
    }

    #[test]
    fn record_error_messages_are_specific() {
        let cases: Vec<(InvalidRecordError, &str)> = vec![
            (
                InvalidRecordError::TimeOutOfWindow {
                    offset: -1.0,
                    window: 100.0,
                },
                "outside",
            ),
            (InvalidRecordError::InvalidTtr { ttr: -3.0 }, "recovery"),
            (
                InvalidRecordError::NodeOutOfRange {
                    node: 9,
                    nodes: 5,
                },
                "node index",
            ),
            (
                InvalidRecordError::SlotOutOfRange { slot: 7, slots: 4 },
                "slot",
            ),
            (InvalidRecordError::DuplicateSlot { slot: 1 }, "more than once"),
            (InvalidRecordError::UnexpectedGpuInvolvement, "non-GPU"),
            (InvalidRecordError::UnexpectedSoftwareLocus, "non-software"),
            (InvalidRecordError::CategorySystemMismatch, "other system"),
        ];
        for (err, needle) in cases {
            assert!(
                err.to_string().contains(needle),
                "{err} should mention {needle}"
            );
        }
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: StdError + Send + Sync + 'static>() {}
        assert_err::<ParseCategoryError>();
        assert_err::<InvalidSpecError>();
        assert_err::<InvalidRecordError>();
        assert_err::<Error>();
    }

    #[test]
    fn unified_error_display_strings() {
        let io = std::io::Error::other("disk full");
        assert_eq!(
            Error::io("writing log", io).to_string(),
            "i/o error while writing log: disk full"
        );
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        assert_eq!(Error::from(io).to_string(), "i/o error: gone");
        assert_eq!(
            Error::header("no version").to_string(),
            "malformed log header: no version"
        );
        assert_eq!(
            Error::row(7, "bad field").to_string(),
            "malformed log row at line 7: bad field"
        );
        assert_eq!(
            Error::row_field(9, "ttr_h", "not a number").to_string(),
            "malformed log row at line 9, field `ttr_h`: not a number"
        );
        assert_eq!(
            Error::invalid_row(12, InvalidRecordError::CategorySystemMismatch).to_string(),
            "invalid record at line 12: failure category belongs to the other system generation"
        );
        assert_eq!(
            Error::from(InvalidRecordError::UnexpectedGpuInvolvement).to_string(),
            "log violates an invariant: non-GPU failure carries GPU involvement data"
        );
        assert_eq!(
            Error::config("watch state", "window must be at least 1").to_string(),
            "invalid watch state configuration: window must be at least 1"
        );
        assert_eq!(Error::args("unknown flag --x").to_string(), "unknown flag --x");
        assert_eq!(Error::run("boom").to_string(), "boom");
        assert_eq!(
            Error::other("stream state error", InvalidSpecError::new("nope")).to_string(),
            "stream state error: invalid system specification: nope"
        );
    }

    #[test]
    fn unified_error_line_and_source() {
        assert_eq!(Error::row(7, "x").line(), Some(7));
        assert_eq!(
            Error::invalid_row(3, InvalidRecordError::DuplicateSlot { slot: 1 }).line(),
            Some(3)
        );
        assert_eq!(Error::header("x").line(), None);
        assert_eq!(Error::run("x").line(), None);

        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        assert!(Error::from(io).source().is_some());
        assert!(Error::from(InvalidRecordError::CategorySystemMismatch)
            .source()
            .is_some());
        assert!(Error::invalid_row(1, InvalidRecordError::CategorySystemMismatch)
            .source()
            .is_some());
        assert!(Error::other("ctx", InvalidSpecError::new("nope"))
            .source()
            .is_some());
        assert!(Error::header("x").source().is_none());
        assert!(Error::args("x").source().is_none());
    }
}
