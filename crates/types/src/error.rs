//! Error types for the domain model.

use std::error::Error;
use std::fmt;

/// Error returned when a category or root-locus label fails to parse.
///
/// ```
/// use failtypes::T2Category;
/// let err = "Quantum".parse::<T2Category>().unwrap_err();
/// assert!(err.to_string().contains("Quantum"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCategoryError {
    label: String,
}

impl ParseCategoryError {
    /// Creates an error recording the offending label.
    pub fn new(label: impl Into<String>) -> Self {
        ParseCategoryError {
            label: label.into(),
        }
    }

    /// Returns the label that failed to parse.
    pub fn label(&self) -> &str {
        &self.label
    }
}

impl fmt::Display for ParseCategoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown failure category label `{}`", self.label)
    }
}

impl Error for ParseCategoryError {}

/// Error returned when building an invalid [`crate::SystemSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidSpecError {
    reason: &'static str,
}

impl InvalidSpecError {
    /// Creates an error with a static reason.
    pub const fn new(reason: &'static str) -> Self {
        InvalidSpecError { reason }
    }

    /// Returns the reason the specification was rejected.
    pub const fn reason(&self) -> &'static str {
        self.reason
    }
}

impl fmt::Display for InvalidSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid system specification: {}", self.reason)
    }
}

impl Error for InvalidSpecError {}

/// Error returned when a [`crate::FailureRecord`] violates a log invariant.
#[derive(Debug, Clone, PartialEq)]
pub enum InvalidRecordError {
    /// The failure time is negative, non-finite, or outside the log window.
    TimeOutOfWindow {
        /// The offending offset in hours.
        offset: f64,
        /// The window length in hours.
        window: f64,
    },
    /// The time to recovery is negative or non-finite.
    InvalidTtr {
        /// The offending duration in hours.
        ttr: f64,
    },
    /// The record references a node outside the system.
    NodeOutOfRange {
        /// The offending node index.
        node: u32,
        /// The number of nodes in the system.
        nodes: u32,
    },
    /// The record references a GPU slot outside the node.
    SlotOutOfRange {
        /// The offending slot index.
        slot: u8,
        /// The number of GPU slots per node.
        slots: u8,
    },
    /// The record lists the same GPU slot twice.
    DuplicateSlot {
        /// The duplicated slot index.
        slot: u8,
    },
    /// The record carries GPU involvement but is not a GPU failure.
    UnexpectedGpuInvolvement,
    /// The record carries a software root locus but is not a software
    /// failure.
    UnexpectedSoftwareLocus,
    /// The record's category belongs to the other system.
    CategorySystemMismatch,
}

impl fmt::Display for InvalidRecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvalidRecordError::TimeOutOfWindow { offset, window } => write!(
                f,
                "failure time {offset} h lies outside the observation window of {window} h"
            ),
            InvalidRecordError::InvalidTtr { ttr } => {
                write!(f, "time to recovery {ttr} h is not a valid duration")
            }
            InvalidRecordError::NodeOutOfRange { node, nodes } => {
                write!(f, "node index {node} exceeds system size {nodes}")
            }
            InvalidRecordError::SlotOutOfRange { slot, slots } => {
                write!(f, "GPU slot {slot} exceeds {slots} GPUs per node")
            }
            InvalidRecordError::DuplicateSlot { slot } => {
                write!(f, "GPU slot {slot} listed more than once")
            }
            InvalidRecordError::UnexpectedGpuInvolvement => {
                write!(f, "non-GPU failure carries GPU involvement data")
            }
            InvalidRecordError::UnexpectedSoftwareLocus => {
                write!(f, "non-software failure carries a software root locus")
            }
            InvalidRecordError::CategorySystemMismatch => {
                write!(f, "failure category belongs to the other system generation")
            }
        }
    }
}

impl Error for InvalidRecordError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_error_reports_label() {
        let e = ParseCategoryError::new("Foo");
        assert_eq!(e.label(), "Foo");
        assert_eq!(e.to_string(), "unknown failure category label `Foo`");
    }

    #[test]
    fn spec_error_reports_reason() {
        let e = InvalidSpecError::new("nope");
        assert_eq!(e.reason(), "nope");
        assert!(e.to_string().contains("nope"));
    }

    #[test]
    fn record_error_messages_are_specific() {
        let cases: Vec<(InvalidRecordError, &str)> = vec![
            (
                InvalidRecordError::TimeOutOfWindow {
                    offset: -1.0,
                    window: 100.0,
                },
                "outside",
            ),
            (InvalidRecordError::InvalidTtr { ttr: -3.0 }, "recovery"),
            (
                InvalidRecordError::NodeOutOfRange {
                    node: 9,
                    nodes: 5,
                },
                "node index",
            ),
            (
                InvalidRecordError::SlotOutOfRange { slot: 7, slots: 4 },
                "slot",
            ),
            (InvalidRecordError::DuplicateSlot { slot: 1 }, "more than once"),
            (InvalidRecordError::UnexpectedGpuInvolvement, "non-GPU"),
            (InvalidRecordError::UnexpectedSoftwareLocus, "non-software"),
            (InvalidRecordError::CategorySystemMismatch, "other system"),
        ];
        for (err, needle) in cases {
            assert!(
                err.to_string().contains(needle),
                "{err} should mention {needle}"
            );
        }
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<ParseCategoryError>();
        assert_err::<InvalidSpecError>();
        assert_err::<InvalidRecordError>();
    }
}
