//! Domain model for analyzing failures and repairs on supercomputers with
//! multi-GPU compute nodes.
//!
//! This crate is the vocabulary shared by the whole `failscope` workspace,
//! which reproduces the DSN 2021 field study *"Examining Failures and
//! Repairs on Supercomputers with Multi-GPU Compute Nodes"* (Taherin et al.)
//! on the Tsubame-2 and Tsubame-3 systems:
//!
//! * [`SystemSpec`] / [`Generation`] — the node and system architecture of
//!   the two studied machines (Table I), plus a builder for hypothetical
//!   systems used in what-if studies.
//! * [`T2Category`] / [`T3Category`] / [`Category`] — the failure category
//!   vocabularies of the two logs (Table II), mapped onto shared
//!   [`ComponentClass`] and [`Domain`] axes.
//! * [`SoftwareLocus`] — the root loci of Tsubame-3 software failures
//!   (Fig. 3).
//! * [`FailureRecord`] / [`FailureLog`] — validated failure events with
//!   occurrence time, time to recovery, affected node, and GPU involvement.
//! * [`Hours`], [`Date`], [`ObservationWindow`] — the time model.
//!
//! # Examples
//!
//! Build a tiny log and inspect it:
//!
//! ```
//! use failtypes::{
//!     Category, Date, FailureLog, FailureRecord, Generation, GpuSlot, Hours,
//!     NodeId, ObservationWindow, T3Category,
//! };
//!
//! let window = ObservationWindow::new(
//!     Date::new(2017, 5, 9).unwrap(),
//!     Date::new(2020, 2, 22).unwrap(),
//! )
//! .unwrap();
//!
//! let records = vec![
//!     FailureRecord::new(
//!         0,
//!         Hours::new(100.0),
//!         Hours::new(55.0),
//!         Category::T3(T3Category::Gpu),
//!         NodeId::new(42),
//!     )
//!     .with_gpus([GpuSlot::new(0), GpuSlot::new(3)]),
//! ];
//!
//! let log = FailureLog::new(Generation::Tsubame3, window, records)?;
//! assert_eq!(log.gpu_records().count(), 1);
//! assert!(log.records()[0].is_multi_gpu());
//! # Ok::<(), failtypes::InvalidRecordError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

mod category;
mod error;
mod json;
mod record;
mod software;
mod stream;
mod system;
mod time;

pub use category::{Category, ComponentClass, Domain, T2Category, T3Category};
pub use error::{Error, InvalidRecordError, InvalidSpecError, ParseCategoryError, Result};
pub use json::{JsonObjectBuilder, JsonParseError, JsonValue};
pub use record::{FailureLog, FailureRecord};
pub use software::SoftwareLocus;
pub use stream::{Alert, AlertKind, AlertSeverity, StreamEvent};
pub use system::{Generation, GpuSlot, NodeId, RackId, SystemSpec, SystemSpecBuilder};
pub use time::{days_in_month, is_leap_year, Date, Hours, Month, ObservationWindow};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FailureLog>();
        assert_send_sync::<FailureRecord>();
        assert_send_sync::<SystemSpec>();
        assert_send_sync::<Category>();
        assert_send_sync::<ObservationWindow>();
    }

    #[test]
    fn observation_windows_of_the_paper() {
        // Dataset section: Tsubame-2 log covers 2012-01-07 .. 2013-08-01,
        // Tsubame-3 log covers 2017-05-09 .. 2020-02-22.
        let t2 = ObservationWindow::new(
            Date::new(2012, 1, 7).unwrap(),
            Date::new(2013, 8, 1).unwrap(),
        )
        .unwrap();
        let t3 = ObservationWindow::new(
            Date::new(2017, 5, 9).unwrap(),
            Date::new(2020, 2, 22).unwrap(),
        )
        .unwrap();
        // 897 failures over 572 days gives the paper's ~15 h system MTBF;
        // 338 failures over 1019 days gives the ~72 h system MTBF.
        assert!((t2.duration().get() / 897.0 - 15.3).abs() < 0.1);
        assert!((t3.duration().get() / 338.0 - 72.35).abs() < 0.1);
    }
}
