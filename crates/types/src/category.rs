//! Failure category taxonomies (Table II of the paper).
//!
//! Tsubame-2 and Tsubame-3 use different category vocabularies, reflecting
//! different logging practices across the two generations. Both vocabularies
//! are modeled exactly as reported, and each category maps onto a shared
//! [`ComponentClass`] and [`Domain`] so that cross-system analyses (for
//! example the GPU/CPU MTBF comparison of RQ4) can operate uniformly.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

use crate::error::ParseCategoryError;

/// The broad hardware/software split used throughout the paper.
///
/// ```
/// use failtypes::{Domain, T3Category};
/// assert_eq!(T3Category::GpuDriver.domain(), Domain::Software);
/// assert_eq!(T3Category::Gpu.domain(), Domain::Hardware);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Domain {
    /// Failures whose root locus is a physical component.
    Hardware,
    /// Failures whose root locus is system or application software.
    Software,
    /// Failures the operators could not attribute to either domain.
    Unknown,
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Domain::Hardware => "hardware",
            Domain::Software => "software",
            Domain::Unknown => "unknown",
        })
    }
}

/// A system-agnostic component class.
///
/// Each per-system category maps onto exactly one class; analyses that
/// compare the two generations (GPU MTBF, CPU MTBF, ...) group by this
/// instead of by the raw category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ComponentClass {
    /// GPU accelerators (the paper's central component).
    Gpu,
    /// Host CPUs.
    Cpu,
    /// DRAM / main memory.
    Memory,
    /// Disks, SSDs, and parallel-filesystem hardware.
    Storage,
    /// InfiniBand, Omni-Path, Ethernet, and link-level errors.
    Network,
    /// Power supplies and power boards.
    Power,
    /// System boards, motherboards, and intra-node cabling.
    Board,
    /// Fans and other cooling hardware.
    Cooling,
    /// System software, drivers, schedulers, and services.
    Software,
    /// Whole-system or rack-level events that cannot be localized further.
    System,
    /// Everything else.
    Other,
}

impl ComponentClass {
    /// All classes, in a stable display order.
    pub const ALL: [ComponentClass; 11] = [
        ComponentClass::Gpu,
        ComponentClass::Cpu,
        ComponentClass::Memory,
        ComponentClass::Storage,
        ComponentClass::Network,
        ComponentClass::Power,
        ComponentClass::Board,
        ComponentClass::Cooling,
        ComponentClass::Software,
        ComponentClass::System,
        ComponentClass::Other,
    ];

    /// Returns a short human-readable label.
    pub const fn name(self) -> &'static str {
        match self {
            ComponentClass::Gpu => "GPU",
            ComponentClass::Cpu => "CPU",
            ComponentClass::Memory => "Memory",
            ComponentClass::Storage => "Storage",
            ComponentClass::Network => "Network",
            ComponentClass::Power => "Power",
            ComponentClass::Board => "Board",
            ComponentClass::Cooling => "Cooling",
            ComponentClass::Software => "Software",
            ComponentClass::System => "System",
            ComponentClass::Other => "Other",
        }
    }
}

impl fmt::Display for ComponentClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

macro_rules! categories {
    (
        $(#[$meta:meta])*
        $name:ident {
            $(
                $(#[$vmeta:meta])*
                $variant:ident => ($label:literal, $class:expr, $domain:expr)
            ),+ $(,)?
        }
    ) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub enum $name {
            $( $(#[$vmeta])* $variant, )+
        }

        impl $name {
            /// All categories of this system, in the order Table II lists
            /// them.
            pub const ALL: &'static [$name] = &[ $( $name::$variant, )+ ];

            /// Returns the label used in the failure logs.
            pub const fn label(self) -> &'static str {
                match self {
                    $( $name::$variant => $label, )+
                }
            }

            /// Returns the system-agnostic component class this category
            /// maps onto.
            pub const fn component_class(self) -> ComponentClass {
                match self {
                    $( $name::$variant => $class, )+
                }
            }

            /// Returns whether this is a hardware or a software category.
            pub const fn domain(self) -> Domain {
                match self {
                    $( $name::$variant => $domain, )+
                }
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(self.label())
            }
        }

        impl FromStr for $name {
            type Err = ParseCategoryError;

            fn from_str(s: &str) -> Result<Self, Self::Err> {
                match s {
                    $( $label => Ok($name::$variant), )+
                    _ => Err(ParseCategoryError::new(s)),
                }
            }
        }
    };
}

categories! {
    /// Failure categories reported in the Tsubame-2 log (Table II).
    ///
    /// ```
    /// use failtypes::{ComponentClass, T2Category};
    /// assert_eq!(T2Category::ALL.len(), 17);
    /// assert_eq!("GPU".parse::<T2Category>().unwrap(), T2Category::Gpu);
    /// assert_eq!(T2Category::Ssd.component_class(), ComponentClass::Storage);
    /// ```
    T2Category {
        /// Node failed to boot.
        Boot => ("Boot", ComponentClass::System, Domain::Software),
        /// Host CPU failure.
        Cpu => ("CPU", ComponentClass::Cpu, Domain::Hardware),
        /// Spinning-disk failure.
        Disk => ("Disk", ComponentClass::Storage, Domain::Hardware),
        /// Node found down without a more specific diagnosis.
        Down => ("Down", ComponentClass::System, Domain::Unknown),
        /// Cooling-fan failure.
        Fan => ("FAN", ComponentClass::Cooling, Domain::Hardware),
        /// GPU accelerator failure.
        Gpu => ("GPU", ComponentClass::Gpu, Domain::Hardware),
        /// InfiniBand adapter or link failure.
        Infiniband => ("IB", ComponentClass::Network, Domain::Hardware),
        /// DRAM failure.
        Memory => ("Memory", ComponentClass::Memory, Domain::Hardware),
        /// Ethernet / management-network failure.
        Network => ("Network", ComponentClass::Network, Domain::Hardware),
        /// Other hardware failure.
        OtherHw => ("OtherHW", ComponentClass::Other, Domain::Hardware),
        /// Other software failure.
        OtherSw => ("OtherSW", ComponentClass::Software, Domain::Software),
        /// Portable Batch System (job scheduler) failure.
        Pbs => ("PBS", ComponentClass::Software, Domain::Software),
        /// Power supply unit failure.
        Psu => ("PSU", ComponentClass::Power, Domain::Hardware),
        /// Rack-level failure.
        Rack => ("Rack", ComponentClass::System, Domain::Hardware),
        /// SSD failure.
        Ssd => ("SSD", ComponentClass::Storage, Domain::Hardware),
        /// System-board failure.
        SystemBoard => ("System Board", ComponentClass::Board, Domain::Hardware),
        /// Virtual-machine subsystem failure.
        Vm => ("VM", ComponentClass::Software, Domain::Software),
    }
}

categories! {
    /// Failure categories reported in the Tsubame-3 log (Table II).
    ///
    /// ```
    /// use failtypes::{ComponentClass, T3Category};
    /// assert_eq!(T3Category::ALL.len(), 16);
    /// assert_eq!(
    ///     "GPUDriver".parse::<T3Category>().unwrap(),
    ///     T3Category::GpuDriver,
    /// );
    /// assert_eq!(T3Category::OmniPath.component_class(), ComponentClass::Network);
    /// ```
    T3Category {
        /// Host CPU failure.
        Cpu => ("CPU", ComponentClass::Cpu, Domain::Hardware),
        /// Cyclic-redundancy-check (link-level) error.
        Crc => ("CRC", ComponentClass::Network, Domain::Hardware),
        /// Disk failure.
        Disk => ("Disk", ComponentClass::Storage, Domain::Hardware),
        /// GPU accelerator failure.
        Gpu => ("GPU", ComponentClass::Gpu, Domain::Hardware),
        /// GPU driver failure (reported separately from GPU hardware).
        GpuDriver => ("GPUDriver", ComponentClass::Software, Domain::Software),
        /// IP motherboard failure.
        IpMotherboard => ("IP", ComponentClass::Board, Domain::Hardware),
        /// LED front-panel failure.
        LedFrontPanel => ("Led Front Panel", ComponentClass::Other, Domain::Hardware),
        /// Lustre parallel-filesystem failure.
        Lustre => ("Lustre", ComponentClass::Software, Domain::Software),
        /// DRAM failure.
        Memory => ("Memory", ComponentClass::Memory, Domain::Hardware),
        /// Omni-Path fabric failure.
        OmniPath => ("Omni-Path", ComponentClass::Network, Domain::Hardware),
        /// Power-board failure.
        PowerBoard => ("Power-Board", ComponentClass::Power, Domain::Hardware),
        /// Ribbon-cable failure.
        RibbonCable => ("Ribbon Cable", ComponentClass::Board, Domain::Hardware),
        /// Software failure (broken down further in Fig. 3).
        Software => ("Software", ComponentClass::Software, Domain::Software),
        /// SXM2 cable failure.
        Sxm2Cable => ("SXM2_Cable", ComponentClass::Board, Domain::Hardware),
        /// SXM2 board failure.
        Sxm2Board => ("SXM2-Board", ComponentClass::Board, Domain::Hardware),
        /// Failure with unknown cause.
        Unknown => ("Unknown", ComponentClass::Other, Domain::Unknown),
    }
}

/// A failure category from either system.
///
/// [`crate::FailureRecord`] stores this unified form so that a single record
/// type serves both logs; analyses that need the per-system vocabulary match
/// on the variants.
///
/// # Examples
///
/// ```
/// use failtypes::{Category, ComponentClass, T2Category, T3Category};
///
/// let a = Category::from(T2Category::Gpu);
/// let b = Category::from(T3Category::Gpu);
/// assert_eq!(a.component_class(), b.component_class());
/// assert_eq!(a.component_class(), ComponentClass::Gpu);
/// assert_ne!(a, b); // same class, different systems
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Category {
    /// A Tsubame-2 category.
    T2(T2Category),
    /// A Tsubame-3 category.
    T3(T3Category),
}

impl Category {
    /// Returns the label used in the failure logs.
    pub const fn label(self) -> &'static str {
        match self {
            Category::T2(c) => c.label(),
            Category::T3(c) => c.label(),
        }
    }

    /// Returns the system-agnostic component class.
    pub const fn component_class(self) -> ComponentClass {
        match self {
            Category::T2(c) => c.component_class(),
            Category::T3(c) => c.component_class(),
        }
    }

    /// Returns the hardware/software domain.
    pub const fn domain(self) -> Domain {
        match self {
            Category::T2(c) => c.domain(),
            Category::T3(c) => c.domain(),
        }
    }

    /// Returns `true` when the category denotes a GPU hardware failure.
    pub fn is_gpu(self) -> bool {
        self.component_class() == ComponentClass::Gpu
    }

    /// Returns `true` when the category denotes a host CPU failure.
    pub fn is_cpu(self) -> bool {
        self.component_class() == ComponentClass::Cpu
    }

    /// Returns `true` for software-domain categories.
    pub fn is_software(self) -> bool {
        self.domain() == Domain::Software
    }
}

impl From<T2Category> for Category {
    fn from(c: T2Category) -> Self {
        Category::T2(c)
    }
}

impl From<T3Category> for Category {
    fn from(c: T3Category) -> Self {
        Category::T3(c)
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_counts() {
        // Table II lists 17 Tsubame-2 and 16 Tsubame-3 categories.
        assert_eq!(T2Category::ALL.len(), 17);
        assert_eq!(T3Category::ALL.len(), 16);
    }

    #[test]
    fn labels_are_unique_and_parse_back() {
        let mut seen = std::collections::HashSet::new();
        for &c in T2Category::ALL {
            assert!(seen.insert(c.label()), "duplicate label {}", c.label());
            assert_eq!(c.label().parse::<T2Category>().unwrap(), c);
        }
        seen.clear();
        for &c in T3Category::ALL {
            assert!(seen.insert(c.label()), "duplicate label {}", c.label());
            assert_eq!(c.label().parse::<T3Category>().unwrap(), c);
        }
    }

    #[test]
    fn parse_rejects_unknown_labels() {
        assert!("NotACategory".parse::<T2Category>().is_err());
        assert!("GPUDriver".parse::<T2Category>().is_err());
        assert!("FAN".parse::<T3Category>().is_err());
        let err = "Nope".parse::<T3Category>().unwrap_err();
        assert!(err.to_string().contains("Nope"));
    }

    #[test]
    fn gpu_and_cpu_classification() {
        assert!(Category::from(T2Category::Gpu).is_gpu());
        assert!(Category::from(T3Category::Gpu).is_gpu());
        assert!(!Category::from(T3Category::GpuDriver).is_gpu());
        assert!(Category::from(T2Category::Cpu).is_cpu());
        assert!(Category::from(T3Category::Cpu).is_cpu());
    }

    #[test]
    fn software_domain_membership() {
        // The paper separates GPU *hardware* failures from GPU-driver
        // failures, which belong to the software domain.
        assert!(Category::from(T3Category::Software).is_software());
        assert!(Category::from(T3Category::GpuDriver).is_software());
        assert!(Category::from(T3Category::Lustre).is_software());
        assert!(Category::from(T2Category::Pbs).is_software());
        assert!(!Category::from(T2Category::Psu).is_software());
    }

    #[test]
    fn domains_cover_all_variants() {
        for &c in T2Category::ALL {
            // Every category maps somewhere; exercising the mapping keeps it
            // exhaustive under future edits.
            let _ = (c.domain(), c.component_class());
        }
        for &c in T3Category::ALL {
            let _ = (c.domain(), c.component_class());
        }
    }

    #[test]
    fn component_class_display_order() {
        assert_eq!(ComponentClass::ALL.len(), 11);
        assert_eq!(ComponentClass::Gpu.to_string(), "GPU");
        assert_eq!(ComponentClass::Software.to_string(), "Software");
        assert_eq!(Domain::Hardware.to_string(), "hardware");
        assert_eq!(Domain::Software.to_string(), "software");
        assert_eq!(Domain::Unknown.to_string(), "unknown");
    }

    #[test]
    fn category_display_matches_label() {
        assert_eq!(Category::from(T2Category::SystemBoard).to_string(), "System Board");
        assert_eq!(Category::from(T3Category::Sxm2Board).to_string(), "SXM2-Board");
    }
}
