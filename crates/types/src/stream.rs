//! Streaming vocabulary: events flowing through an ingestion pipeline
//! and the structured alerts an online monitor emits.
//!
//! The batch pipeline consumes a whole [`crate::FailureLog`] at once;
//! the streaming subsystem (`failwatch`) consumes [`StreamEvent`]s one
//! at a time and reacts with [`Alert`]s — category-mix shifts, MTTR
//! regressions, GPU slot-skew anomalies, and multi-GPU failure bursts.
//! Alerts serialize to one-line JSON ([`Alert::to_ndjson`]) so an
//! operator can pipe `failctl watch` into any NDJSON consumer.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::json::{push_json_escaped, push_json_number};
use crate::record::FailureRecord;

/// One event observed by a streaming consumer.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamEvent {
    /// A new failure record arrived.
    Record(FailureRecord),
    /// A follow-mode poll found no new data (heartbeat).
    Idle,
    /// The source is exhausted and will produce no further records.
    Eof,
}

/// What kind of drift or anomaly an alert reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AlertKind {
    /// The live category mix diverged from the baseline mix (total
    /// variation distance above threshold).
    CategoryMixShift,
    /// The windowed MTTR regressed past the configured ratio of the
    /// baseline MTTR, confirmed by a two-sample KS comparison.
    MttrRegression,
    /// One GPU slot absorbs a share of involvements far from its
    /// baseline share (Fig. 5 skew moved).
    SlotSkewAnomaly,
    /// Several simultaneous multi-GPU failures clustered inside the
    /// excitation window (Fig. 8 burst behaviour, live).
    MultiGpuBurst,
}

impl AlertKind {
    /// Stable snake_case label used in the NDJSON `kind` field.
    pub const fn label(self) -> &'static str {
        match self {
            AlertKind::CategoryMixShift => "category_mix_shift",
            AlertKind::MttrRegression => "mttr_regression",
            AlertKind::SlotSkewAnomaly => "slot_skew_anomaly",
            AlertKind::MultiGpuBurst => "multi_gpu_burst",
        }
    }
}

impl fmt::Display for AlertKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// How urgent an alert is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AlertSeverity {
    /// Informational: worth a look, no action required.
    Info,
    /// Warning: a drift threshold was crossed.
    Warning,
    /// Critical: strongly confirmed regression.
    Critical,
}

impl AlertSeverity {
    /// Stable lowercase label used in the NDJSON `severity` field.
    pub const fn label(self) -> &'static str {
        match self {
            AlertSeverity::Info => "info",
            AlertSeverity::Warning => "warning",
            AlertSeverity::Critical => "critical",
        }
    }
}

impl fmt::Display for AlertSeverity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A structured alert emitted by the online drift detector.
///
/// # Examples
///
/// ```
/// use failtypes::{Alert, AlertKind, AlertSeverity};
///
/// let a = Alert {
///     kind: AlertKind::MttrRegression,
///     severity: AlertSeverity::Warning,
///     time_h: 1200.5,
///     window_n: 120,
///     metric: 2.1,
///     threshold: 1.5,
///     p_value: Some(0.003),
///     message: "windowed MTTR 2.1x baseline".into(),
/// };
/// let line = a.to_ndjson();
/// assert!(line.starts_with("{\"kind\":\"mttr_regression\""));
/// assert!(!line.contains('\n'));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// What drifted.
    pub kind: AlertKind,
    /// How urgent it is.
    pub severity: AlertSeverity,
    /// Stream time (hours into the observation window) at detection.
    pub time_h: f64,
    /// Number of records in the evaluation window.
    pub window_n: usize,
    /// The observed metric value (ratio, distance, or count).
    pub metric: f64,
    /// The threshold the metric crossed.
    pub threshold: f64,
    /// Significance of the supporting statistical test, when one ran.
    pub p_value: Option<f64>,
    /// Human-readable description.
    pub message: String,
}

impl Alert {
    /// Renders the alert as one line of JSON (no trailing newline).
    ///
    /// Numbers are emitted with enough precision to round-trip; the
    /// message is JSON-escaped.
    pub fn to_ndjson(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str("{\"kind\":\"");
        out.push_str(self.kind.label());
        out.push_str("\",\"severity\":\"");
        out.push_str(self.severity.label());
        out.push_str("\",\"time_h\":");
        push_json_number(&mut out, self.time_h);
        out.push_str(",\"window_n\":");
        out.push_str(&self.window_n.to_string());
        out.push_str(",\"metric\":");
        push_json_number(&mut out, self.metric);
        out.push_str(",\"threshold\":");
        push_json_number(&mut out, self.threshold);
        out.push_str(",\"p_value\":");
        match self.p_value {
            Some(p) => push_json_number(&mut out, p),
            None => out.push_str("null"),
        }
        out.push_str(",\"message\":\"");
        push_json_escaped(&mut out, &self.message);
        out.push_str("\"}");
        out
    }

    /// [`Alert::to_ndjson`], optionally tagged with the `--where`
    /// filter expression scoping the watch that raised it. With
    /// `Some(expr)` the line gains a trailing `"filter"` field so an
    /// NDJSON consumer can tell a scoped alert stream from a fleet-wide
    /// one; with `None` the output is exactly [`Alert::to_ndjson`].
    pub fn to_ndjson_with(&self, filter: Option<&str>) -> String {
        let mut out = self.to_ndjson();
        if let Some(expr) = filter {
            out.pop();
            out.push_str(",\"filter\":\"");
            push_json_escaped(&mut out, expr);
            out.push_str("\"}");
        }
        out
    }
}

impl fmt::Display for Alert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} at t={:.1} h: {}",
            self.severity, self.kind, self.time_h, self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alert() -> Alert {
        Alert {
            kind: AlertKind::CategoryMixShift,
            severity: AlertSeverity::Info,
            time_h: 10.25,
            window_n: 50,
            metric: 0.3,
            threshold: 0.2,
            p_value: None,
            message: "mix \"shifted\"\nbadly".into(),
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(AlertKind::MttrRegression.label(), "mttr_regression");
        assert_eq!(AlertKind::CategoryMixShift.label(), "category_mix_shift");
        assert_eq!(AlertKind::SlotSkewAnomaly.label(), "slot_skew_anomaly");
        assert_eq!(AlertKind::MultiGpuBurst.label(), "multi_gpu_burst");
        assert_eq!(AlertSeverity::Critical.label(), "critical");
        assert_eq!(AlertKind::MultiGpuBurst.to_string(), "multi_gpu_burst");
    }

    #[test]
    fn ndjson_is_one_escaped_line() {
        let line = alert().to_ndjson();
        assert!(!line.contains('\n'));
        assert!(line.contains("\\\"shifted\\\""));
        assert!(line.contains("\\n"));
        assert!(line.contains("\"p_value\":null"));
        assert!(line.contains("\"time_h\":10.25"));
        assert!(line.contains("\"window_n\":50"));
        assert!(line.ends_with('}'));
    }

    #[test]
    fn ndjson_with_filter_appends_the_escaped_expression() {
        let a = alert();
        assert_eq!(a.to_ndjson_with(None), a.to_ndjson());
        let line = a.to_ndjson_with(Some("node ~ \"rack12\" && gpus >= 2"));
        assert!(line.ends_with(",\"filter\":\"node ~ \\\"rack12\\\" && gpus >= 2\"}"), "{line}");
        assert!(!line.contains('\n'));
        assert!(line.starts_with(&a.to_ndjson()[..a.to_ndjson().len() - 1]));
    }

    #[test]
    fn ndjson_non_finite_numbers_become_null() {
        let mut a = alert();
        a.metric = f64::NAN;
        assert!(a.to_ndjson().contains("\"metric\":null"));
    }

    #[test]
    fn display_mentions_kind_and_severity() {
        let text = alert().to_string();
        assert!(text.contains("category_mix_shift"));
        assert!(text.contains("info"));
    }

    #[test]
    fn control_chars_are_escaped() {
        let mut a = alert();
        a.message = "a\u{1}b\tc".into();
        let line = a.to_ndjson();
        assert!(line.contains("\\u0001"));
        assert!(line.contains("\\t"));
    }

    #[test]
    fn stream_event_variants() {
        assert_ne!(StreamEvent::Idle, StreamEvent::Eof);
    }
}
