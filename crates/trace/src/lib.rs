//! Deterministic structured tracing and metrics for the failscope
//! pipeline.
//!
//! A [`Collector`] is a cheap, clonable handle onto a shared metric
//! registry. Pipeline stages record three kinds of instruments into it:
//!
//! * **counters** — monotonic `u64` totals ([`Collector::incr`]), e.g.
//!   `parse.records` or `watch.alerts_raised`;
//! * **spans** — RAII stage timers ([`Collector::span`]) accumulating
//!   call counts, item counts, and wall time per stage name;
//! * **histograms** — fixed log-spaced duration buckets
//!   ([`Collector::observe_hours`]), e.g. the TTR distribution seen
//!   while indexing a log.
//!
//! # Determinism
//!
//! The default export ([`Collector::export`]) is **byte-identical at
//! any thread count**: every exported field is either a commutative
//! `u64` accumulation (counter values, span call/item counts, bucket
//! tallies) or an order-independent reduction (histogram min/max), and
//! instruments are emitted in a canonical order — counters, then
//! histograms, then spans, each sorted by stage name — with sequential
//! ids assigned after sorting. Wall-clock time is deliberately absent;
//! benchmarks that want it use [`Collector::export_timed`] /
//! [`Collector::to_json`] with `timed = true`, which add a `wall_ms`
//! field to spans and are *not* reproducible byte for byte.
//!
//! # Trace schema
//!
//! [`Collector::export`] emits one NDJSON line per instrument:
//!
//! ```json
//! {"kind":"counter","id":0,"stage":"parse.records","value":897}
//! {"kind":"hist","id":1,"stage":"index.ttr_hours","count":897,"min":0.2,"max":912.4,"buckets":[{"le":0.25,"n":3},...,{"le":null,"n":1}]}
//! {"kind":"span","id":2,"stage":"sim.generate","calls":1,"items":897}
//! ```
//!
//! # Examples
//!
//! ```
//! use failtrace::Collector;
//!
//! let trace = Collector::new();
//! {
//!     let mut span = trace.span("sim.generate");
//!     span.add_items(897);
//! }
//! trace.incr("sim.records_generated", 897);
//! trace.observe_hours("index.ttr_hours", 12.5);
//!
//! assert_eq!(trace.counter("sim.records_generated"), 897);
//! let ndjson = trace.export();
//! assert!(ndjson.lines().count() == 3);
//! assert!(ndjson.contains(r#""kind":"span","id":2,"stage":"sim.generate""#));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use failtypes::JsonValue;

/// Upper bucket bounds, in hours, for every duration histogram: a fixed
/// log-spaced ladder from 15 minutes to 30 days, plus an implicit
/// overflow bucket (`le: null`). One shared scheme keeps histograms
/// mergeable and the export schema stable.
pub const DURATION_BUCKET_BOUNDS_HOURS: [f64; 10] =
    [0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 24.0, 72.0, 168.0, 720.0];

/// Accumulated statistics for one span stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// How many times the stage ran.
    pub calls: u64,
    /// Total items processed across all calls (records, sections, ...).
    pub items: u64,
    /// Total wall time across all calls, nanoseconds. Excluded from the
    /// deterministic export.
    pub wall_ns: u64,
}

/// A fixed-bucket duration histogram over
/// [`DURATION_BUCKET_BOUNDS_HOURS`].
#[derive(Debug, Clone, PartialEq)]
struct Histogram {
    /// Tally per bound, plus one trailing overflow bucket.
    buckets: [u64; DURATION_BUCKET_BOUNDS_HOURS.len() + 1],
    count: u64,
    min: f64,
    max: f64,
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            buckets: [0; DURATION_BUCKET_BOUNDS_HOURS.len() + 1],
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn observe(&mut self, hours: f64) {
        let slot = DURATION_BUCKET_BOUNDS_HOURS
            .iter()
            .position(|&le| hours <= le)
            .unwrap_or(DURATION_BUCKET_BOUNDS_HOURS.len());
        self.buckets[slot] += 1;
        self.count += 1;
        self.min = self.min.min(hours);
        self.max = self.max.max(hours);
    }
}

#[derive(Debug, Default)]
struct Registry {
    counters: BTreeMap<String, u64>,
    spans: BTreeMap<String, SpanStats>,
    hists: BTreeMap<String, Histogram>,
}

/// A thread-safe metric registry handle. Cloning is cheap and every
/// clone records into the same registry, so one collector can be
/// threaded through an entire pipeline run.
#[derive(Debug, Clone, Default)]
pub struct Collector {
    inner: Arc<Mutex<Registry>>,
}

impl Collector {
    /// A fresh, empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    fn with_registry<R>(&self, f: impl FnOnce(&mut Registry) -> R) -> R {
        let mut guard = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        f(&mut guard)
    }

    /// Adds `by` to the monotonic counter `stage`, creating it at zero.
    pub fn incr(&self, stage: &str, by: u64) {
        self.with_registry(|reg| {
            *reg.counters.entry(stage.to_string()).or_insert(0) += by;
        });
    }

    /// The current value of counter `stage` (zero if never incremented).
    pub fn counter(&self, stage: &str) -> u64 {
        self.with_registry(|reg| reg.counters.get(stage).copied().unwrap_or(0))
    }

    /// Records one duration observation, in hours, into the fixed-bucket
    /// histogram `stage`.
    pub fn observe_hours(&self, stage: &str, hours: f64) {
        self.with_registry(|reg| {
            reg.hists
                .entry(stage.to_string())
                .or_insert_with(Histogram::new)
                .observe(hours);
        });
    }

    /// Opens an RAII span for `stage`; the span records one call (plus
    /// any [`Span::add_items`] item counts and the elapsed wall time)
    /// when dropped.
    #[must_use = "a span records only when dropped; binding it to `_` drops immediately"]
    pub fn span(&self, stage: &str) -> Span {
        Span {
            collector: self.clone(),
            stage: stage.to_string(),
            items: 0,
            start: Instant::now(),
        }
    }

    /// Runs `f` inside a span named `stage` and returns its result.
    pub fn time<R>(&self, stage: &str, f: impl FnOnce() -> R) -> R {
        let _span = self.span(stage);
        f()
    }

    /// Accumulated statistics for span `stage`, if it ever ran.
    pub fn span_stats(&self, stage: &str) -> Option<SpanStats> {
        self.with_registry(|reg| reg.spans.get(stage).copied())
    }

    /// `true` when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.with_registry(|reg| {
            reg.counters.is_empty() && reg.spans.is_empty() && reg.hists.is_empty()
        })
    }

    fn record_span(&self, stage: &str, items: u64, wall_ns: u64) {
        self.with_registry(|reg| {
            let stats = reg.spans.entry(stage.to_string()).or_default();
            stats.calls += 1;
            stats.items += items;
            stats.wall_ns += wall_ns;
        });
    }

    /// All instruments as JSON lines, in canonical order: counters,
    /// then histograms, then spans, each sorted by stage name, with
    /// sequential ids. With `timed = false` the lines contain no
    /// wall-clock fields and are byte-identical at any thread count.
    fn lines(&self, timed: bool) -> Vec<JsonValue> {
        self.with_registry(|reg| {
            let mut out = Vec::new();
            let mut id = 0u64;
            for (stage, value) in &reg.counters {
                out.push(
                    JsonValue::object()
                        .field("kind", "counter")
                        .field("id", id)
                        .field("stage", stage.as_str())
                        .field("value", *value)
                        .build(),
                );
                id += 1;
            }
            for (stage, hist) in &reg.hists {
                let buckets: Vec<JsonValue> = hist
                    .buckets
                    .iter()
                    .enumerate()
                    .map(|(i, &n)| {
                        let le = DURATION_BUCKET_BOUNDS_HOURS
                            .get(i)
                            .map_or(JsonValue::Null, |&b| JsonValue::Num(b));
                        JsonValue::object().field("le", le).field("n", n).build()
                    })
                    .collect();
                out.push(
                    JsonValue::object()
                        .field("kind", "hist")
                        .field("id", id)
                        .field("stage", stage.as_str())
                        .field("count", hist.count)
                        .field("min", hist.min)
                        .field("max", hist.max)
                        .field("buckets", JsonValue::Array(buckets))
                        .build(),
                );
                id += 1;
            }
            for (stage, stats) in &reg.spans {
                let mut line = JsonValue::object()
                    .field("kind", "span")
                    .field("id", id)
                    .field("stage", stage.as_str())
                    .field("calls", stats.calls)
                    .field("items", stats.items);
                if timed {
                    line = line.field("wall_ms", stats.wall_ns as f64 / 1e6);
                }
                out.push(line.build());
                id += 1;
            }
            out
        })
    }

    /// The deterministic NDJSON export: one line per instrument, no
    /// wall-clock fields, byte-identical at any thread count. See the
    /// crate docs for the schema.
    pub fn export(&self) -> String {
        let mut out = String::new();
        for line in self.lines(false) {
            out.push_str(&line.render());
            out.push('\n');
        }
        out
    }

    /// Like [`Collector::export`] but spans carry a `wall_ms` field.
    /// Intended for benchmarks; **not** reproducible byte for byte.
    pub fn export_timed(&self) -> String {
        let mut out = String::new();
        for line in self.lines(true) {
            out.push_str(&line.render());
            out.push('\n');
        }
        out
    }

    /// The whole registry as one JSON value
    /// (`{"counters":[...],"hists":[...],"spans":[...]}`), for embedding
    /// in reports and bench summaries. Deterministic unless `timed`.
    pub fn to_json(&self, timed: bool) -> JsonValue {
        let lines = self.lines(timed);
        let pick = |kind: &str| -> Vec<JsonValue> {
            lines
                .iter()
                .filter(|line| match line {
                    JsonValue::Object(pairs) => pairs
                        .iter()
                        .any(|(k, v)| k == "kind" && *v == JsonValue::Str(kind.to_string())),
                    _ => false,
                })
                .cloned()
                .collect()
        };
        JsonValue::object()
            .field("counters", JsonValue::Array(pick("counter")))
            .field("hists", JsonValue::Array(pick("hist")))
            .field("spans", JsonValue::Array(pick("span")))
            .build()
    }

    /// Folds every instrument recorded in `other` into this collector:
    /// counters and span call/item/wall tallies add, histogram buckets
    /// merge element-wise with min/max reduced. Used to replay the
    /// instruments of a cached pipeline stage (e.g. a memoized log
    /// parse) into a fresh query trace so the export stays identical to
    /// an uncached run.
    pub fn merge_from(&self, other: &Collector) {
        if Arc::ptr_eq(&self.inner, &other.inner) {
            return;
        }
        let snapshot = other.with_registry(|reg| {
            (
                reg.counters.clone(),
                reg.hists.clone(),
                reg.spans.clone(),
            )
        });
        self.with_registry(|reg| {
            for (stage, value) in snapshot.0 {
                *reg.counters.entry(stage).or_insert(0) += value;
            }
            for (stage, hist) in snapshot.1 {
                let own = reg.hists.entry(stage).or_insert_with(Histogram::new);
                for (slot, n) in hist.buckets.iter().enumerate() {
                    own.buckets[slot] += n;
                }
                own.count += hist.count;
                own.min = own.min.min(hist.min);
                own.max = own.max.max(hist.max);
            }
            for (stage, stats) in snapshot.2 {
                let own = reg.spans.entry(stage).or_default();
                own.calls += stats.calls;
                own.items += stats.items;
                own.wall_ns += stats.wall_ns;
            }
        });
    }

    /// A short human-readable rendering, one indented line per
    /// instrument in export order. Deterministic; used by the `metrics`
    /// report section.
    pub fn render_text(&self) -> String {
        self.with_registry(|reg| {
            let mut out = String::new();
            for (stage, value) in &reg.counters {
                out.push_str(&format!("  counter {stage} = {value}\n"));
            }
            for (stage, hist) in &reg.hists {
                out.push_str(&format!(
                    "  hist    {stage}: n={} min={:.3} max={:.3} h\n",
                    hist.count, hist.min, hist.max
                ));
            }
            for (stage, stats) in &reg.spans {
                out.push_str(&format!(
                    "  span    {stage}: calls={} items={}\n",
                    stats.calls, stats.items
                ));
            }
            out
        })
    }
}

/// An open stage timer returned by [`Collector::span`]. Records its
/// call, item count, and wall time into the collector when dropped.
#[derive(Debug)]
pub struct Span {
    collector: Collector,
    stage: String,
    items: u64,
    start: Instant,
}

impl Span {
    /// Adds `n` processed items to this span's tally.
    pub fn add_items(&mut self, n: u64) {
        self.items += n;
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let wall_ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.collector.record_span(&self.stage, self.items, wall_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_read_back() {
        let trace = Collector::new();
        assert!(trace.is_empty());
        trace.incr("parse.records", 3);
        trace.incr("parse.records", 4);
        assert_eq!(trace.counter("parse.records"), 7);
        assert_eq!(trace.counter("never"), 0);
        assert!(!trace.is_empty());
    }

    #[test]
    fn spans_record_calls_items_and_wall_time_on_drop() {
        let trace = Collector::new();
        {
            let mut span = trace.span("index.logview");
            span.add_items(10);
            span.add_items(5);
        }
        trace.time("index.logview", || ());
        let stats = trace.span_stats("index.logview").unwrap();
        assert_eq!(stats.calls, 2);
        assert_eq!(stats.items, 15);
        assert!(trace.span_stats("other").is_none());
    }

    #[test]
    fn histogram_buckets_cover_bounds_and_overflow() {
        let trace = Collector::new();
        for hours in [0.1, 0.25, 0.26, 8.0, 1000.0] {
            trace.observe_hours("ttr", hours);
        }
        let export = trace.export();
        assert!(export.contains(r#""count":5"#));
        assert!(export.contains(r#""min":0.1"#));
        assert!(export.contains(r#""max":1000"#));
        // 0.1 and 0.25 land in the first bucket, 1000 h overflows.
        assert!(export.contains(r#"{"le":0.25,"n":2}"#));
        assert!(export.contains(r#"{"le":null,"n":1}"#));
    }

    #[test]
    fn export_is_id_ordered_and_free_of_wall_clock() {
        let trace = Collector::new();
        trace.time("z.span", || ());
        trace.incr("b.counter", 1);
        trace.observe_hours("m.hist", 1.0);
        trace.incr("a.counter", 2);
        let export = trace.export();
        let lines: Vec<&str> = export.lines().collect();
        assert_eq!(lines.len(), 4);
        // Canonical order: counters sorted, then hists, then spans.
        assert!(lines[0].contains(r#""id":0,"stage":"a.counter""#));
        assert!(lines[1].contains(r#""id":1,"stage":"b.counter""#));
        assert!(lines[2].contains(r#""id":2,"stage":"m.hist""#));
        assert!(lines[3].contains(r#""id":3,"stage":"z.span""#));
        assert!(!export.contains("wall_ms"));
        assert!(trace.export_timed().contains("wall_ms"));
    }

    #[test]
    fn export_is_identical_across_interleavings() {
        let runs: Vec<String> = (0..2)
            .map(|rev| {
                let trace = Collector::new();
                let order: Vec<u64> = if rev == 0 {
                    (0..8).collect()
                } else {
                    (0..8).rev().collect()
                };
                for i in order {
                    trace.incr("records", i);
                    trace.observe_hours("ttr", i as f64);
                    let mut span = trace.span("stage");
                    span.add_items(i);
                }
                trace.export()
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
    }

    #[test]
    fn shared_handle_records_from_many_threads() {
        let trace = Collector::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let handle = trace.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        handle.incr("watch.records_ingested", 1);
                    }
                });
            }
        });
        assert_eq!(trace.counter("watch.records_ingested"), 400);
    }

    #[test]
    fn merge_from_replays_instruments_identically() {
        let original = Collector::new();
        original.incr("parse.records", 42);
        original.observe_hours("ttr", 0.2);
        original.observe_hours("ttr", 1000.0);
        {
            let mut span = original.span("parse.chunks");
            span.add_items(7);
        }

        // Merging into an empty collector reproduces the export exactly.
        let replayed = Collector::new();
        replayed.merge_from(&original);
        assert_eq!(replayed.export(), original.export());

        // Merging into a non-empty collector accumulates.
        let busy = Collector::new();
        busy.incr("parse.records", 8);
        busy.observe_hours("ttr", 4.0);
        busy.merge_from(&original);
        assert_eq!(busy.counter("parse.records"), 50);
        let export = busy.export();
        assert!(export.contains(r#""count":3"#));
        assert!(export.contains(r#""min":0.2"#));
        assert!(export.contains(r#""max":1000"#));
        assert_eq!(busy.span_stats("parse.chunks").unwrap().items, 7);

        // Self-merge is a no-op, not a double count.
        let double = original.clone();
        double.merge_from(&original);
        assert_eq!(original.counter("parse.records"), 42);
    }

    #[test]
    fn to_json_groups_by_kind() {
        let trace = Collector::new();
        trace.incr("c", 1);
        trace.time("s", || ());
        let json = trace.to_json(false).render();
        assert!(json.starts_with(r#"{"counters":[{"kind":"counter""#));
        assert!(json.contains(r#""spans":[{"kind":"span""#));
        assert!(json.contains(r#""hists":[]"#));
    }

    #[test]
    fn render_text_lists_every_instrument() {
        let trace = Collector::new();
        trace.incr("parse.records", 9);
        trace.observe_hours("ttr", 2.0);
        trace.time("render", || ());
        let text = trace.render_text();
        assert!(text.contains("counter parse.records = 9"));
        assert!(text.contains("hist    ttr: n=1"));
        assert!(text.contains("span    render: calls=1 items=0"));
    }
}
