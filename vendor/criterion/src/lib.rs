// Vendored dependency: exempt from the workspace clippy gate.
#![allow(clippy::all)]
//! Offline mini benchmark harness exposing the slice of the `criterion`
//! API this workspace's benches use: `Criterion` configuration,
//! benchmark groups, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model: warm up for the configured duration to estimate
//! per-iteration cost, then time `sample_size` samples sized to fill the
//! measurement window, and report min/mean/max per iteration.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver and configuration.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }
}

/// A named collection of benchmarks sharing the driver's configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark and prints its timing line.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            config: self.criterion.clone(),
            report: None,
        };
        f(&mut bencher);
        match bencher.report {
            Some(report) => println!("{}/{:<40} {}", self.name, id.into(), report),
            None => println!("{}/{:<40} (no measurement)", self.name, id.into()),
        }
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Runs and times one benchmark routine.
pub struct Bencher {
    config: Criterion,
    report: Option<Report>,
}

#[derive(Debug, Clone, Copy)]
struct Report {
    min: Duration,
    mean: Duration,
    max: Duration,
    iterations: u64,
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "time: [{} {} {}]  iters: {}",
            format_duration(self.min),
            format_duration(self.mean),
            format_duration(self.max),
            self.iterations
        )
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

impl Bencher {
    /// Times `routine`, keeping its output alive via `black_box`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: run until the warm-up window elapses, estimating the
        // per-iteration cost as we go.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.config.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Size each sample so all samples together roughly fill the
        // measurement window.
        let samples = self.config.sample_size;
        let budget = self.config.measurement_time.as_secs_f64() / samples as f64;
        let iters_per_sample = (budget / per_iter.max(1e-9)).ceil().max(1.0) as u64;

        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        let mut total = Duration::ZERO;
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed() / iters_per_sample as u32;
            min = min.min(elapsed);
            max = max.max(elapsed);
            total += elapsed;
        }
        self.report = Some(Report {
            min,
            mean: total / samples as u32,
            max,
            iterations: samples as u64 * iters_per_sample,
        });
    }
}

/// Declares a benchmark group function, with or without a custom
/// configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group (command
/// line arguments from `cargo bench` are accepted and ignored).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2))
    }

    #[test]
    fn bench_function_measures_and_reports() {
        let mut c = quick();
        let mut group = c.benchmark_group("unit");
        let mut calls = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        assert!(calls > 0);
    }

    criterion_group! {
        name = smoke;
        config = quick();
        targets = smoke_target
    }

    fn smoke_target(c: &mut Criterion) {
        c.benchmark_group("smoke")
            .bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_macro_expands() {
        smoke();
    }
}