//! The `Strategy` trait, primitive strategies (numeric ranges, string
//! patterns, tuples), and the `prop_map`/`prop_flat_map` combinators.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of an associated type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with a pure function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Derives a follow-up strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// `prop_flat_map` combinator.
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
    T: Strategy,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),+ $(,)?) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $ty
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $ty;
                    }
                    (lo as i128 + rng.below(span as u64) as i128) as $ty
                }
            }
        )+
    };
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_range_strategy {
    ($($ty:ty),+ $(,)?) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = rng.unit_f64() as $ty;
                    self.start + (self.end - self.start) * unit
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    // Hit the endpoints occasionally; proptest's float
                    // strategies also emit boundary values.
                    match rng.below(64) {
                        0 => lo,
                        1 => hi,
                        _ => lo + (hi - lo) * rng.unit_f64() as $ty,
                    }
                }
            }
        )+
    };
}

float_range_strategy!(f32, f64);

/// Characters "." may generate: printable ASCII plus a few multi-byte
/// code points (exercises UTF-8 handling), never `\n`.
const PATTERN_EXTRAS: &[char] = &['\t', '\r', 'é', 'ß', 'λ', '中', '🚀', '\u{202e}'];

impl Strategy for &str {
    type Value = String;

    /// Supports the regex subset used in this workspace: `.{min,max}`.
    fn generate(&self, rng: &mut TestRng) -> String {
        let pattern = self;
        let body = pattern
            .strip_prefix(".{")
            .and_then(|rest| rest.strip_suffix('}'))
            .unwrap_or_else(|| panic!("unsupported string pattern: {pattern:?}"));
        let (min, max) = body
            .split_once(',')
            .and_then(|(a, b)| Some((a.parse::<usize>().ok()?, b.parse::<usize>().ok()?)))
            .unwrap_or_else(|| panic!("unsupported string pattern: {pattern:?}"));
        let len = min + rng.below((max - min + 1) as u64) as usize;
        let mut out = String::with_capacity(len);
        for _ in 0..len {
            if rng.below(8) == 0 {
                out.push(PATTERN_EXTRAS[rng.below(PATTERN_EXTRAS.len() as u64) as usize]);
            } else {
                out.push((0x20 + rng.below(0x5f) as u8) as char);
            }
        }
        out
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+
    };
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;

    /// The whole-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy over a type's entire domain.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

macro_rules! arbitrary_int {
    ($($ty:ty),+ $(,)?) => {
        $(
            impl Strategy for Any<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }

            impl Arbitrary for $ty {
                type Strategy = Any<$ty>;

                fn arbitrary() -> Any<$ty> {
                    Any(PhantomData)
                }
            }
        )+
    };
}

arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.flip()
    }
}

impl Arbitrary for bool {
    type Strategy = Any<bool>;

    fn arbitrary() -> Any<bool> {
        Any(PhantomData)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_pattern_respects_bounds() {
        let mut rng = TestRng::for_test("pattern");
        for _ in 0..500 {
            let s = ".{0,30}".generate(&mut rng);
            assert!(s.chars().count() <= 30);
            assert!(!s.contains('\n'));
        }
        let empty = ".{0,0}".generate(&mut rng);
        assert!(empty.is_empty());
    }

    #[test]
    fn int_ranges_cover_extremes() {
        let mut rng = TestRng::for_test("extremes");
        let mut saw_min = false;
        let mut saw_max = false;
        for _ in 0..2000 {
            let v = (0u8..=3).generate(&mut rng);
            saw_min |= v == 0;
            saw_max |= v == 3;
        }
        assert!(saw_min && saw_max);
    }

    #[test]
    fn negative_ranges_work() {
        let mut rng = TestRng::for_test("negative");
        for _ in 0..2000 {
            let v = (-1_000_000i64..1_000_000).generate(&mut rng);
            assert!((-1_000_000..1_000_000).contains(&v));
        }
    }
}
