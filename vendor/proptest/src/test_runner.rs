//! Test configuration, failure type, and the deterministic RNG driving
//! value generation.

use std::fmt;

/// Per-test configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl Config {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// A failed property assertion.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic generator (SplitMix64) seeded from the test name, so
/// every test replays the same cases on every run.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name gives a stable per-test stream.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: hash ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` via Lemire's multiply-shift
    /// (`bound` must be non-zero).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `f64` in the half-open unit interval.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fair coin flip.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_test_streams_are_stable_and_distinct() {
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("alpha");
        let mut c = TestRng::for_test("beta");
        let xs: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..10).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::for_test("bound");
        for _ in 0..10_000 {
            assert!(rng.below(7) < 7);
        }
    }
}
