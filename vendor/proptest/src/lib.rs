// Vendored dependency: exempt from the workspace clippy gate.
#![allow(clippy::all)]
//! Offline mini property-testing harness.
//!
//! Implements the slice of the `proptest` API this workspace uses —
//! the `proptest!` macro, numeric range/tuple/collection strategies,
//! `prop_map`/`prop_flat_map`, `any::<T>()`, and the `prop_assert*`
//! macros — with a deterministic per-test RNG. There is no shrinking:
//! a failing case panics with the case number and message, and cases
//! replay identically run to run.

pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.

    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests. Supports the two shapes used in this
/// workspace: with and without a leading
/// `#![proptest_config(ProptestConfig::with_cases(N))]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_tests {
    (($config:expr) $(#[test] fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(err) = outcome {
                        ::std::panic!(
                            "property test {} failed on case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            err
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test, failing the case (with
/// the formatted message) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(
            a in 3u32..17,
            b in -50i64..50,
            c in 0.25f64..0.75,
            d in 1u8..=8,
            p in 0.0..=1.0f64,
        ) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-50..50).contains(&b));
            prop_assert!((0.25..0.75).contains(&c));
            prop_assert!((1..=8).contains(&d));
            prop_assert!((0.0..=1.0).contains(&p));
        }

        #[test]
        fn combinators_compose(
            v in crate::collection::vec((0u32..10).prop_map(|x| x * 2), 1..20),
            s in crate::collection::btree_set(0u8..4, 0..=3),
            o in crate::option::of(0usize..5),
            text in ".{0,40}",
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|x| x % 2 == 0));
            prop_assert!(s.len() <= 3);
            if let Some(x) = o {
                prop_assert!(x < 5);
            }
            prop_assert!(text.chars().count() <= 40);
            prop_assert!(!text.contains('\n'));
        }

        #[test]
        fn flat_map_threads_values(
            (n, m) in (1usize..10).prop_flat_map(|n| (crate::strategy::Just(n), 0usize..n))
        ) {
            prop_assert!(m < n);
        }

        #[test]
        fn any_covers_types(x in any::<u64>(), flag in any::<bool>()) {
            let _ = x;
            let _ = flag;
            prop_assert!(true);
        }
    }

    #[test]
    fn failing_case_panics_with_message() {
        let result = std::panic::catch_unwind(|| {
            let mut rng = crate::test_runner::TestRng::for_test("inner");
            let value = crate::strategy::Strategy::generate(&(0u32..10), &mut rng);
            let outcome: Result<(), crate::test_runner::TestCaseError> = (move || {
                prop_assert!(value >= 10, "value {} too small", value);
                Ok(())
            })();
            outcome.unwrap();
        });
        assert!(result.is_err());
    }
}