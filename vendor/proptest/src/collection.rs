//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// A size range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.min + rng.below((self.max_inclusive - self.min + 1) as u64) as usize
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_inclusive: n,
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>` with up to the drawn number of
/// elements (duplicates collapse, as in proptest).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.pick(rng);
        let mut set = BTreeSet::new();
        // Bounded retries: a narrow element domain may not admit
        // `target` distinct values.
        for _ in 0..target * 4 {
            if set.len() >= target {
                break;
            }
            set.insert(self.element.generate(rng));
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_lengths_span_range() {
        let mut rng = TestRng::for_test("vec");
        let strat = vec(0u32..100, 2..6);
        let mut lens = std::collections::BTreeSet::new();
        for _ in 0..300 {
            lens.insert(strat.generate(&mut rng).len());
        }
        assert!(lens.iter().all(|&l| (2..6).contains(&l)));
        assert!(lens.len() > 1);
    }

    #[test]
    fn btree_set_respects_max() {
        let mut rng = TestRng::for_test("set");
        let strat = btree_set(0u8..4, 0..=3);
        for _ in 0..300 {
            assert!(strat.generate(&mut rng).len() <= 3);
        }
    }
}
