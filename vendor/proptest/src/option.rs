//! `Option` strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy generating `Some` from `inner` about three quarters of the
/// time and `None` otherwise (proptest's default weighting).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_both_variants() {
        let mut rng = TestRng::for_test("option");
        let strat = of(0u32..10);
        let mut some = 0;
        let mut none = 0;
        for _ in 0..400 {
            match strat.generate(&mut rng) {
                Some(v) => {
                    assert!(v < 10);
                    some += 1;
                }
                None => none += 1,
            }
        }
        assert!(some > 0 && none > 0);
    }
}
