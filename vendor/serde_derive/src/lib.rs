// Vendored dependency: exempt from the workspace clippy gate.
#![allow(clippy::all)]
//! Offline stub of `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its domain types
//! but serializes exclusively through `faillog`'s hand-rolled CSV codec,
//! so no serde impl is ever exercised at runtime. These derive macros
//! accept the attribute (keeping every `#[derive(Serialize,
//! Deserialize)]` compiling) and expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}