// Vendored dependency: exempt from the workspace clippy gate.
#![allow(clippy::all)]
//! Offline shim of `parking_lot`: the `Mutex` API this workspace uses
//! (const construction, infallible `lock()`), over `std::sync::Mutex`.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutex whose `lock()` never returns a poison error (a poisoned std
/// mutex is recovered transparently, matching parking_lot's behaviour of
/// not having poisoning at all).
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates the mutex (usable in `const`/`static` context).
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static GLOBAL: Mutex<Option<u32>> = Mutex::new(None);

    #[test]
    fn const_static_mutex_works() {
        let mut guard = GLOBAL.lock();
        let value = *guard.get_or_insert(7);
        assert_eq!(value, 7);
    }

    #[test]
    fn lock_recovers_from_poison() {
        let m = std::sync::Arc::new(Mutex::new(1u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the std mutex underneath");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }
}