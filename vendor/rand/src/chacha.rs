//! ChaCha12 keystream generator, bit-compatible with `rand_chacha` 0.3.
//!
//! `rand_chacha` exposes ChaCha through `rand_core`'s `BlockRng`, which
//! buffers **four** 64-byte blocks (64 `u32` words) per refill and has
//! idiosyncratic `next_u64` semantics when a read straddles the buffer
//! edge. Both behaviours are load-bearing for stream compatibility and
//! are reproduced here exactly.

use crate::{RngCore, SeedableRng};

/// `"expand 32-byte k"` as little-endian words.
const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// Words per refill: `BlockRng<ChaCha12Core>` buffers 4 ChaCha blocks.
const BUFFER_WORDS: usize = 64;

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// One ChaCha block: 64-bit counter in words 12–13, 64-bit stream id
/// (always zero for `from_seed`) in words 14–15.
fn chacha_block(key: &[u32; 8], counter: u64, rounds: u32) -> [u32; 16] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&CONSTANTS);
    state[4..12].copy_from_slice(key);
    state[12] = counter as u32;
    state[13] = (counter >> 32) as u32;
    // state[14], state[15]: stream id, zero.

    let initial = state;
    for _ in 0..rounds / 2 {
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for (word, init) in state.iter_mut().zip(initial) {
        *word = word.wrapping_add(init);
    }
    state
}

/// A ChaCha generator with 12 rounds, wrapped in `BlockRng`-compatible
/// buffering. This is exactly `rand`'s `StdRng` core.
#[derive(Clone)]
pub struct ChaCha12Rng {
    key: [u32; 8],
    counter: u64,
    results: [u32; BUFFER_WORDS],
    index: usize,
}

impl std::fmt::Debug for ChaCha12Rng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaCha12Rng").finish_non_exhaustive()
    }
}

impl ChaCha12Rng {
    /// Refills the buffer with the next four blocks and positions the
    /// read index (mirrors `BlockRng::generate_and_set`).
    fn generate_and_set(&mut self, index: usize) {
        for block in 0..4 {
            let words = chacha_block(&self.key, self.counter + block as u64, 12);
            self.results[block * 16..(block + 1) * 16].copy_from_slice(&words);
        }
        self.counter = self.counter.wrapping_add(4);
        self.index = index;
    }
}

impl SeedableRng for ChaCha12Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha12Rng {
            key,
            counter: 0,
            results: [0; BUFFER_WORDS],
            index: BUFFER_WORDS, // empty: first read triggers a refill
        }
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BUFFER_WORDS {
            self.generate_and_set(0);
        }
        let value = self.results[self.index];
        self.index += 1;
        value
    }

    fn next_u64(&mut self) -> u64 {
        // BlockRng::next_u64: low word first, with special handling when
        // the read would straddle a refill.
        let read_u64 = |results: &[u32; BUFFER_WORDS], index: usize| {
            u64::from(results[index + 1]) << 32 | u64::from(results[index])
        };
        let index = self.index;
        if index < BUFFER_WORDS - 1 {
            self.index += 2;
            read_u64(&self.results, index)
        } else if index >= BUFFER_WORDS {
            self.generate_and_set(2);
            read_u64(&self.results, 0)
        } else {
            let low = u64::from(self.results[BUFFER_WORDS - 1]);
            self.generate_and_set(1);
            low | (u64::from(self.results[0]) << 32)
        }
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        // BlockRng::fill_bytes via fill_via_u32_chunks: consume whole
        // words as little-endian bytes; a partially used trailing word is
        // still fully consumed.
        let mut written = 0;
        while written < dest.len() {
            if self.index >= BUFFER_WORDS {
                self.generate_and_set(0);
            }
            let remaining = &mut dest[written..];
            let available = &self.results[self.index..];
            let words = remaining.len().div_ceil(4).min(available.len());
            for (i, word) in available[..words].iter().enumerate() {
                let bytes = word.to_le_bytes();
                let start = i * 4;
                let take = bytes.len().min(remaining.len() - start);
                remaining[start..start + take].copy_from_slice(&bytes[..take]);
            }
            self.index += words;
            written += (words * 4).min(remaining.len());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The original djb ChaCha20 test vector (all-zero key, zero
    /// counter/nonce): validates the quarter round, state layout, and
    /// final addition. ChaCha12 differs only in round count.
    #[test]
    fn chacha20_known_answer() {
        let key = [0u32; 8];
        let block = chacha_block(&key, 0, 20);
        let mut bytes = Vec::new();
        for word in &block {
            bytes.extend_from_slice(&word.to_le_bytes());
        }
        assert_eq!(
            &bytes[..16],
            &[
                0x76, 0xb8, 0xe0, 0xad, 0xa0, 0xf1, 0x3d, 0x90, 0x40, 0x5d, 0x6a, 0xe5, 0x53,
                0x86, 0xbd, 0x28
            ]
        );
    }

    #[test]
    fn counter_advances_by_four_per_refill() {
        let mut rng = ChaCha12Rng::from_seed([1; 32]);
        assert_eq!(rng.counter, 0);
        rng.next_u32();
        assert_eq!(rng.counter, 4);
        for _ in 0..63 {
            rng.next_u32();
        }
        assert_eq!(rng.counter, 4);
        rng.next_u32();
        assert_eq!(rng.counter, 8);
    }

    #[test]
    fn next_u64_straddles_refill_like_block_rng() {
        // Consume 63 words, then next_u64 must take word 63 as the low
        // half and word 0 of the *next* refill as the high half.
        let mut rng = ChaCha12Rng::from_seed([2; 32]);
        let mut reference = ChaCha12Rng::from_seed([2; 32]);
        let words: Vec<u32> = (0..64).map(|_| reference.next_u32()).collect();
        let next_words: Vec<u32> = (0..64).map(|_| reference.next_u32()).collect();

        for _ in 0..63 {
            rng.next_u32();
        }
        let straddled = rng.next_u64();
        assert_eq!(
            straddled,
            u64::from(words[63]) | (u64::from(next_words[0]) << 32)
        );
        // Index was set to 1, so the next u32 is word 1 of the new block.
        assert_eq!(rng.next_u32(), next_words[1]);
    }

    #[test]
    fn blocks_are_sequential_in_buffer() {
        let mut rng = ChaCha12Rng::from_seed([3; 32]);
        let mut stream = Vec::new();
        for _ in 0..128 {
            stream.push(rng.next_u32());
        }
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip([3u8; 32].chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        for (block_idx, chunk) in stream.chunks_exact(16).enumerate() {
            let expect = chacha_block(&key, block_idx as u64, 12);
            assert_eq!(chunk, expect, "block {block_idx}");
        }
    }
}
