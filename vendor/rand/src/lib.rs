// Vendored dependency: exempt from the workspace clippy gate.
#![allow(clippy::all)]
//! Offline drop-in subset of the `rand` crate.
//!
//! The build environment has no access to a crates.io mirror, so the
//! workspace vendors the exact slice of `rand` 0.8 it uses. The stream
//! of every generator here is **bit-compatible** with `rand` 0.8.5 +
//! `rand_chacha` 0.3 (`StdRng` = ChaCha with 12 rounds, 64-bit block
//! counter, `BlockRng` buffering semantics, PCG32-based
//! `seed_from_u64`, and the 0.8 `UniformInt`/`Standard` sampling
//! algorithms), so every seed-calibrated anchor in the workspace keeps
//! its published value.

mod chacha;

pub mod distributions;
pub mod rngs;

pub use distributions::uniform::{SampleRange, SampleUniform};

use distributions::{Distribution, Standard};

/// Error type for fallible generator operations (never produced by the
/// deterministic generators in this workspace).
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("random number generator failure")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: a source of random `u32`/`u64`
/// words and byte fills.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);

    /// Fallible variant of [`fill_bytes`](Self::fill_bytes).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Seed material (a fixed-size byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates the generator from seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into full seed material with a PCG32 stream and
    /// instantiates the generator, exactly as `rand_core` 0.6 does.
    fn seed_from_u64(mut state: u64) -> Self {
        // PCG32 constants from rand_core 0.6 `seed_from_u64`.
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;

        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Convenience methods layered on any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value via the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        assert!(!range.is_empty(), "cannot sample empty range");
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..100).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn standard_f64_is_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let a = rng.gen_range(3usize..17);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(0u32..1);
            assert_eq!(b, 0);
            let c = rng.gen_range(0u8..=3);
            assert!(c <= 3);
            let d = rng.gen_range(5u64..=5);
            assert_eq!(d, 5);
        }
    }

    #[test]
    fn gen_range_covers_small_range_uniformly() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[rng.gen_range(0usize..4)] += 1;
        }
        for &c in &counts {
            assert!((c as i64 - 10_000).abs() < 600, "counts {counts:?}");
        }
    }

    #[test]
    fn dyn_rng_core_supports_gen() {
        let mut rng = StdRng::seed_from_u64(1);
        let dynref: &mut dyn RngCore = &mut rng;
        let x: f64 = dynref.gen();
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn fill_bytes_matches_word_stream() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        let mut bytes = [0u8; 16];
        a.fill_bytes(&mut bytes);
        let mut expect = [0u8; 16];
        expect[..4].copy_from_slice(&b.next_u32().to_le_bytes());
        expect[4..8].copy_from_slice(&b.next_u32().to_le_bytes());
        expect[8..12].copy_from_slice(&b.next_u32().to_le_bytes());
        expect[12..].copy_from_slice(&b.next_u32().to_le_bytes());
        assert_eq!(bytes, expect);
    }
}