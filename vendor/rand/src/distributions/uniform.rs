//! Uniform range sampling, reproducing `rand` 0.8.5's
//! `UniformInt::sample_single[_inclusive]` (widening-multiply rejection)
//! and `UniformFloat::sample_single` exactly.

use crate::{Rng, RngCore};
use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized {
    /// Uniform sample from the half-open range `[low, high)`.
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;

    /// Uniform sample from the inclusive range `[low, high]`.
    fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

/// Range-like arguments accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;

    /// Whether the range contains no values.
    fn is_empty(&self) -> bool;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single(self.start, self.end, rng)
    }

    fn is_empty(&self) -> bool {
        !(self.start < self.end)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_single_inclusive(start, end, rng)
    }

    fn is_empty(&self) -> bool {
        !(self.start() <= self.end())
    }
}

/// Widening multiply: `(high_word, low_word)` of `a * b`.
trait WideningMultiply: Sized {
    fn wmul(self, other: Self) -> (Self, Self);
}

impl WideningMultiply for u32 {
    #[inline]
    fn wmul(self, other: Self) -> (Self, Self) {
        let t = self as u64 * other as u64;
        ((t >> 32) as u32, t as u32)
    }
}

impl WideningMultiply for u64 {
    #[inline]
    fn wmul(self, other: Self) -> (Self, Self) {
        let t = self as u128 * other as u128;
        ((t >> 64) as u64, t as u64)
    }
}

impl WideningMultiply for usize {
    #[inline]
    fn wmul(self, other: Self) -> (Self, Self) {
        let (hi, lo) = (self as u64).wmul(other as u64);
        (hi as usize, lo as usize)
    }
}

// rand 0.8's UniformInt type mapping: u8/u16 widen to u32 and use a
// modulo-computed zone; u32/u64/usize sample at their own width with a
// leading-zeros zone.
macro_rules! uniform_int {
    ($ty:ty, $unsigned:ty, $u_large:ty, $use_mod_zone:expr) => {
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "UniformSampler::sample_single: low >= high");
                Self::sample_single_inclusive(low, high - 1, rng)
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self {
                assert!(
                    low <= high,
                    "UniformSampler::sample_single_inclusive: low > high"
                );
                let range =
                    high.wrapping_sub(low).wrapping_add(1) as $unsigned as $u_large;
                // Wrapped to zero: the whole type range is valid.
                if range == 0 {
                    return rng.gen();
                }
                let zone = if $use_mod_zone {
                    let ints_to_reject = (<$u_large>::MAX - range + 1) % range;
                    <$u_large>::MAX - ints_to_reject
                } else {
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v: $u_large = rng.gen();
                    let (hi, lo) = v.wmul(range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

uniform_int!(u8, u8, u32, true);
uniform_int!(u16, u16, u32, true);
uniform_int!(u32, u32, u32, false);
uniform_int!(u64, u64, u64, false);
uniform_int!(usize, usize, usize, false);
uniform_int!(i8, u8, u32, true);
uniform_int!(i16, u16, u32, true);
uniform_int!(i32, u32, u32, false);
uniform_int!(i64, u64, u64, false);
uniform_int!(isize, usize, usize, false);

// rand 0.8's UniformFloat::sample_single: a value in [1, 2) from the
// mantissa bits, shifted and scaled into [low, high).
macro_rules! uniform_float {
    ($ty:ty, $uty:ty, $next:ident, $bits_to_discard:expr, $mantissa_bits:expr, $exponent_bias:expr) => {
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                debug_assert!(
                    low.is_finite() && high.is_finite() && low < high,
                    "UniformSampler::sample_single: invalid range"
                );
                let scale = high - low;
                let value: $uty = rng.$next() >> $bits_to_discard;
                let value1_2 = <$ty>::from_bits(($exponent_bias << $mantissa_bits) | value);
                let value0_1 = value1_2 - 1.0;
                value0_1 * scale + low
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self {
                // rand 0.8 floats treat inclusive ranges like half-open
                // ones for single sampling.
                Self::sample_single(low, high, rng)
            }
        }
    };
}

uniform_float!(f64, u64, next_u64, 12, 52, 1023u64);
uniform_float!(f32, u32, next_u32, 9, 23, 127u32);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn u32_range_consumes_u32_words() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let range = 540u32;
        let x = a.gen_range(0u32..range);
        // One accepted widening-multiply draw from a single u32.
        let v = b.next_u32();
        let (hi, lo) = v.wmul(range);
        let zone = (range << range.leading_zeros()).wrapping_sub(1);
        assert!(lo <= zone, "seed 1 draw is accepted immediately");
        assert_eq!(x, hi);
    }

    #[test]
    fn usize_range_matches_manual_rejection_loop() {
        let mut a = StdRng::seed_from_u64(2);
        let mut b = StdRng::seed_from_u64(2);
        let range = 10u64;
        let x = a.gen_range(0usize..10);
        let zone = (range << range.leading_zeros()).wrapping_sub(1);
        let expected = loop {
            let v = b.next_u64();
            let (hi, lo) = v.wmul(range);
            if lo <= zone {
                break hi;
            }
        };
        assert_eq!(x as u64, expected);
        // Post-draw streams align (both consumed the same words).
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn full_type_range_falls_back_to_standard() {
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        let x = a.gen_range(0u64..=u64::MAX);
        assert_eq!(x, b.next_u64());
    }

    #[test]
    fn float_range_matches_bit_construction() {
        let mut a = StdRng::seed_from_u64(4);
        let mut b = StdRng::seed_from_u64(4);
        let x = a.gen_range(10.0f64..20.0);
        let value = b.next_u64() >> 12;
        let value1_2 = f64::from_bits((1023u64 << 52) | value);
        assert_eq!(x, (value1_2 - 1.0) * 10.0 + 10.0);
        assert!((10.0..20.0).contains(&x));
    }

    #[test]
    fn inclusive_u8_range_is_exact() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0u8..=3) as usize] = true;
        }
        assert_eq!(seen, [true; 4]);
    }
}
