//! Named generator types.

use crate::chacha::ChaCha12Rng;
use crate::{RngCore, SeedableRng};

/// The standard generator: ChaCha with 12 rounds, exactly as in `rand`
/// 0.8. Deterministic per seed and portable across platforms.
#[derive(Clone, Debug)]
pub struct StdRng(ChaCha12Rng);

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        StdRng(ChaCha12Rng::from_seed(seed))
    }
}
