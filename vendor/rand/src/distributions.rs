//! The `Standard` distribution and uniform range sampling, matching
//! `rand` 0.8.5's algorithms bit for bit.

use crate::RngCore;

pub mod uniform;

/// A distribution that can produce values of `T` from a generator.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution over a type's value range (floats: the
/// half-open unit interval).
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // rand 0.8 "Multiply-based" conversion: 53 random mantissa bits.
        let value = rng.next_u64() >> (64 - 53);
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        let value = rng.next_u32() >> (32 - 24);
        value as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        // rand 0.8 compares the most significant bit of a u32.
        (rng.next_u32() as i32) < 0
    }
}

macro_rules! standard_int {
    ($($ty:ty => $method:ident),+ $(,)?) => {
        $(
            impl Distribution<$ty> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $ty {
                    rng.$method() as $ty
                }
            }
        )+
    };
}

standard_int! {
    u8 => next_u32,
    u16 => next_u32,
    u32 => next_u32,
    u64 => next_u64,
    usize => next_u64,
    i8 => next_u32,
    i16 => next_u32,
    i32 => next_u32,
    i64 => next_u64,
    isize => next_u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn standard_f64_uses_53_bits_of_one_u64() {
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        let x: f64 = a.gen();
        let word = b.next_u64();
        assert_eq!(x, (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64));
    }

    #[test]
    fn standard_u32_consumes_one_word() {
        let mut a = StdRng::seed_from_u64(4);
        let mut b = StdRng::seed_from_u64(4);
        let x: u32 = a.gen();
        assert_eq!(x, b.next_u32());
        assert_eq!(a.next_u32(), b.next_u32());
    }
}
