// Vendored dependency: exempt from the workspace clippy gate.
#![allow(clippy::all)]
//! Offline stub of `serde`.
//!
//! Provides the `Serialize`/`Deserialize` trait names and the derive
//! macros under the same paths as the real crate, so `use
//! serde::{Serialize, Deserialize}` and `#[derive(...)]` keep working.
//! The workspace's only on-disk format is `faillog`'s hand-rolled CSV,
//! so no serde machinery beyond the names is needed.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}