// Vendored dependency: exempt from the workspace clippy gate.
#![allow(clippy::all)]
//! Offline shim of the `crossbeam` APIs this workspace uses: scoped
//! threads, implemented over `std::thread::scope` (stable since Rust
//! 1.63, so the external crate is unnecessary here).

pub mod thread {
    //! Scoped threads with crossbeam's calling convention.

    use std::any::Any;
    use std::thread as stdthread;

    /// Result of a scope or a join: `Err` carries a panic payload.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle passed to the closure given to [`scope`].
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: stdthread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread and returns its result (`Err` on panic).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives a unit
        /// placeholder where crossbeam passes a nested scope handle
        /// (nested spawning is not used in this workspace).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(())),
            }
        }
    }

    /// Runs `f` with a scope in which spawned threads may borrow from the
    /// environment; all threads are joined before this returns.
    ///
    /// Unlike crossbeam, a panic in an unjoined child propagates instead
    /// of being collected into the `Err` variant — every caller in this
    /// workspace joins all handles, where the behaviours agree.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(stdthread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = vec![1u64, 2, 3, 4];
            let total: u64 = super::scope(|scope| {
                let handles: Vec<_> = data
                    .chunks(2)
                    .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("no panic"))
                    .sum()
            })
            .expect("scope succeeds");
            assert_eq!(total, 10);
        }

        #[test]
        fn join_reports_panics() {
            let result = super::scope(|scope| {
                let h = scope.spawn(|_| panic!("boom"));
                h.join()
            })
            .expect("scope itself succeeds");
            assert!(result.is_err());
        }
    }
}