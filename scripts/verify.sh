#!/usr/bin/env sh
# Full verification gate: release build, the whole test suite, and a
# warning-free clippy pass over every target. Run from the repo root.
set -eu

cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings

# Streaming subsystem gate: the record-by-record state must equal the
# batch pipeline, and an injected MTTR regression must raise an alert.
cargo test -q -p failsuite --test stream_equivalence
cargo run -q -p failbench --bin bench_stream --release -- --json BENCH_stream.json

# Streaming throughput gate: the amortized deferred-merge ingest path
# sustains ~2.4M records/second on the ~110k-record scaled year (one
# container core); fail if it regresses below half that, which is where
# an accidental return to per-record O(n) insertion would land.
stream_floor=1200000
stream_rate=$(sed -n 's/.*"scaled_stream_records_per_second": \([0-9]*\).*/\1/p' \
    BENCH_stream.json)
if [ -z "$stream_rate" ]; then
    echo "verify: scaled_stream_records_per_second missing from BENCH_stream.json" >&2
    exit 1
fi
if [ "$stream_rate" -lt "$stream_floor" ]; then
    echo "verify: scaled stream throughput regressed: $stream_rate rec/s < floor $stream_floor" >&2
    exit 1
fi

# Parse-path gate: the chunked parallel parser sustains ~2.4M
# records/second on the ~110k-record scaled year (one container core);
# fail if it regresses below half that. `repro bench` also verifies the
# parallel parse is byte-identical to serial before reporting a rate.
cargo run -q -p failbench --bin repro --release -- bench
parse_floor=1150000
parse_rate=$(sed -n 's/.*"parse_records_per_second":\([0-9]*\).*/\1/p' \
    BENCH_pipeline.json)
if [ -z "$parse_rate" ]; then
    echo "verify: parse_records_per_second missing from BENCH_pipeline.json" >&2
    exit 1
fi
if [ "$parse_rate" -lt "$parse_floor" ]; then
    echo "verify: parse throughput regressed: $parse_rate rec/s < floor $parse_floor" >&2
    exit 1
fi

# Filter-pushdown gate, part 1: throughput. Parsing with a predicate
# pushed down must stay within 15% of plain parse throughput (the
# predicate is a few branches per record; anything slower means an
# allocating or re-scanning eval sneaked into the record path).
# `repro bench` already verifies the filtered parse is byte-identical
# to the post-hoc filter of an unfiltered parse before reporting it.
filter_rate=$(sed -n 's/.*"filter_records_per_second":\([0-9]*\).*/\1/p' \
    BENCH_pipeline.json)
if [ -z "$filter_rate" ]; then
    echo "verify: filter_records_per_second missing from BENCH_pipeline.json" >&2
    exit 1
fi
if [ $((filter_rate * 100)) -lt $((parse_rate * 85)) ]; then
    echo "verify: filter pushdown overhead exceeds 15%: $filter_rate rec/s vs unfiltered $parse_rate rec/s" >&2
    exit 1
fi

# Filter-pushdown gate, part 2: a `--where` report must be
# byte-identical to the report of an expected input constructed
# independently with awk — keep the 7 header lines, then only rows
# whose ttr_h column (field 3) exceeds 48.
flt_dir=$(mktemp -d)
flt_sections="header,categories,spatial,involvement,tbf,ttr,availability,survival,seasonal"
cargo run -q --release -p failctl -- \
    generate --system tsubame3 --out "$flt_dir/flt.fslog" >/dev/null
awk -F, 'NR <= 7 || $3 + 0 > 48' "$flt_dir/flt.fslog" > "$flt_dir/expected.fslog"
cargo run -q --release -p failctl -- report "$flt_dir/flt.fslog" \
    --sections "$flt_sections" --where 'ttr > 48' > "$flt_dir/where.txt"
cargo run -q --release -p failctl -- report "$flt_dir/expected.fslog" \
    --sections "$flt_sections" > "$flt_dir/expected.txt"
cmp -s "$flt_dir/where.txt" "$flt_dir/expected.txt" || {
    echo "verify: --where report differs from the awk-filtered expected report" >&2
    exit 1
}
rm -rf "$flt_dir"

# Snapshot gate, part 1: `repro bench`'s index block times the warm
# `.fsidx` load path (validate + decode) against a cold parse on the
# same ~110k-record year; measured ~5x on one container core, tripwire
# at 3x — an accidental return to re-parsing would land at 1x. The
# bench itself already exits non-zero if the warm report bytes diverge
# from cold.
index_floor=300
index_speedup=$(sed -n 's/.*"index_load_speedup_x100":\([0-9]*\).*/\1/p' \
    BENCH_pipeline.json)
if [ -z "$index_speedup" ]; then
    echo "verify: index_load_speedup_x100 missing from BENCH_pipeline.json" >&2
    exit 1
fi
if [ "$index_speedup" -lt "$index_floor" ]; then
    echo "verify: warm snapshot load speedup regressed: ${index_speedup}/100x < floor ${index_floor}/100x" >&2
    exit 1
fi

# Snapshot gate, part 2: through the CLI, `index build` then a warm
# `--index require` report must be byte-identical to the cold report
# over the analysis sections, at more than one thread count.
idx_dir=$(mktemp -d)
idx_sections="header,categories,spatial,involvement,tbf,ttr,availability,survival,seasonal"
cargo run -q --release -p failctl -- \
    generate --system tsubame3 --out "$idx_dir/idx.fslog" >/dev/null
cargo run -q --release -p failctl -- report "$idx_dir/idx.fslog" \
    --sections "$idx_sections" > "$idx_dir/cold.txt"
cargo run -q --release -p failctl -- index build "$idx_dir/idx.fslog" >/dev/null
for t in 1 4; do
    cargo run -q --release -p failctl -- report "$idx_dir/idx.fslog" \
        --sections "$idx_sections" --index require --threads "$t" \
        > "$idx_dir/warm$t.txt"
    cmp -s "$idx_dir/cold.txt" "$idx_dir/warm$t.txt" || {
        echo "verify: warm --index require report differs from cold at --threads $t" >&2
        exit 1
    }
done
rm -rf "$idx_dir"

# Server gate, part 1: `repro bench`'s server block replays a mixed
# report/compare workload from four concurrent clients against an
# in-process `faild` and exits non-zero unless every response is
# byte-identical to the local query path and the shutdown persisted
# both snapshots; gate on the warm concurrent rate (measured ~6000
# queries/s on one container core, tripwire at 200 — which is roughly
# where an accidental per-query write-batching latency would land).
server_floor=200
server_rate=$(sed -n 's/.*"server_queries_per_second":\([0-9]*\).*/\1/p' \
    BENCH_pipeline.json)
if [ -z "$server_rate" ]; then
    echo "verify: server_queries_per_second missing from BENCH_pipeline.json" >&2
    exit 1
fi
if [ "$server_rate" -lt "$server_floor" ]; then
    echo "verify: server query throughput regressed: $server_rate queries/s < floor $server_floor" >&2
    exit 1
fi

# Server gate, part 1b: connection scaling. The same bench holds 64
# connections open, all replaying warm queries against the reactor's
# single event loop (measured ~5000 queries/s on one container core;
# tripwire at 2000 — a return to per-connection polling threads or a
# busy-looping event loop collapses well below that).
server_scaled_floor=2000
server_scaled_rate=$(sed -n 's/.*"server_scaled_queries_per_second":\([0-9]*\).*/\1/p' \
    BENCH_pipeline.json)
if [ -z "$server_scaled_rate" ]; then
    echo "verify: server_scaled_queries_per_second missing from BENCH_pipeline.json" >&2
    exit 1
fi
if [ "$server_scaled_rate" -lt "$server_scaled_floor" ]; then
    echo "verify: scaled server throughput regressed: $server_scaled_rate queries/s at 64 connections < floor $server_scaled_floor" >&2
    exit 1
fi

# Server gate, part 2: a real `faild` process serving both canonical
# seed logs over a Unix socket. Cold queries must be byte-identical to
# the direct CLI report, warm repeats byte-identical to cold, four
# concurrent clients must all get the same bytes, and a graceful
# shutdown must persist a `.fsidx` snapshot next to each cold-parsed
# log.
srv_dir=$(mktemp -d)
srv_sections="header,categories,spatial,involvement,tbf,ttr,availability,survival,seasonal"
for system in tsubame2 tsubame3; do
    cargo run -q --release -p failctl -- \
        generate --system "$system" --out "$srv_dir/$system.fslog" >/dev/null
done
cargo run -q --release -p failctl -- serve --socket "$srv_dir/faild.sock" \
    > "$srv_dir/serve.log" &
srv_pid=$!
for _ in $(seq 1 100); do
    [ -S "$srv_dir/faild.sock" ] && break
    sleep 0.1
done
[ -S "$srv_dir/faild.sock" ] || {
    echo "verify: faild did not bind its socket" >&2
    exit 1
}
for system in tsubame2 tsubame3; do
    cargo run -q --release -p failctl -- report "$srv_dir/$system.fslog" \
        --sections "$srv_sections" > "$srv_dir/$system.cli.txt"
    cargo run -q --release -p failctl -- query --socket "$srv_dir/faild.sock" \
        report "$srv_dir/$system.fslog" --sections "$srv_sections" \
        > "$srv_dir/$system.cold.txt"
    cargo run -q --release -p failctl -- query --socket "$srv_dir/faild.sock" \
        report "$srv_dir/$system.fslog" --sections "$srv_sections" \
        > "$srv_dir/$system.warm.txt"
    cmp -s "$srv_dir/$system.cli.txt" "$srv_dir/$system.cold.txt" || {
        echo "verify: faild cold query differs from the direct CLI report for $system" >&2
        exit 1
    }
    cmp -s "$srv_dir/$system.cold.txt" "$srv_dir/$system.warm.txt" || {
        echo "verify: faild warm query differs from its cold query for $system" >&2
        exit 1
    }
done
client_pids=""
for client in 1 2 3 4; do
    cargo run -q --release -p failctl -- query --socket "$srv_dir/faild.sock" \
        report "$srv_dir/tsubame2.fslog" --sections "$srv_sections" \
        > "$srv_dir/client$client.txt" &
    client_pids="$client_pids $!"
done
for pid in $client_pids; do
    wait "$pid" || {
        echo "verify: concurrent faild client exited non-zero" >&2
        exit 1
    }
done
for client in 1 2 3 4; do
    cmp -s "$srv_dir/tsubame2.cli.txt" "$srv_dir/client$client.txt" || {
        echo "verify: concurrent faild client $client diverged from the CLI report" >&2
        exit 1
    }
done
# Catalog smoke: `logs` must list both cached seed logs, `evict` must
# drop one so its next query runs cold (the response bytes still
# byte-identical to the CLI report).
cargo run -q --release -p failctl -- query --socket "$srv_dir/faild.sock" \
    logs > "$srv_dir/catalog.txt"
grep -q "faild: 2 cached logs" "$srv_dir/catalog.txt" || {
    echo "verify: faild logs did not list 2 cached logs" >&2
    cat "$srv_dir/catalog.txt" >&2
    exit 1
}
grep -q "tsubame3.fslog: records=" "$srv_dir/catalog.txt" || {
    echo "verify: faild logs catalog is missing the tsubame3 entry" >&2
    exit 1
}
cargo run -q --release -p failctl -- query --socket "$srv_dir/faild.sock" \
    evict "$srv_dir/tsubame3.fslog" | grep -q "evicted" || {
    echo "verify: faild evict did not report an eviction" >&2
    exit 1
}
cargo run -q --release -p failctl -- query --socket "$srv_dir/faild.sock" \
    logs | grep -q "faild: 1 cached log" || {
    echo "verify: faild logs still lists the evicted log" >&2
    exit 1
}
cargo run -q --release -p failctl -- query --socket "$srv_dir/faild.sock" \
    report "$srv_dir/tsubame3.fslog" --sections "$srv_sections" \
    > "$srv_dir/tsubame3.postevict.txt"
cmp -s "$srv_dir/tsubame3.cli.txt" "$srv_dir/tsubame3.postevict.txt" || {
    echo "verify: post-evict faild query differs from the direct CLI report" >&2
    exit 1
}
cargo run -q --release -p failctl -- query --socket "$srv_dir/faild.sock" \
    shutdown >/dev/null
wait "$srv_pid" || {
    echo "verify: faild exited non-zero" >&2
    exit 1
}
for system in tsubame2 tsubame3; do
    [ -f "$srv_dir/$system.fslog.fsidx" ] || {
        echo "verify: faild shutdown did not persist $system.fslog.fsidx" >&2
        exit 1
    }
done
rm -rf "$srv_dir"

# Gzip ingest smoke: the same log written plain and as .fslog.gz must
# produce byte-identical reports (input is sniffed by magic bytes and
# inflated in memory — no temp files, no external tooling).
gz_dir=$(mktemp -d)
cargo run -q --release -p failctl -- \
    generate --system tsubame2 --out "$gz_dir/smoke.fslog" >/dev/null
cargo run -q --release -p failctl -- \
    generate --system tsubame2 --out "$gz_dir/smoke.fslog.gz" >/dev/null
cargo run -q --release -p failctl -- report "$gz_dir/smoke.fslog" \
    > "$gz_dir/plain.txt"
cargo run -q --release -p failctl -- report "$gz_dir/smoke.fslog.gz" \
    > "$gz_dir/packed.txt"
cmp -s "$gz_dir/plain.txt" "$gz_dir/packed.txt" || {
    echo "verify: gzip report differs from the plain-text report" >&2
    exit 1
}
rm -rf "$gz_dir"

watch_trace=$(mktemp)
smoke=$(cargo run -q --release -p failctl -- \
    watch sim:tsubame2 --accel max --inject-mttr 5 --trace "$watch_trace")
echo "$smoke" | grep -q '"kind":"mttr_regression"' || {
    echo "verify: failctl watch smoke test did not alert on the injected regression" >&2
    exit 1
}
# The traced watch loop must account for every ingested record.
grep -q '"stage":"watch.records_ingested"' "$watch_trace" || {
    echo "verify: traced watch smoke run did not record watch.records_ingested" >&2
    exit 1
}
rm -f "$watch_trace"

# JSON report gate: a `{"v":1,"kind":"report"}` version header line,
# then one well-formed NDJSON line per section with the stable
# {id, title, data} shape, on both canonical models.
if command -v jq >/dev/null 2>&1; then
    tmpdir=$(mktemp -d)
    trap 'rm -rf "$tmpdir"' EXIT
    for system in tsubame2 tsubame3; do
        log="$tmpdir/$system.fslog"
        cargo run -q --release -p failctl -- \
            generate --system "$system" --out "$log" >/dev/null
        cargo run -q --release -p failctl -- report "$log" --format json \
            | jq -e -s 'length == 11
                and .[0].v == 1
                and .[0].kind == "report"
                and .[1].id == "header"
                and .[-1].id == "metrics"
                and all(.[1:][]; has("id") and has("title") and has("data"))' \
            >/dev/null || {
            echo "verify: failctl report --format json schema gate failed for $system" >&2
            exit 1
        }
    done

    # Trace gate: the deterministic NDJSON trace export must be valid,
    # carry the known record kinds, and be byte-identical at any thread
    # count.
    trace1="$tmpdir/trace1.ndjson"
    trace4="$tmpdir/trace4.ndjson"
    cargo run -q --release -p failctl -- \
        report --model tsubame2 --seed 42 --threads 1 --trace "$trace1" \
        >/dev/null
    cargo run -q --release -p failctl -- \
        report --model tsubame2 --seed 42 --threads 4 --trace "$trace4" \
        >/dev/null
    cmp -s "$trace1" "$trace4" || {
        echo "verify: trace export differs between --threads 1 and --threads 4" >&2
        exit 1
    }
    jq -e -s 'length > 0
        and all(.[]; has("kind") and has("id") and has("stage"))
        and all(.[]; .kind == "counter" or .kind == "hist" or .kind == "span")
        and any(.[]; .kind == "counter" and .stage == "sim.records_generated")
        and any(.[]; .kind == "span" and .stage == "index.logview")' \
        "$trace4" >/dev/null || {
        echo "verify: failctl report --trace NDJSON schema gate failed" >&2
        exit 1
    }
else
    echo "verify: jq not found, skipping the JSON schema gate" >&2
fi

# API docs must build warning-free.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "verify: build + tests + clippy + streaming gate + parse gate + filter gate + index gate + server gate + gzip smoke + json gate + trace gate + docs all green"
