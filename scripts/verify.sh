#!/usr/bin/env sh
# Full verification gate: release build, the whole test suite, and a
# warning-free clippy pass over every target. Run from the repo root.
set -eu

cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings

echo "verify: build + tests + clippy all green"
