#!/usr/bin/env sh
# Full verification gate: release build, the whole test suite, and a
# warning-free clippy pass over every target. Run from the repo root.
set -eu

cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings

# Streaming subsystem gate: the record-by-record state must equal the
# batch pipeline, and an injected MTTR regression must raise an alert.
cargo test -q -p failsuite --test stream_equivalence
cargo run -q -p failbench --bin bench_stream --release -- --json BENCH_stream.json

smoke=$(cargo run -q --release -p failctl -- \
    watch sim:tsubame2 --accel max --inject-mttr 5)
echo "$smoke" | grep -q '"kind":"mttr_regression"' || {
    echo "verify: failctl watch smoke test did not alert on the injected regression" >&2
    exit 1
}

echo "verify: build + tests + clippy + streaming gate all green"
