#!/usr/bin/env sh
# Full verification gate: release build, the whole test suite, and a
# warning-free clippy pass over every target. Run from the repo root.
set -eu

cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings

# Streaming subsystem gate: the record-by-record state must equal the
# batch pipeline, and an injected MTTR regression must raise an alert.
cargo test -q -p failsuite --test stream_equivalence
cargo run -q -p failbench --bin bench_stream --release -- --json BENCH_stream.json

smoke=$(cargo run -q --release -p failctl -- \
    watch sim:tsubame2 --accel max --inject-mttr 5)
echo "$smoke" | grep -q '"kind":"mttr_regression"' || {
    echo "verify: failctl watch smoke test did not alert on the injected regression" >&2
    exit 1
}

# JSON report gate: the section registry must emit one well-formed
# NDJSON line per section with the stable {id, title, data} shape, on
# both canonical models.
if command -v jq >/dev/null 2>&1; then
    tmpdir=$(mktemp -d)
    trap 'rm -rf "$tmpdir"' EXIT
    for system in tsubame2 tsubame3; do
        log="$tmpdir/$system.fslog"
        cargo run -q --release -p failctl -- \
            generate --system "$system" --out "$log" >/dev/null
        cargo run -q --release -p failctl -- report "$log" --format json \
            | jq -e -s 'length == 9
                and .[0].id == "header"
                and all(.[]; has("id") and has("title") and has("data"))' \
            >/dev/null || {
            echo "verify: failctl report --format json schema gate failed for $system" >&2
            exit 1
        }
    done
else
    echo "verify: jq not found, skipping the JSON schema gate" >&2
fi

# API docs must build warning-free.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "verify: build + tests + clippy + streaming gate + json gate + docs all green"
